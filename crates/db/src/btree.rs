//! A B+tree index: `u64` key → [`Rid`].
//!
//! Node granularity is one database page: with 4 KiB pages and 12-byte
//! leaf entries the fanout is ~128; we use a fixed order for determinism.
//! Nodes live in memory (the index is rebuilt from the heap on recovery —
//! a common design for small indexes); each node is assigned a [`PageId`]
//! so the engine can charge index I/O when it wants to model an on-disk
//! index.
//!
//! Full implementation: search, range scan, insert with splits, delete
//! with borrow/merge rebalancing.

use crate::page::{PageId, Rid};

/// Maximum keys per node (order). A node splits when exceeding this, and
/// underflows below `ORDER / 2`.
const ORDER: usize = 64;
const MIN_KEYS: usize = ORDER / 2;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<Rid>,
    },
    Internal {
        /// `seps[i]` is the smallest key in `children[i + 1]`'s subtree.
        seps: Vec<u64>,
        children: Vec<Node>,
    },
}

impl Node {
    fn key_count(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { seps, .. } => seps.len(),
        }
    }
}

/// The B+tree.
#[derive(Debug)]
pub struct BTree {
    root: Box<Node>,
    len: u64,
    /// Base page id for node accounting.
    base_page: PageId,
}

/// Result of recursive insert.
enum InsertUp {
    Done,
    Split { sep: u64, right: Box<Node> },
}

// note: the split sibling stays boxed (it crosses stack frames), while
// interior child lists hold nodes inline

impl BTree {
    /// New, empty tree. `base_page` seeds node-page-id accounting.
    pub fn new(base_page: PageId) -> Self {
        BTree {
            root: Box::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            }),
            len: 0,
            base_page,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes (≈ index pages), computed by traversal.
    pub fn node_count(&self) -> u64 {
        fn count(n: &Node) -> u64 {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => 1 + children.iter().map(count).sum::<u64>(),
            }
        }
        count(&self.root)
    }

    /// The page-id range the index occupies (for I/O accounting).
    pub fn page_span(&self) -> (PageId, u64) {
        (self.base_page, self.node_count())
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<Rid> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                Node::Internal { seps, children } => {
                    let idx = seps.partition_point(|&s| s <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: u64, rid: Rid) -> Option<Rid> {
        let (old, up) = Self::insert_rec(&mut self.root, key, rid);
        if old.is_none() {
            self.len += 1;
        }
        if let InsertUp::Split { sep, right } = up {
            let left = std::mem::replace(
                &mut *self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                },
            );
            *self.root = Node::Internal {
                seps: vec![sep],
                children: vec![left, *right],
            };
        }
        old
    }

    fn insert_rec(node: &mut Node, key: u64, rid: Rid) -> (Option<Rid>, InsertUp) {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = vals[i];
                    vals[i] = rid;
                    (Some(old), InsertUp::Done)
                }
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, rid);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let rk: Vec<u64> = keys.split_off(mid);
                        let rv: Vec<Rid> = vals.split_off(mid);
                        let sep = rk[0];
                        (
                            None,
                            InsertUp::Split {
                                sep,
                                right: Box::new(Node::Leaf { keys: rk, vals: rv }),
                            },
                        )
                    } else {
                        (None, InsertUp::Done)
                    }
                }
            },
            Node::Internal { seps, children } => {
                let idx = seps.partition_point(|&s| s <= key);
                let (old, up) = Self::insert_rec(&mut children[idx], key, rid);
                if let InsertUp::Split { sep, right } = up {
                    seps.insert(idx, sep);
                    children.insert(idx + 1, *right);
                    if seps.len() > ORDER {
                        let mid = seps.len() / 2;
                        // the middle separator moves up
                        let up_sep = seps[mid];
                        let right_seps: Vec<u64> = seps.split_off(mid + 1);
                        seps.pop(); // remove up_sep from the left node
                        let right_children: Vec<Node> = children.split_off(mid + 1);
                        return (
                            old,
                            InsertUp::Split {
                                sep: up_sep,
                                right: Box::new(Node::Internal {
                                    seps: right_seps,
                                    children: right_children,
                                }),
                            },
                        );
                    }
                }
                (old, InsertUp::Done)
            }
        }
    }

    /// Remove a key; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<Rid> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // shrink the root if it became a single-child internal node
        loop {
            let replace = match &mut *self.root {
                Node::Internal { children, .. } if children.len() == 1 => {
                    Some(children.pop().expect("one child"))
                }
                _ => None,
            };
            match replace {
                Some(child) => *self.root = child,
                None => break,
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node, key: u64) -> Option<Rid> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { seps, children } => {
                let idx = seps.partition_point(|&s| s <= key);
                let removed = Self::remove_rec(&mut children[idx], key)?;
                // rebalance the child if it underflowed
                if children[idx].key_count() < MIN_KEYS {
                    Self::rebalance(seps, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Fix an underflowing `children[idx]` by borrowing from or merging
    /// with a sibling.
    fn rebalance(seps: &mut Vec<u64>, children: &mut Vec<Node>, idx: usize) {
        // try borrowing from the left sibling
        if idx > 0 && children[idx - 1].key_count() > MIN_KEYS {
            let (left_slice, right_slice) = children.split_at_mut(idx);
            let left = &mut left_slice[idx - 1];
            let cur = &mut right_slice[0];
            match (left, cur) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                    let k = lk.pop().expect("left has spare");
                    let v = lv.pop().expect("left has spare");
                    ck.insert(0, k);
                    cv.insert(0, v);
                    seps[idx - 1] = ck[0];
                }
                (
                    Node::Internal {
                        seps: ls,
                        children: lc,
                    },
                    Node::Internal {
                        seps: cs,
                        children: cc,
                    },
                ) => {
                    // rotate through the parent separator
                    let moved_child = lc.pop().expect("left has spare");
                    let moved_sep = ls.pop().expect("left has spare");
                    cs.insert(0, seps[idx - 1]);
                    cc.insert(0, moved_child);
                    seps[idx - 1] = moved_sep;
                }
                _ => unreachable!("siblings are the same node kind"),
            }
            return;
        }
        // try borrowing from the right sibling
        if idx + 1 < children.len() && children[idx + 1].key_count() > MIN_KEYS {
            let (left_slice, right_slice) = children.split_at_mut(idx + 1);
            let cur = &mut left_slice[idx];
            let right = &mut right_slice[0];
            match (cur, right) {
                (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                    ck.push(rk.remove(0));
                    cv.push(rv.remove(0));
                    seps[idx] = rk[0];
                }
                (
                    Node::Internal {
                        seps: cs,
                        children: cc,
                    },
                    Node::Internal {
                        seps: rs,
                        children: rc,
                    },
                ) => {
                    cs.push(seps[idx]);
                    cc.push(rc.remove(0));
                    seps[idx] = rs.remove(0);
                }
                _ => unreachable!("siblings are the same node kind"),
            }
            return;
        }
        // merge with a sibling (prefer left)
        let merge_left = idx > 0;
        let li = if merge_left { idx - 1 } else { idx };
        let sep = seps.remove(li);
        let right = children.remove(li + 1);
        let left = &mut children[li];
        match (left, right) {
            (
                Node::Leaf { keys: lk, vals: lv },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
            }
            (
                Node::Internal {
                    seps: ls,
                    children: lc,
                },
                Node::Internal {
                    seps: mut rs,
                    children: mut rc,
                },
            ) => {
                ls.push(sep);
                ls.append(&mut rs);
                lc.append(&mut rc);
            }
            _ => unreachable!("siblings are the same node kind"),
        }
    }

    /// Iterate `(key, rid)` pairs with `key ∈ [lo, hi]`, ascending.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, Rid)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(node: &Node, lo: u64, hi: u64, out: &mut Vec<(u64, Rid)>) {
        match node {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|&k| k < lo);
                for i in start..keys.len() {
                    if keys[i] > hi {
                        break;
                    }
                    out.push((keys[i], vals[i]));
                }
            }
            Node::Internal { seps, children } => {
                let first = seps.partition_point(|&s| s <= lo);
                let last = seps.partition_point(|&s| s <= hi);
                for child in children.iter().take(last + 1).skip(first) {
                    Self::range_rec(child, lo, hi, out);
                }
            }
        }
    }

    /// The heap-page chain a key-order scan visits: the distinct data
    /// pages referenced by the leaves, in first-touch key order.
    ///
    /// This is the successor order an index-order scan actually reads
    /// heap pages in — generally *not* page-id order. Feed it to
    /// [`crate::prefetch::PrefetchConfig::chain`] so readahead follows
    /// the leaf chain instead of guessing `p + 1`.
    pub fn leaf_chain(&self) -> Vec<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        fn walk(node: &Node, seen: &mut std::collections::BTreeSet<u64>, out: &mut Vec<u64>) {
            match node {
                Node::Leaf { vals, .. } => {
                    for v in vals {
                        if seen.insert(v.page.0) {
                            out.push(v.page.0);
                        }
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        walk(c, seen, out);
                    }
                }
            }
        }
        walk(&self.root, &mut seen, &mut out);
        out
    }

    /// Depth of the tree (1 = just a leaf).
    pub fn depth(&self) -> u32 {
        let mut d = 1;
        let mut node = &*self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> Rid {
        Rid {
            page: PageId(n),
            slot: (n % 7) as u16,
        }
    }

    #[test]
    fn insert_get_small() {
        let mut t = BTree::new(PageId(0));
        assert_eq!(t.insert(5, rid(5)), None);
        assert_eq!(t.insert(1, rid(1)), None);
        assert_eq!(t.insert(9, rid(9)), None);
        assert_eq!(t.get(5), Some(rid(5)));
        assert_eq!(t.get(2), None);
        assert_eq!(t.len(), 3);
        // replace
        assert_eq!(t.insert(5, rid(50)), Some(rid(5)));
        assert_eq!(t.get(5), Some(rid(50)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn splits_maintain_order_across_thousands() {
        let mut t = BTree::new(PageId(0));
        // insert in a scrambled order
        let n = 10_000u64;
        let mut k = 1u64;
        for _ in 0..n {
            k = (k * 48271) % 100_003;
            t.insert(k, rid(k));
        }
        assert!(t.depth() >= 2, "tree should have split");
        // every inserted key findable
        let mut k = 1u64;
        for _ in 0..n {
            k = (k * 48271) % 100_003;
            assert_eq!(t.get(k), Some(rid(k)), "key {k}");
        }
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = BTree::new(PageId(0));
        for k in (0..1000).step_by(3) {
            t.insert(k, rid(k));
        }
        let r = t.range(100, 200);
        assert!(!r.is_empty());
        assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(r.iter().all(|&(k, _)| (100..=200).contains(&k)));
        assert_eq!(r.len(), (100..=200).filter(|k| k % 3 == 0).count());
    }

    #[test]
    fn remove_with_rebalancing() {
        let mut t = BTree::new(PageId(0));
        let n = 5_000u64;
        for k in 0..n {
            t.insert(k, rid(k));
        }
        // remove every other key
        for k in (0..n).step_by(2) {
            assert_eq!(t.remove(k), Some(rid(k)), "remove {k}");
        }
        assert_eq!(t.len(), n / 2);
        for k in 0..n {
            if k % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(rid(k)));
            }
        }
        // remove the rest
        for k in (1..n).step_by(2) {
            assert_eq!(t.remove(k), Some(rid(k)));
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1, "tree should collapse to a leaf");
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = BTree::new(PageId(0));
        t.insert(1, rid(1));
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn leaf_chain_is_first_touch_key_order_without_duplicates() {
        let mut t = BTree::new(PageId(0));
        // keys ascend but heap pages deliberately do not: key k lives on
        // page (k * 7) % 40, revisiting pages as the scan proceeds
        let n = 2_000u64;
        for k in 0..n {
            t.insert(
                k,
                Rid {
                    page: PageId((k * 7) % 40),
                    slot: (k % 5) as u16,
                },
            );
        }
        assert!(t.depth() >= 2, "tree should have split");
        let chain = t.leaf_chain();
        // every referenced page exactly once
        let mut sorted = chain.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), chain.len(), "no duplicates in the chain");
        assert_eq!(chain.len(), 40, "all 40 heap pages referenced");
        // first-touch order follows key order, not page-id order: key 0
        // → page 0, key 1 → page 7, key 2 → page 14, ...
        assert_eq!(&chain[..4], &[0, 7, 14, 21]);
        assert_ne!(chain, sorted, "chain order is not page-id order");
        // feeding it to the prefetcher yields a successor map that walks
        // the same chain
        let cfg = crate::prefetch::PrefetchConfig::chain(2, &chain);
        if let crate::prefetch::PrefetchMode::Chain(map) = &cfg.mode {
            assert_eq!(map.get(&0), Some(&7));
            assert_eq!(map.get(&7), Some(&14));
            assert_eq!(map.len(), chain.len() - 1, "one edge per adjacent pair");
        } else {
            panic!("chain() must build a Chain mode");
        }
    }

    #[test]
    fn leaf_chain_of_empty_tree_is_empty() {
        let t = BTree::new(PageId(0));
        assert!(t.leaf_chain().is_empty());
    }

    #[test]
    fn node_count_grows_with_splits() {
        let mut t = BTree::new(PageId(0));
        let before = t.node_count();
        for k in 0..200 {
            t.insert(k, rid(k));
        }
        assert!(t.node_count() > before);
    }
}
