//! The cooperating-logs storage manager: the database's log-structured
//! layout running directly on a [`NamelessSsd`] — no FTL log underneath,
//! so there is exactly **one** garbage collector in the stack.
//!
//! The stacked-log pathology (§2 of the paper, measured by E13's legacy
//! rows): the database writes its WAL and page images log-structured for
//! crash safety, and the FTL underneath writes *everything* log-
//! structured again for flash physics. Two logs, two collectors, each
//! blind to the other — the FTL copies pages the database already
//! superseded, and the database cannot tell it otherwise beyond coarse
//! TRIM. This manager removes the lower log instead of hinting at it:
//!
//! * **Placement is the device's.** Every page image and WAL segment
//!   goes down as a nameless write; the device returns a [`PhysName`]
//!   and the host stores it in a [`PageTable`] — the paper's "host
//!   stores names instead of maintaining a redundant logical map".
//! * **Death is declared eagerly.** The moment a write supersedes a
//!   version, the old name is freed; checkpoint truncation frees every
//!   WAL segment below the redo horizon (the [`WalBackend`] built by
//!   [`make_wal`](PersistenceBackend::make_wal) trims exact names). The
//!   device's collector therefore relocates almost nothing: victims are
//!   already dead.
//! * **Migrations patch, not copy.** When device GC does move a live
//!   page, the [`Migrated`](Upcall::Migrated) upcall — drained at every
//!   operation and every poll — patches the page table in RAM. No host
//!   I/O, no second copy.
//! * **Checkpoints are native atomic writes.** New versions are written
//!   out of place while every old name stays valid; the index swap in
//!   RAM is the commit point, then the old names are freed. 1× the I/O
//!   of the double-write journal's 2×.
//!
//! Reads at queue depth ride a [`NamelessQueuePair`]; a read that loses
//! the race with a migration comes back [`IoStatus::Rejected`], is
//! patched from the upcall stream, and is resubmitted at its completion
//! instant — the retry is visible in [`CoopLogBackend::read_retries`],
//! never a panic.

use std::cell::{Cell, Ref, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use requiem_iface::nameless::{NamelessConfig, NamelessError, NamelessSsd, PhysName};
use requiem_iface::qpair::{NamelessCmd, NamelessQueuePair};
use requiem_iface::Upcall;
use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;

use crate::backend::{BackendStats, CommandTag, PageRead, PersistenceBackend};
use crate::page::PageId;
use crate::pagetable::PageTable;
use crate::walbackend::{FlashWal, LogDevice, WalBackend};

/// Tag namespace split: data pages carry their page id, WAL segments
/// carry `LOG_TAG_BASE + absolute segment index`. The device echoes the
/// tag in migration upcalls, so the split routes each patch to the right
/// table.
pub const LOG_TAG_BASE: u64 = 1 << 48;

/// Drain pending migration upcalls into the tables. `staging` holds
/// versions written but not yet bound (mid-batch): the device may
/// migrate one of those before the index swap, and the patch must land
/// on the staged name, not the table's superseded one. Shared by the
/// backend and the WAL port — migrations must patch whichever path sees
/// them first.
fn apply_upcalls_on(
    dev: &mut NamelessSsd,
    table: &mut PageTable<PhysName>,
    segs: &mut PageTable<PhysName>,
    staging: &mut [(PageId, Option<PhysName>)],
) {
    if dev.upcalls_pending().is_empty() {
        return;
    }
    for u in dev.upcalls().drain() {
        let Upcall::Migrated { tag, old, new, .. } = u else {
            continue;
        };
        if tag >= LOG_TAG_BASE {
            segs.patch(tag - LOG_TAG_BASE, old, new);
            continue;
        }
        if let Some(slot) = staging
            .iter_mut()
            .find(|(p, n)| p.0 == tag && *n == Some(old))
        {
            slot.1 = Some(new);
            continue;
        }
        table.patch(tag, old, new);
    }
}

/// Free the superseded version of `tag` at `handle`, riding out one
/// migration race: if the name went stale, drain the upcalls that
/// explain it and free wherever the routing table now points. Returns
/// the free's completion (controller overhead only).
fn free_version_on(
    dev: &mut NamelessSsd,
    table: &mut PageTable<PhysName>,
    segs: &mut PageTable<PhysName>,
    now: SimTime,
    tag: u64,
    handle: PhysName,
) -> SimTime {
    match dev.free(now, handle, tag) {
        Ok(done) => done,
        Err(NamelessError::StaleName { .. }) => {
            apply_upcalls_on(dev, table, segs, &mut []);
            let current = if tag >= LOG_TAG_BASE {
                segs.lookup(tag - LOG_TAG_BASE)
            } else {
                table.lookup(tag)
            };
            match current {
                Some(h) if h != handle => dev.free(now, h, tag).unwrap_or(now),
                // the version is simply gone (freed concurrently by
                // an earlier truncation pass): nothing to release
                _ => now,
            }
        }
        Err(NamelessError::DeviceFull) => now,
    }
}

/// The cooperating-logs storage manager over one nameless flash device.
pub struct CoopLogBackend {
    /// Shared with the WAL port ([`make_wal`](PersistenceBackend::make_wal)):
    /// log segments are nameless writes on the same device as the pages.
    dev: Rc<RefCell<NamelessSsd>>,
    data_pages: u64,
    /// Redo-log capacity in segments (pages); the circular-capacity
    /// contract matches the block backends even though placement is the
    /// device's.
    log_pages: u64,
    /// Data page id → current name. Shared with the WAL port: an upcall
    /// drained on either path must be able to patch both tables.
    table: Rc<RefCell<PageTable<PhysName>>>,
    /// Absolute WAL segment index → current name (shared likewise).
    segs: Rc<RefCell<PageTable<PhysName>>>,
    stats: BackendStats,
    /// Queue pair for the batched read path.
    qp: NamelessQueuePair,
    /// Batched reads in flight: queue-pair command id → (engine tag, page).
    inflight: BTreeMap<u64, (CommandTag, PageId)>,
    /// Reads refused before reaching the device (no binding), completed
    /// at submit with [`IoStatus::Rejected`].
    rejects: Vec<PageRead>,
    /// Tag namespace for batched reads.
    next_tag: u64,
    /// Writes the device refused (full); the superseded version is kept.
    /// Shared with the WAL port so the count covers both paths.
    rejected: Rc<Cell<u64>>,
    /// Batched reads resubmitted after losing a race with a migration.
    read_retries: u64,
}

impl std::fmt::Debug for CoopLogBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopLogBackend")
            .field("stats", &self.stats)
            .field("live_pages", &self.table.borrow().len())
            .field("live_segs", &self.segs.borrow().len())
            .finish()
    }
}

impl CoopLogBackend {
    /// A manager for `data_pages` of data and a `log_pages`-segment redo
    /// log on one nameless device. No journal region: atomicity is free
    /// out of place.
    ///
    /// # Panics
    /// Panics if the device cannot hold `data_pages + log_pages` live
    /// pages.
    pub fn new(cfg: NamelessConfig, data_pages: u64, log_pages: u64) -> Self {
        let dev = NamelessSsd::new(cfg);
        let usable = dev.usable_tags();
        let needed = data_pages + log_pages;
        assert!(
            needed <= usable,
            "device too small: need {needed} live pages, usable {usable}"
        );
        CoopLogBackend {
            dev: Rc::new(RefCell::new(dev)),
            data_pages,
            log_pages,
            table: Rc::new(RefCell::new(PageTable::new())),
            segs: Rc::new(RefCell::new(PageTable::new())),
            stats: BackendStats::default(),
            qp: NamelessQueuePair::new(1),
            inflight: BTreeMap::new(),
            rejects: Vec::new(),
            next_tag: 0,
            rejected: Rc::new(Cell::new(0)),
            read_retries: 0,
        }
    }

    /// The underlying device (for write-amplification reporting).
    pub fn dev(&self) -> Ref<'_, NamelessSsd> {
        self.dev.borrow()
    }

    /// The data page table (for invariant checks in tests).
    pub fn table(&self) -> Ref<'_, PageTable<PhysName>> {
        self.table.borrow()
    }

    /// Live WAL segment names (for invariant checks in tests).
    pub fn segs(&self) -> Ref<'_, PageTable<PhysName>> {
        self.segs.borrow()
    }

    /// Migration upcalls applied to either table.
    pub fn relocations_patched(&self) -> u64 {
        self.table.borrow().patched() + self.segs.borrow().patched()
    }

    /// Writes refused by a full device (old version kept, never lost).
    /// Covers both the page path and the WAL port.
    pub fn rejected_writes(&self) -> u64 {
        self.rejected.get()
    }

    /// Batched reads resubmitted after a migration race.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    fn check_page(&self, page: PageId) {
        assert!(page.0 < self.data_pages, "page id beyond data region");
    }

    /// Drain pending migration upcalls into the tables. `staging` holds
    /// versions written but not yet bound (mid-batch): the device may
    /// migrate one of those before the index swap, and the patch must
    /// land on the staged name, not the table's superseded one.
    fn apply_upcalls(&mut self, staging: &mut [(PageId, Option<PhysName>)]) {
        apply_upcalls_on(
            &mut self.dev.borrow_mut(),
            &mut self.table.borrow_mut(),
            &mut self.segs.borrow_mut(),
            staging,
        );
    }

    /// Drain migration upcalls with no staged versions outstanding.
    fn drain_upcalls(&mut self) {
        self.apply_upcalls(&mut []);
    }

    /// Free the superseded version of `tag` at `handle`, riding out one
    /// migration race. Returns the free's completion (controller
    /// overhead only).
    fn free_version(&mut self, now: SimTime, tag: u64, handle: PhysName) -> SimTime {
        free_version_on(
            &mut self.dev.borrow_mut(),
            &mut self.table.borrow_mut(),
            &mut self.segs.borrow_mut(),
            now,
            tag,
            handle,
        )
    }

    /// Write one data page out of place and swap the index: write the
    /// new version (old name stays valid — crash safe), bind it, free
    /// the superseded version eagerly. A refused write keeps the old
    /// binding: the page is stale in RAM terms but never lost.
    fn data_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.check_page(page);
        self.drain_upcalls();
        let res = self.dev.borrow_mut().write(now, page.0);
        match res {
            Ok(c) => {
                // the write may have run GC, migrating the *old* version;
                // patch before reading the superseded name out
                self.drain_upcalls();
                let old = self.table.borrow_mut().bind(page.0, c.name);
                if let Some(old) = old {
                    self.free_version(c.done, page.0, old);
                }
                c.done
            }
            Err(_) => {
                self.rejected.set(self.rejected.get() + 1);
                now
            }
        }
    }
}

/// [`LogDevice`] port exposing the nameless device's WAL namespace to a
/// [`FlashWal`]: each segment image is a nameless write tagged
/// `LOG_TAG_BASE + seg`, the superseded version is freed the moment the
/// new one is durable, and reusing a slot retires the segment one lap
/// behind (the circular-capacity contract a block log gets by
/// overwriting in place). Truncation frees exact names — the device's
/// collector never copies dead WAL bytes.
pub struct NamelessLog {
    dev: Rc<RefCell<NamelessSsd>>,
    table: Rc<RefCell<PageTable<PhysName>>>,
    segs: Rc<RefCell<PageTable<PhysName>>>,
    log_pages: u64,
    rejected: Rc<Cell<u64>>,
}

impl LogDevice for NamelessLog {
    fn write_seg(&mut self, now: SimTime, seg: u64) -> (SimTime, IoStatus) {
        let mut dev = self.dev.borrow_mut();
        let mut table = self.table.borrow_mut();
        let mut segs = self.segs.borrow_mut();
        apply_upcalls_on(&mut dev, &mut table, &mut segs, &mut []);
        match dev.write(now, LOG_TAG_BASE + seg) {
            Ok(c) => {
                let t = c.done;
                apply_upcalls_on(&mut dev, &mut table, &mut segs, &mut []);
                if let Some(old) = segs.bind(seg, c.name) {
                    free_version_on(&mut dev, &mut table, &mut segs, t, LOG_TAG_BASE + seg, old);
                }
                // circular-capacity contract: reusing the slot retires
                // the segment one lap behind, as a block log's
                // overwrite would
                if seg >= self.log_pages {
                    if let Some(lapped) = segs.unbind(seg - self.log_pages) {
                        free_version_on(
                            &mut dev,
                            &mut table,
                            &mut segs,
                            t,
                            LOG_TAG_BASE + (seg - self.log_pages),
                            lapped,
                        );
                    }
                }
                (t, IoStatus::Ok)
            }
            Err(_) => {
                self.rejected.set(self.rejected.get() + 1);
                (now, IoStatus::Rejected)
            }
        }
    }

    fn read_seg(&mut self, now: SimTime, seg: u64) -> Option<(SimTime, IoStatus)> {
        let mut dev = self.dev.borrow_mut();
        let mut table = self.table.borrow_mut();
        let mut segs = self.segs.borrow_mut();
        apply_upcalls_on(&mut dev, &mut table, &mut segs, &mut []);
        // segments below the truncation horizon were freed — they are
        // never needed for redo, so they cost nothing
        let name = segs.lookup(seg)?;
        match dev.read(now, name, LOG_TAG_BASE + seg) {
            Ok((done, _lat, s)) => Some((done, s)),
            Err(NamelessError::StaleName { .. }) => {
                apply_upcalls_on(&mut dev, &mut table, &mut segs, &mut []);
                if let Some(cur) = segs.lookup(seg) {
                    if let Ok((done, _lat, s)) = dev.read(now, cur, LOG_TAG_BASE + seg) {
                        return Some((done, s));
                    }
                }
                Some((now, IoStatus::Rejected))
            }
            Err(NamelessError::DeviceFull) => Some((now, IoStatus::Rejected)),
        }
    }

    fn trim_seg(&mut self, now: SimTime, seg: u64) -> bool {
        let mut dev = self.dev.borrow_mut();
        let mut table = self.table.borrow_mut();
        let mut segs = self.segs.borrow_mut();
        apply_upcalls_on(&mut dev, &mut table, &mut segs, &mut []);
        // free before unbinding (same stale-race discipline as
        // free_page): a mid-drain patch must find the binding
        if let Some(name) = segs.lookup(seg) {
            free_version_on(
                &mut dev,
                &mut table,
                &mut segs,
                now,
                LOG_TAG_BASE + seg,
                name,
            );
            segs.unbind(seg);
            true
        } else {
            false
        }
    }

    fn label(&self) -> &'static str {
        "nameless-wal"
    }
}

impl PersistenceBackend for CoopLogBackend {
    fn make_wal(&mut self) -> Box<dyn WalBackend> {
        // same append discipline as the block backends — the tail
        // segment is rewritten on every force, full segments spill —
        // but each rewrite is a nameless write and the superseded
        // version is freed the moment the new one is durable, so the
        // device's collector never copies dead WAL bytes.
        Box::new(FlashWal::new(
            NamelessLog {
                dev: Rc::clone(&self.dev),
                table: Rc::clone(&self.table),
                segs: Rc::clone(&self.segs),
                log_pages: self.log_pages,
                rejected: Rc::clone(&self.rejected),
            },
            self.log_pages,
        ))
    }

    fn page_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.page_writes += 1;
        self.stats.logical_writes += 1;
        self.data_write(now, page)
    }

    fn steal_write(&mut self, now: SimTime, page: PageId) -> SimTime {
        self.stats.steal_writes += 1;
        self.stats.logical_writes += 1;
        self.data_write(now, page)
    }

    fn page_read(&mut self, now: SimTime, page: PageId) -> (SimTime, IoStatus) {
        self.check_page(page);
        self.stats.page_reads += 1;
        self.drain_upcalls();
        let Some(name) = self.table.borrow().lookup(page.0) else {
            return (now, IoStatus::Rejected);
        };
        let res = self.dev.borrow_mut().read(now, name, page.0);
        match res {
            Ok((done, _lat, status)) => (done, status),
            Err(NamelessError::StaleName { .. }) => {
                // migration raced the lookup; the upcall explains it
                self.drain_upcalls();
                match self.table.borrow().lookup(page.0) {
                    Some(cur) if cur != name => {
                        match self.dev.borrow_mut().read(now, cur, page.0) {
                            Ok((done, _lat, status)) => (done, status),
                            Err(_) => (now, IoStatus::Rejected),
                        }
                    }
                    _ => (now, IoStatus::Rejected),
                }
            }
            Err(NamelessError::DeviceFull) => (now, IoStatus::Rejected),
        }
    }

    fn page_batch(&mut self, now: SimTime, pages: &[PageId]) -> SimTime {
        if pages.is_empty() {
            return now;
        }
        self.stats.batches += 1;
        self.stats.page_writes += pages.len() as u64;
        self.stats.logical_writes += pages.len() as u64;
        // native atomic batch: write every new version out of place
        // while all old names stay valid, swap the index in RAM (the
        // commit point), then free the superseded versions. 1x the I/O;
        // a crash mid-batch leaves the old versions untouched.
        let mut staging: Vec<(PageId, Option<PhysName>)> = Vec::with_capacity(pages.len());
        let mut t = now;
        for &p in pages {
            self.check_page(p);
            let res = self.dev.borrow_mut().write(t, p.0);
            match res {
                Ok(c) => {
                    t = c.done;
                    staging.push((p, Some(c.name)));
                }
                Err(_) => {
                    self.rejected.set(self.rejected.get() + 1);
                    staging.push((p, None));
                }
            }
            // a later write's GC may migrate an earlier *staged* (still
            // unbound) version — patch the staging slots, not the table
            let mut stage = std::mem::take(&mut staging);
            self.apply_upcalls(&mut stage);
            staging = stage;
        }
        for (p, name) in staging {
            let Some(name) = name else { continue };
            let old = self.table.borrow_mut().bind(p.0, name);
            if let Some(old) = old {
                t = t.max(self.free_version(t, p.0, old));
            }
        }
        t
    }

    fn free_page(&mut self, now: SimTime, page: PageId) {
        self.check_page(page);
        self.stats.frees += 1;
        self.drain_upcalls();
        // eager by construction: a dropped page's name goes back to the
        // device immediately — there is no "optional TRIM" tier here.
        // Free before unbinding: if the version migrated under us, the
        // stale-name drain patches the still-present binding and the
        // free lands on the moved copy instead of leaking it.
        let name = self.table.borrow().lookup(page.0);
        if let Some(name) = name {
            self.free_version(now, page.0, name);
            self.table.borrow_mut().unbind(page.0);
        }
    }

    fn stats(&self) -> &BackendStats {
        &self.stats
    }

    fn label(&self) -> &'static str {
        "coop-logs"
    }

    fn attach_probe(&mut self, probe: requiem_sim::Probe) {
        self.dev.borrow_mut().attach_probe(probe);
    }

    fn submit_reads(&mut self, now: SimTime, pages: &[PageId]) -> Vec<CommandTag> {
        self.drain_upcalls();
        pages
            .iter()
            .map(|&p| {
                self.check_page(p);
                self.stats.page_reads += 1;
                self.next_tag += 1;
                let tag = CommandTag(self.next_tag);
                match self.table.borrow().lookup(p.0) {
                    Some(name) => {
                        let id = self.qp.submit(
                            &mut self.dev.borrow_mut(),
                            now,
                            NamelessCmd::Read { name, tag: p.0 },
                        );
                        self.inflight.insert(id.0, (tag, p));
                    }
                    None => self.rejects.push(PageRead {
                        tag,
                        page: p,
                        done: now,
                        status: IoStatus::Rejected,
                    }),
                }
                tag
            })
            .collect()
    }

    fn poll(&mut self, now: SimTime) -> Vec<PageRead> {
        // the upcall drain on every poll is the cooperating-logs
        // contract: migrations patch the page table before any completion
        // is interpreted, so a Rejected read can be retried at the
        // page's *current* name
        self.drain_upcalls();
        let mut out: Vec<PageRead> = std::mem::take(&mut self.rejects);
        for c in self.qp.poll(now) {
            let Some((tag, page)) = self.inflight.remove(&c.id.0) else {
                continue;
            };
            if c.status == IoStatus::Rejected {
                if let Some(name) = self.table.borrow().lookup(page.0) {
                    // lost the race with a migration: resubmit at the
                    // patched name, completing later — never silently
                    // dropping the engine's tag
                    let id = self.qp.submit(
                        &mut self.dev.borrow_mut(),
                        c.done,
                        NamelessCmd::Read { name, tag: page.0 },
                    );
                    self.inflight.insert(id.0, (tag, page));
                    self.read_retries += 1;
                    continue;
                }
            }
            out.push(PageRead {
                tag,
                page,
                done: c.done,
                status: c.status,
            });
        }
        out
    }

    fn next_read_done(&mut self) -> Option<SimTime> {
        let r = self.rejects.iter().map(|r| r.done).min();
        match (r, self.qp.next_done()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn reads_in_flight(&mut self) -> usize {
        self.rejects.len() + self.qp.pending()
    }

    fn set_read_window(&mut self, depth: usize) {
        debug_assert!(
            self.qp.pending() == 0 && self.rejects.is_empty(),
            "window change with reads in flight"
        );
        self.qp = NamelessQueuePair::new(depth.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::wal::Lsn;
    use requiem_ssd::SsdConfig;

    fn small_cfg() -> NamelessConfig {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 2;
        NamelessConfig::from(&cfg)
    }

    fn backend(data_pages: u64, log_pages: u64) -> CoopLogBackend {
        CoopLogBackend::new(small_cfg(), data_pages, log_pages)
    }

    #[test]
    fn write_read_roundtrip_binds_names() {
        let mut b = backend(64, 16);
        let t1 = b.page_write(SimTime::ZERO, PageId(3));
        assert!(t1 > SimTime::ZERO);
        assert!(b.table().lookup(3).is_some(), "write bound a name");
        let (t2, status) = b.page_read(t1, PageId(3));
        assert!(t2 > t1);
        assert!(status.is_success());
        assert_eq!(b.stats().page_writes, 1);
        assert_eq!(b.stats().page_reads, 1);
    }

    #[test]
    fn rewrite_frees_superseded_version_eagerly() {
        let mut b = backend(64, 16);
        let t1 = b.page_write(SimTime::ZERO, PageId(5));
        let first = b.table().lookup(5).expect("bound");
        let t2 = b.page_write(t1, PageId(5));
        let second = b.table().lookup(5).expect("rebound");
        assert_ne!(first, second, "out-of-place: new version, new name");
        assert!(t2 > t1);
        assert_eq!(
            b.dev().metrics().host_trims,
            1,
            "the superseded version was freed at rebind, not left to GC"
        );
    }

    #[test]
    fn wal_force_retires_superseded_tail_segment() {
        let mut b = backend(16, 8);
        let mut w = b.make_wal();
        let mut t = SimTime::ZERO;
        // two sub-page forces rewrite the same tail segment: the first
        // version must be freed when the second lands
        w.append(Lsn(512), 512);
        t = w.force(t, Lsn(512)).done;
        assert_eq!(b.dev().metrics().host_trims, 0, "first version is live");
        w.append(Lsn(1024), 512);
        let _ = w.force(t, Lsn(1024));
        assert_eq!(
            b.dev().metrics().host_trims,
            1,
            "tail rewrite freed the superseded segment"
        );
        assert_eq!(b.segs().len(), 1, "one live segment");
    }

    #[test]
    fn wal_truncation_frees_dead_segments_without_host_copy() {
        let mut b = backend(16, 64);
        let mut w = b.make_wal();
        let mut t = SimTime::ZERO;
        // fill 8 full segments
        for i in 0..8u64 {
            let lsn = Lsn((i + 1) * PAGE_SIZE as u64);
            w.append(lsn, PAGE_SIZE as u32);
            t = w.force(t, lsn).done;
        }
        assert_eq!(b.segs().len(), 8);
        let writes_before = b.dev().metrics().host_writes;
        let trims_before = b.dev().metrics().host_trims;
        // redo horizon at byte 6 pages: segments 0..6 are dead
        w.truncate(t, 6 * PAGE_SIZE as u64);
        assert_eq!(b.segs().len(), 2, "segments below the horizon released");
        assert_eq!(w.stats().log_trims, 6);
        assert_eq!(
            b.dev().metrics().host_trims - trims_before,
            6,
            "each dead segment freed on the device"
        );
        assert_eq!(
            b.dev().metrics().host_writes,
            writes_before,
            "truncation reclaims without a single host copy"
        );
        // idempotent: a second truncation at the same horizon is free
        w.truncate(t, 6 * PAGE_SIZE as u64);
        assert_eq!(w.stats().log_trims, 6);
    }

    #[test]
    fn batch_is_atomic_and_single_cost() {
        let mut b = backend(64, 16);
        let mut t = SimTime::ZERO;
        for p in 0..8u64 {
            t = b.page_write(t, PageId(p));
        }
        let programs_before = b.dev().metrics().flash_programs.total();
        let pages: Vec<PageId> = (0..8).map(PageId).collect();
        let t2 = b.page_batch(t, &pages);
        assert!(t2 > t);
        let paid = b.dev().metrics().flash_programs.total() - programs_before;
        assert_eq!(paid, 8, "native atomic batch pays 1x, not the journal's 2x");
        assert_eq!(
            b.dev().metrics().host_trims,
            8,
            "all superseded versions freed after the index swap"
        );
    }

    #[test]
    fn batched_reads_complete_out_of_order_and_tagged() {
        let mut b = backend(64, 16);
        let mut t = SimTime::ZERO;
        for p in 0..8u64 {
            t = b.page_write(t, PageId(p));
        }
        b.set_read_window(4);
        let pages: Vec<PageId> = (0..8).map(PageId).collect();
        let tags = b.submit_reads(t, &pages);
        assert_eq!(tags.len(), 8);
        let mut got = Vec::new();
        let mut guard = 0;
        while b.reads_in_flight() > 0 {
            let next = b.next_read_done().expect("reads in flight have a finish");
            got.extend(b.poll(next));
            guard += 1;
            assert!(guard < 64, "poll loop must terminate");
        }
        assert_eq!(got.len(), 8, "every tag came back exactly once");
        for r in &got {
            assert!(r.status.is_success());
        }
        let mut seen: Vec<u64> = got.iter().map(|r| r.page.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn recover_scan_skips_truncated_segments() {
        let mut b = backend(16, 64);
        let mut w = b.make_wal();
        let mut t = SimTime::ZERO;
        for i in 0..4u64 {
            let lsn = Lsn((i + 1) * PAGE_SIZE as u64);
            w.append(lsn, PAGE_SIZE as u32);
            t = w.force(t, lsn).done;
        }
        w.truncate(t, 2 * PAGE_SIZE as u64);
        // a scan over the whole range only pays for the two live segments
        let reads_before = b.dev().metrics().host_reads;
        let (done, status) = w.recover_scan(t, 0, 4 * PAGE_SIZE as u32);
        assert!(status.is_success());
        assert!(done > t);
        assert_eq!(b.dev().metrics().host_reads - reads_before, 2);
    }
}
