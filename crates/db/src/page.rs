//! Slotted pages: the database's unit of storage and I/O.
//!
//! Layout (within a fixed [`PAGE_SIZE`] buffer):
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header: page_lsn (8) | slot_count (2) | free_upper (2)       |
//! | slot directory: [offset u16, len u16] per slot, growing down |
//! |  ... free space ...                                          |
//! | record heap, growing up from the end                         |
//! +--------------------------------------------------------------+
//! ```
//!
//! Deleted slots keep their directory entry with `len = 0` (tombstone) so
//! record ids ([`Rid`]) stay stable.

use serde::{Deserialize, Serialize};

/// Fixed page size, matching the flash page size used by the devices.
pub const PAGE_SIZE: usize = 4096;

const HEADER_BYTES: usize = 12;
const SLOT_BYTES: usize = 4;

/// Identifier of a page within the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// A record id: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rid {
    /// The page.
    pub page: PageId,
    /// The slot within the page.
    pub slot: u16,
}

/// An in-memory slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct SlottedPage {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// A fresh, empty page (LSN 0, no slots).
    pub fn new() -> Self {
        let mut p = SlottedPage {
            buf: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_free_upper(PAGE_SIZE as u16);
        p
    }

    /// Reconstruct from raw bytes (e.g. after recovery).
    pub fn from_bytes(bytes: &[u8; PAGE_SIZE]) -> Self {
        SlottedPage {
            buf: Box::new(*bytes),
        }
    }

    /// The raw page image.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u64(&self, at: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[at..at + 8]);
        u64::from_le_bytes(b)
    }

    fn write_u64(&mut self, at: usize, v: u64) {
        self.buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Page LSN: the LSN of the last log record that modified this page.
    pub fn lsn(&self) -> u64 {
        self.read_u64(0)
    }

    /// Set the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.write_u64(0, lsn);
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(8)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(8, n);
    }

    fn free_upper(&self) -> u16 {
        self.read_u16(10)
    }

    fn set_free_upper(&mut self, v: u16) {
        self.write_u16(10, v);
    }

    fn slot_dir_at(&self, slot: u16) -> usize {
        HEADER_BYTES + slot as usize * SLOT_BYTES
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let at = self.slot_dir_at(slot);
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = self.slot_dir_at(slot);
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Contiguous free bytes available for one new record (accounting for
    /// its slot-directory entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_BYTES + self.slot_count() as usize * SLOT_BYTES;
        (self.free_upper() as usize)
            .saturating_sub(dir_end)
            .saturating_sub(SLOT_BYTES)
    }

    /// Insert a record; returns its slot, or `None` if it does not fit.
    ///
    /// # Panics
    /// Panics on zero-length or oversized (> ~page) records.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        assert!(!record.is_empty(), "empty records are not storable");
        assert!(record.len() < PAGE_SIZE, "record larger than a page");
        if record.len() > self.free_space() {
            return None;
        }
        let slot = self.slot_count();
        let new_upper = self.free_upper() as usize - record.len();
        self.buf[new_upper..new_upper + record.len()].copy_from_slice(record);
        self.set_free_upper(new_upper as u16);
        self.set_slot_entry(slot, new_upper as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// Read a record; `None` for out-of-range or deleted slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if len == 0 {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Delete a record (tombstone; space is not compacted).
    /// Returns whether a live record was deleted.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (_, len) = self.slot_entry(slot);
        if len == 0 {
            return false;
        }
        let (off, _) = self.slot_entry(slot);
        self.set_slot_entry(slot, off, 0);
        true
    }

    /// Update a record in place if the new value fits its old footprint,
    /// else delete + reinsert (slot changes). Returns the (possibly new)
    /// slot, or `None` if it no longer fits in the page.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> Option<u16> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if len == 0 {
            return None;
        }
        if record.len() <= len as usize {
            let off = off as usize;
            self.buf[off..off + record.len()].copy_from_slice(record);
            self.set_slot_entry(slot, off as u16, record.len() as u16);
            Some(slot)
        } else {
            self.delete(slot);
            self.insert(record)
        }
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1), Some(&b"hello"[..]));
        assert_eq!(p.get(s2), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_leaves_tombstone_with_stable_slots() {
        let mut p = SlottedPage::new();
        let s1 = p.insert(b"aaa").unwrap();
        let s2 = p.insert(b"bbb").unwrap();
        assert!(p.delete(s1));
        assert_eq!(p.get(s1), None);
        assert_eq!(p.get(s2), Some(&b"bbb"[..]));
        assert!(!p.delete(s1), "double delete is a no-op");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"0123456789").unwrap();
        // shrink in place: same slot
        assert_eq!(p.update(s, b"abc"), Some(s));
        assert_eq!(p.get(s), Some(&b"abc"[..]));
        // grow: moves to a new slot
        let s2 = p.update(s, b"a longer record than before").unwrap();
        assert_ne!(s2, s);
        assert_eq!(p.get(s2), Some(&b"a longer record than before"[..]));
        assert_eq!(p.get(s), None);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // ~ (4096 - 12) / 104 ≈ 39 records
        assert!((35..=40).contains(&n), "inserted {n}");
        assert!(p.free_space() < rec.len());
    }

    #[test]
    fn lsn_roundtrip() {
        let mut p = SlottedPage::new();
        p.set_lsn(0xDEADBEEF);
        assert_eq!(p.lsn(), 0xDEADBEEF);
    }

    #[test]
    fn byte_roundtrip_preserves_everything() {
        let mut p = SlottedPage::new();
        p.set_lsn(42);
        let s = p.insert(b"persist me").unwrap();
        let q = SlottedPage::from_bytes(p.as_bytes());
        assert_eq!(q.lsn(), 42);
        assert_eq!(q.get(s), Some(&b"persist me"[..]));
        assert_eq!(p, q);
    }

    #[test]
    fn records_iterates_live_only() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let live: Vec<u16> = p.records().map(|(s, _)| s).collect();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    #[should_panic(expected = "empty records")]
    fn empty_record_rejected() {
        SlottedPage::new().insert(b"");
    }
}
