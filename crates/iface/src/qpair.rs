//! Queue pair over the nameless device: nameless commands through the
//! same batched-doorbell discipline the block stack uses.
//!
//! PR 5's completion-driven database engine talks to block devices
//! through [`requiem_ssd::QueuePair`] — an in-flight window admitting up
//! to QD commands, a completion heap drained out of order. The nameless
//! interface had no such front door: every caller chained on synchronous
//! [`NamelessSsd::write`]/[`read`](NamelessSsd::read) completions, so
//! the cooperating-logs storage manager could never keep the device's
//! LUN parallelism busy. [`NamelessQueuePair`] is the missing piece:
//! typed [`NamelessCmd`]s go in, [`NamelessCqe`]s come out in *device*
//! order, each carrying the device-chosen [`PhysName`] (for writes) and
//! the typed [`IoStatus`] end to end.
//!
//! ## Hazard key
//!
//! The block queue pair orders same-LBA commands by submission; the
//! nameless interface has no LBAs, so the hazard key is the **host
//! tag** (the database page id): two commands on the same tag complete
//! in submission order, commands on different tags complete in whatever
//! order the device finishes them. This is exactly the page-level
//! ordering a storage manager needs — a page's read never overtakes the
//! write that produced the version it wants.
//!
//! ## Errors are data
//!
//! A refused command (device full, stale name) does not panic and does
//! not poison the queue: it completes *at its admission instant* with
//! [`IoStatus::Rejected`] and zero device occupancy, mirroring how the
//! block stack reports refusals through the completion path. The caller
//! reacts per-completion — for a stale name, by draining migration
//! upcalls and resubmitting at the current name.

use requiem_sim::cmd::CommandId;
use requiem_sim::completion::{CompletionHeap, InflightWindow};
use requiem_sim::probe::{Cause, Layer};
use requiem_sim::time::SimTime;
use requiem_sim::IoStatus;

use crate::nameless::{NamelessSsd, PhysName};

/// A typed command on the nameless interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamelessCmd {
    /// Write `tag`'s page; the device picks the location.
    Write {
        /// Opaque host identifier (database page id).
        tag: u64,
    },
    /// Read the page at `name`, verifying it still holds `tag`'s data.
    Read {
        /// The name to read.
        name: PhysName,
        /// The tag the page must carry (out-of-band staleness check).
        tag: u64,
    },
    /// Release the page at `name` (exact trim).
    Free {
        /// The name to release.
        name: PhysName,
        /// The tag the page must carry.
        tag: u64,
    },
}

impl NamelessCmd {
    /// The host tag — also the queue pair's hazard key.
    pub fn tag(&self) -> u64 {
        match *self {
            NamelessCmd::Write { tag }
            | NamelessCmd::Read { tag, .. }
            | NamelessCmd::Free { tag, .. } => tag,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            NamelessCmd::Write { .. } => "write",
            NamelessCmd::Read { .. } => "read",
            NamelessCmd::Free { .. } => "free",
        }
    }
}

/// Completion queue entry for one nameless command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NamelessCqe {
    /// Queue-assigned command id (submission order).
    pub id: CommandId,
    /// The host tag the command operated on.
    pub tag: u64,
    /// For a successful write: the device-chosen name the host must
    /// record. For reads/frees: the name operated on. `None` exactly
    /// when a write was rejected (nothing was placed).
    pub name: Option<PhysName>,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant (== admission instant for rejected commands).
    pub done: SimTime,
    /// Typed outcome, propagated instead of panicking.
    pub status: IoStatus,
}

/// An asynchronous submission/completion queue pair over a
/// [`NamelessSsd`], mirroring [`requiem_ssd::QueuePair`]'s timing
/// discipline (QD-1 reproduces the serialized path bit-for-bit).
#[derive(Debug)]
pub struct NamelessQueuePair {
    window: InflightWindow,
    cq: CompletionHeap<NamelessCqe>,
    next_id: u64,
}

impl NamelessQueuePair {
    /// A queue pair admitting up to `depth` commands at once (min 1).
    pub fn new(depth: usize) -> Self {
        NamelessQueuePair {
            window: InflightWindow::new(depth),
            cq: CompletionHeap::new(),
            next_id: 0,
        }
    }

    /// Configured window depth.
    pub fn depth(&self) -> usize {
        self.window.depth()
    }

    /// Completions waiting in the completion queue.
    pub fn pending(&self) -> usize {
        self.cq.len()
    }

    /// Submit one command at `now`; returns the queue-assigned id.
    /// Submission instants must be non-decreasing across calls.
    pub fn submit(&mut self, dev: &mut NamelessSsd, now: SimTime, cmd: NamelessCmd) -> CommandId {
        self.next_id += 1;
        let id = CommandId(self.next_id);
        let key = cmd.tag();
        let admit = self.window.admit(now, key);
        let probe = dev.probe().clone();
        // The device's own entry points join this scope, so SQ residency
        // and device spans land on one command record.
        let scope = probe.open_command(cmd.kind(), now);
        if admit > now {
            probe.span(Layer::Block, Cause::Queue, "sq", now, admit);
        }
        let (done, name, status) = match cmd {
            NamelessCmd::Write { tag } => match dev.write(admit, tag) {
                Ok(w) => (w.done, Some(w.name), w.status),
                Err(_) => (admit, None, IoStatus::Rejected),
            },
            NamelessCmd::Read { name, tag } => match dev.read(admit, name, tag) {
                Ok((done, _lat, status)) => (done, Some(name), status),
                Err(_) => (admit, Some(name), IoStatus::Rejected),
            },
            NamelessCmd::Free { name, tag } => match dev.free(admit, name, tag) {
                Ok(done) => (done, Some(name), IoStatus::Ok),
                Err(_) => (admit, Some(name), IoStatus::Rejected),
            },
        };
        self.window.commit(admit, key, done);
        scope.close(done);
        self.cq.push(
            done,
            NamelessCqe {
                id,
                tag: key,
                name,
                submitted: now,
                done,
                status,
            },
        );
        id
    }

    /// Drain every completion ready at `now`, earliest-done first.
    pub fn poll(&mut self, now: SimTime) -> Vec<NamelessCqe> {
        self.cq
            .drain_ready(now)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    }

    /// Pop the earliest completion regardless of the clock.
    pub fn pop(&mut self) -> Option<NamelessCqe> {
        self.cq.pop().map(|(_, c)| c)
    }

    /// Completion instant of the earliest pending completion.
    pub fn next_done(&self) -> Option<SimTime> {
        self.cq.peek_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nameless::NamelessConfig;
    use requiem_ssd::SsdConfig;

    fn device() -> NamelessSsd {
        let mut base = SsdConfig::modern();
        base.buffer.capacity_pages = 0;
        base.shape.channels = 2;
        base.shape.chips_per_channel = 2;
        NamelessSsd::new(NamelessConfig::from(&base))
    }

    #[test]
    fn qd1_matches_serialized_path() {
        let mut a = device();
        let mut b = device();
        let mut qp = NamelessQueuePair::new(1);
        let mut t = SimTime::ZERO;
        let mut names = Vec::new();
        for tag in [5u64, 9, 5, 13] {
            let wa = a.write(t, tag).unwrap();
            qp.submit(&mut b, t, NamelessCmd::Write { tag });
            let wb = qp.pop().unwrap();
            assert_eq!(wa.done, wb.done);
            assert_eq!(Some(wa.name), wb.name);
            assert_eq!(wb.submitted, t);
            t = wa.done;
            names.push((tag, wa.name));
        }
        // reads too
        let (tag, name) = names[1];
        let (ra, _, _) = a.read(t, name, tag).unwrap();
        qp.submit(&mut b, t, NamelessCmd::Read { name, tag });
        let rb = qp.pop().unwrap();
        assert_eq!(ra, rb.done);
    }

    #[test]
    fn same_tag_completes_in_submission_order() {
        let mut dev = device();
        let mut qp = NamelessQueuePair::new(8);
        let t = SimTime::ZERO;
        let a = qp.submit(&mut dev, t, NamelessCmd::Write { tag: 7 });
        let b = qp.submit(&mut dev, t, NamelessCmd::Write { tag: 7 });
        let c1 = qp.pop().unwrap();
        let c2 = qp.pop().unwrap();
        assert_eq!(c1.id, a);
        assert_eq!(c2.id, b);
        assert!(c1.done <= c2.done);
    }

    #[test]
    fn queue_depth_overlaps_distinct_tags() {
        // 4 LUNs: QD4 writes of distinct tags beat the serialized chain.
        let mut serial = device();
        let mut t = SimTime::ZERO;
        for tag in 0..4u64 {
            t = serial.write(t, tag).unwrap().done;
        }
        let serial_done = t;

        let mut dev = device();
        let mut qp = NamelessQueuePair::new(4);
        for tag in 0..4u64 {
            qp.submit(&mut dev, SimTime::ZERO, NamelessCmd::Write { tag });
        }
        let mut last = SimTime::ZERO;
        while let Some(c) = qp.pop() {
            assert!(c.status.is_success());
            last = last.max(c.done);
        }
        assert!(
            last < serial_done,
            "QD4 nameless writes ({last}) should beat serialized ({serial_done})"
        );
    }

    #[test]
    fn stale_name_surfaces_as_rejected_completion() {
        let mut dev = device();
        let mut qp = NamelessQueuePair::new(4);
        let w = dev.write(SimTime::ZERO, 3).unwrap();
        let t = dev.free(w.done, w.name, 3).unwrap();
        // the name was freed: reading it must complete Rejected, not panic
        qp.submit(
            &mut dev,
            t,
            NamelessCmd::Read {
                name: w.name,
                tag: 3,
            },
        );
        let c = qp.pop().unwrap();
        assert_eq!(c.status, IoStatus::Rejected);
        assert_eq!(c.done, t, "a refusal charges no device time");
    }
}
