//! Extended block commands: atomic multi-page writes and barriers.
//!
//! The paper (§3): *"SSD constructors are now proposing to expose new
//! commands, e.g., atomic writes, at the driver's interface."* The cited
//! work (Ouyang et al., HPCA 2011 — "Beyond block I/O: Rethinking
//! traditional storage primitives") showed that because an FTL already
//! writes out of place, a multi-page atomic write costs essentially the
//! same as ordinary writes — the FTL just defers the mapping switch until
//! every page of the batch is durable, then commits it with one metadata
//! record. The host-side alternative (a double-write journal) pays 2× the
//! data I/O. Experiment E6 measures exactly that gap.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::IoStatus;
use requiem_ssd::{Completion, Lpn, Ssd, SsdError};

/// An SSD exposing the extended command set on top of [`Ssd`].
///
/// Dereference-style accessors expose the wrapped device; the extension
/// commands live here.
pub struct ExtendedSsd {
    inner: Ssd,
    atomic_batches: u64,
    atomic_pages: u64,
    barriers: u64,
}

impl std::fmt::Debug for ExtendedSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtendedSsd")
            .field("atomic_batches", &self.atomic_batches)
            .field("barriers", &self.barriers)
            .finish()
    }
}

/// Result of an atomic batch write.
#[derive(Debug, Clone, Copy)]
pub struct AtomicCompletion {
    /// Instant the whole batch became durable and visible.
    pub done: SimTime,
    /// End-to-end latency of the batch.
    pub latency: SimDuration,
    /// Pages written.
    pub pages: u32,
    /// Worst media status across the batch's writes (a batch is as
    /// healthy as its sickest page).
    pub status: IoStatus,
}

impl ExtendedSsd {
    /// Wrap a device.
    pub fn new(inner: Ssd) -> Self {
        ExtendedSsd {
            inner,
            atomic_batches: 0,
            atomic_pages: 0,
            barriers: 0,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Ssd {
        &self.inner
    }

    /// Mutable access to the wrapped device (plain reads/writes/trim).
    pub fn inner_mut(&mut self) -> &mut Ssd {
        &mut self.inner
    }

    /// Ordinary single-page write (pass-through).
    pub fn write(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.inner.write(now, lpn)
    }

    /// Ordinary single-page read (pass-through).
    pub fn read(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.inner.read(now, lpn)
    }

    /// Trim (pass-through).
    pub fn trim(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.inner.trim(now, lpn)
    }

    /// Atomically write a batch of pages: either all become visible or
    /// none. Because the FTL writes out of place anyway, the cost is the
    /// ordinary writes plus one commit-record program's worth of metadata,
    /// folded into the final page's out-of-band area — i.e. **no extra
    /// data I/O** (Ouyang et al.).
    ///
    /// The batch completes when its last page is durable.
    pub fn write_atomic(
        &mut self,
        now: SimTime,
        lpns: &[Lpn],
    ) -> Result<AtomicCompletion, SsdError> {
        assert!(!lpns.is_empty(), "atomic batch must be non-empty");
        // pages of one batch are submitted back-to-back at the same
        // instant; the device's channels and LUNs spread them in parallel
        let mut last_done = now;
        let mut status = IoStatus::Ok;
        for &lpn in lpns {
            let c = self.inner.write(now, lpn)?;
            last_done = last_done.max(c.done);
            status = status.combine(c.status);
        }
        self.atomic_batches += 1;
        self.atomic_pages += lpns.len() as u64;
        Ok(AtomicCompletion {
            done: last_done,
            latency: last_done.since(now),
            pages: lpns.len() as u32,
            status,
        })
    }

    /// Write barrier: completes when every previously submitted operation
    /// has drained to the device.
    pub fn barrier(&mut self, now: SimTime) -> SimTime {
        self.barriers += 1;
        self.inner.drain_time().max(now)
    }

    /// `(batches, pages)` written atomically so far.
    pub fn atomic_stats(&self) -> (u64, u64) {
        (self.atomic_batches, self.atomic_pages)
    }

    /// Barriers issued.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

/// The host-side emulation an application must do **without** atomic
/// writes: a double-write journal. Every page is written twice — once to
/// a journal area, barrier, then once in place. Returns the completion of
/// the in-place writes. Used by E6 as the baseline.
pub fn double_write_journal(
    ssd: &mut Ssd,
    now: SimTime,
    lpns: &[Lpn],
    journal_base: Lpn,
) -> Result<AtomicCompletion, SsdError> {
    assert!(!lpns.is_empty(), "batch must be non-empty");
    let mut status = IoStatus::Ok;
    // phase 1: journal copies, submitted together
    let mut phase1_done = now;
    for (i, _) in lpns.iter().enumerate() {
        let c = ssd.write(now, Lpn(journal_base.0 + i as u64))?;
        phase1_done = phase1_done.max(c.done);
        status = status.combine(c.status);
    }
    // barrier: journal must be durable before in-place writes begin
    let t = phase1_done.max(ssd.drain_time());
    // phase 2: in-place writes, submitted together
    let mut done = t;
    for &lpn in lpns {
        let c = ssd.write(t, lpn)?;
        done = done.max(c.done);
        status = status.combine(c.status);
    }
    Ok(AtomicCompletion {
        done,
        latency: done.since(now),
        pages: lpns.len() as u32,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_ssd::{Served, SsdConfig};

    fn device() -> ExtendedSsd {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        ExtendedSsd::new(Ssd::new(cfg))
    }

    #[test]
    fn atomic_batch_writes_all_pages() {
        let mut d = device();
        let lpns: Vec<Lpn> = (0..8).map(Lpn).collect();
        let c = d.write_atomic(SimTime::ZERO, &lpns).unwrap();
        assert_eq!(c.pages, 8);
        assert!(c.done > SimTime::ZERO);
        assert_eq!(d.atomic_stats(), (1, 8));
        // all pages readable afterwards
        let mut t = c.done;
        for lpn in lpns {
            let r = d.read(t, lpn).unwrap();
            assert_eq!(r.served, Served::Flash);
            t = r.done;
        }
    }

    #[test]
    fn atomic_write_costs_no_extra_data_io() {
        let mut d = device();
        let lpns: Vec<Lpn> = (0..8).map(Lpn).collect();
        d.write_atomic(SimTime::ZERO, &lpns).unwrap();
        // exactly one program per page — the ref [17] result
        assert_eq!(d.inner().metrics().flash_programs.host, 8);
    }

    #[test]
    fn double_write_journal_pays_twice() {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        let mut ssd = Ssd::new(cfg);
        let lpns: Vec<Lpn> = (0..8).map(Lpn).collect();
        double_write_journal(&mut ssd, SimTime::ZERO, &lpns, Lpn(1000)).unwrap();
        assert_eq!(ssd.metrics().flash_programs.host, 16);
    }

    #[test]
    fn atomic_latency_beats_double_write() {
        let mut atomic_dev = device();
        let lpns: Vec<Lpn> = (0..8).map(Lpn).collect();
        let a = atomic_dev.write_atomic(SimTime::ZERO, &lpns).unwrap();

        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        let mut journal_dev = Ssd::new(cfg);
        let j = double_write_journal(&mut journal_dev, SimTime::ZERO, &lpns, Lpn(1000)).unwrap();
        assert!(
            a.latency.as_nanos() * 3 < j.latency.as_nanos() * 2,
            "atomic {} vs journal {}",
            a.latency,
            j.latency
        );
    }

    #[test]
    fn barrier_returns_drain_time() {
        let mut d = device();
        d.write(SimTime::ZERO, Lpn(0)).unwrap();
        let b = d.barrier(SimTime::ZERO);
        assert_eq!(b, d.inner().drain_time());
        assert_eq!(d.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_atomic_batch_rejected() {
        let mut d = device();
        let _ = d.write_atomic(SimTime::ZERO, &[]);
    }
}
