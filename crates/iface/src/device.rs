//! One trait over every storage interface the repo implements.
//!
//! The paper's §3 argument is comparative: the *same* flash hardware can
//! be driven through the legacy block interface ([`Ssd`]), the extended
//! block interface ([`ExtendedSsd`] — TRIM + atomic writes + barriers),
//! or the communication abstraction ([`NamelessSsd`]). Experiments E5,
//! E6 and E8 each used to hand-roll a per-device loop; this trait lets
//! one generic harness drive all three, so the comparison is the
//! interface and nothing else.
//!
//! The vocabulary is the host's, not the device's: a host stores pages
//! under *tags* (its own identifiers — database page ids), and each
//! interface hands back a [`DeviceInterface::Handle`] naming where the
//! page lives *from the host's point of view*:
//!
//! * block interfaces: the handle is the [`Lpn`] — stable forever,
//!   because the FTL's mapping table absorbs every relocation;
//! * nameless: the handle is the [`PhysName`] — the device may move the
//!   page, and then it must *say so*, which is exactly what
//!   [`DeviceInterface::drain_relocations`] delivers. Upcall delivery is
//!   a trait method: for block devices it is empty by definition (the
//!   interface has no channel to express it), which is the paper's
//!   complaint rendered as a type signature.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::IoStatus;
use requiem_ssd::{Lpn, Ssd};

use crate::atomic::{double_write_journal, ExtendedSsd};
use crate::comm::Upcall;
use crate::nameless::{NamelessSsd, PhysName};

/// A page-relocation notice translated into the host's handle type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Relocation<H> {
    /// The host tag supplied at write time.
    pub tag: u64,
    /// The page's new handle; the host must replace its stored one.
    pub new: H,
    /// When the device moved the page.
    pub at: SimTime,
}

/// Outcome of an [`update`](DeviceInterface::update): the new handle
/// (absent exactly when the command never reached the media), the
/// durable instant, and the typed media status. This used to be an
/// `expect()` — a rejected or failed write now surfaces as data the
/// storage manager can act on instead of a host panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome<H> {
    /// The page's new handle; `None` iff `status == Rejected` (device
    /// full / illegal address — nothing was written, keep the old one).
    pub handle: Option<H>,
    /// Instant the write was durable (== `now` on rejection: no media
    /// time was charged).
    pub done: SimTime,
    /// Clean, recovered after salvage, or rejected.
    pub status: IoStatus,
}

/// Outcome of a [`commit_batch`](DeviceInterface::commit_batch).
/// All-or-nothing: on success `handles[i]` is `tags[i]`'s new handle;
/// on rejection `handles` is empty and every old handle is still valid
/// (the whole point of an atomic commit — a refused batch must leave
/// the previous versions intact).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitOutcome<H> {
    /// New handles, parallel to the submitted tags; empty on rejection.
    pub handles: Vec<H>,
    /// Instant the batch was durable and visible.
    pub done: SimTime,
    /// Worst status across the batch's operations.
    pub status: IoStatus,
}

/// Interface-agnostic device counters, diffable across a measured phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceMetrics {
    /// Host-visible writes accepted.
    pub host_writes: u64,
    /// Host-visible reads served.
    pub host_reads: u64,
    /// Flash pages programmed (host + GC + housekeeping).
    pub flash_programs: u64,
    /// Flash pages read.
    pub flash_reads: u64,
    /// Live pages relocated by garbage collection.
    pub gc_pages_moved: u64,
    /// Garbage-collection passes run.
    pub gc_runs: u64,
    /// Controller RAM the interface spends on logical→physical mapping.
    pub mapping_ram_bytes: u64,
    /// Device→host messages delivered so far.
    pub upcalls_delivered: u64,
}

impl DeviceMetrics {
    /// Flash programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        self.flash_programs as f64 / self.host_writes as f64
    }

    /// Counter-wise difference `self - earlier` (mapping RAM carried over).
    pub fn since(&self, earlier: &DeviceMetrics) -> DeviceMetrics {
        DeviceMetrics {
            host_writes: self.host_writes - earlier.host_writes,
            host_reads: self.host_reads - earlier.host_reads,
            flash_programs: self.flash_programs - earlier.flash_programs,
            flash_reads: self.flash_reads - earlier.flash_reads,
            gc_pages_moved: self.gc_pages_moved - earlier.gc_pages_moved,
            gc_runs: self.gc_runs - earlier.gc_runs,
            mapping_ram_bytes: self.mapping_ram_bytes,
            upcalls_delivered: self.upcalls_delivered - earlier.upcalls_delivered,
        }
    }
}

/// The common surface of the block, extended-block, and nameless
/// interfaces, in host vocabulary (tags and handles).
pub trait DeviceInterface {
    /// What the host must remember to find a page again: an [`Lpn`] for
    /// block interfaces, a [`PhysName`] for the nameless one.
    type Handle: Copy + std::fmt::Debug + PartialEq;

    /// Short human label for tables.
    fn label(&self) -> &'static str;

    /// Distinct tags the host may keep live simultaneously (exported
    /// LBAs for block devices; raw pages minus over-provisioning for the
    /// nameless device).
    fn usable_tags(&self) -> u64;

    /// Write (or overwrite) `tag`'s page. `prev` is the handle from the
    /// last update, if any; interfaces that relocate on write use it to
    /// release the old version. The outcome carries the new handle, the
    /// durable instant, and the typed media status — a full device or
    /// illegal tag comes back as [`IoStatus::Rejected`], not a panic.
    fn update(
        &mut self,
        now: SimTime,
        tag: u64,
        prev: Option<Self::Handle>,
    ) -> UpdateOutcome<Self::Handle>;

    /// Read `tag`'s page at `handle`; returns the completion instant and
    /// how the device fared getting the data back: clean, recovered
    /// after media retries, unrecoverable (data lost), or rejected (the
    /// handle no longer names the page — drain relocations and retry).
    fn fetch(&mut self, now: SimTime, tag: u64, handle: Self::Handle) -> (SimTime, IoStatus);

    /// Declare `tag` dead — TRIM for block devices, an exact `free` for
    /// the nameless one. A stale handle (the page already moved or was
    /// already released) reports [`IoStatus::Rejected`]; the page's live
    /// copy, if any, is untouched.
    fn discard(&mut self, now: SimTime, tag: u64, handle: Self::Handle) -> (SimTime, IoStatus);

    /// Durably commit a batch of updates with all-or-nothing visibility.
    /// `prev[i]` is tag `tags[i]`'s current handle, if any. Each
    /// interface pays its own price: a plain block device needs a
    /// double-write journal (2× the data I/O), the extended interface
    /// has native atomic writes (1×), and the nameless interface writes
    /// out of place by construction — old handles stay valid until the
    /// host swaps its index, so atomicity is free (1×).
    fn commit_batch(
        &mut self,
        now: SimTime,
        tags: &[u64],
        prev: &[Option<Self::Handle>],
    ) -> CommitOutcome<Self::Handle>;

    /// Deliver pending page-relocation upcalls in handle vocabulary.
    /// Block interfaces return nothing — not because nothing moved, but
    /// because the interface cannot say so (the FTL's mapping table
    /// silently absorbs the move).
    fn drain_relocations(&mut self) -> Vec<Relocation<Self::Handle>> {
        Vec::new()
    }

    /// When every queued operation has drained.
    fn drain_time(&self) -> SimTime;

    /// Interface-agnostic counters.
    fn device_metrics(&self) -> DeviceMetrics;
}

// ---------------------------------------------------------------------
// block interface: requiem_ssd::Ssd
// ---------------------------------------------------------------------

impl DeviceInterface for Ssd {
    type Handle = Lpn;

    fn label(&self) -> &'static str {
        "block FTL"
    }

    fn usable_tags(&self) -> u64 {
        self.capacity().exported_pages
    }

    fn update(&mut self, now: SimTime, tag: u64, _prev: Option<Lpn>) -> UpdateOutcome<Lpn> {
        match self.write(now, Lpn(tag)) {
            Ok(c) => UpdateOutcome {
                handle: Some(Lpn(tag)),
                done: c.done,
                status: c.status,
            },
            Err(_) => UpdateOutcome {
                handle: None,
                done: now,
                status: IoStatus::Rejected,
            },
        }
    }

    fn fetch(&mut self, now: SimTime, tag: u64, handle: Lpn) -> (SimTime, IoStatus) {
        debug_assert_eq!(handle, Lpn(tag), "block handles are the tag itself");
        match self.read(now, handle) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn discard(&mut self, now: SimTime, _tag: u64, handle: Lpn) -> (SimTime, IoStatus) {
        match self.trim(now, handle) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn commit_batch(
        &mut self,
        now: SimTime,
        tags: &[u64],
        _prev: &[Option<Lpn>],
    ) -> CommitOutcome<Lpn> {
        // No atomic primitive: emulate with a double-write journal in the
        // top of the LBA space (hosts using commit_batch must keep tags
        // below `usable_tags - batch`).
        let journal_base = Lpn(self.capacity().exported_pages - tags.len() as u64);
        let lpns: Vec<Lpn> = tags.iter().map(|&t| Lpn(t)).collect();
        match double_write_journal(self, now, &lpns, journal_base) {
            Ok(c) => CommitOutcome {
                handles: lpns,
                done: c.done,
                status: c.status,
            },
            // refused before any in-place write became visible: the
            // journal copies are garbage, the old versions are intact
            Err(_) => CommitOutcome {
                handles: Vec::new(),
                done: now,
                status: IoStatus::Rejected,
            },
        }
    }

    fn drain_time(&self) -> SimTime {
        Ssd::drain_time(self)
    }

    fn device_metrics(&self) -> DeviceMetrics {
        let m = self.metrics();
        DeviceMetrics {
            host_writes: m.host_writes,
            host_reads: m.host_reads,
            flash_programs: m.flash_programs.total(),
            flash_reads: m.flash_reads.total(),
            gc_pages_moved: m.gc_pages_moved,
            gc_runs: m.gc_runs,
            mapping_ram_bytes: self.config().mapping_table_bytes(),
            upcalls_delivered: 0,
        }
    }
}

// ---------------------------------------------------------------------
// extended block interface: TRIM + atomic writes + barriers
// ---------------------------------------------------------------------

impl DeviceInterface for ExtendedSsd {
    type Handle = Lpn;

    fn label(&self) -> &'static str {
        "extended block"
    }

    fn usable_tags(&self) -> u64 {
        self.inner().capacity().exported_pages
    }

    fn update(&mut self, now: SimTime, tag: u64, _prev: Option<Lpn>) -> UpdateOutcome<Lpn> {
        match self.write(now, Lpn(tag)) {
            Ok(c) => UpdateOutcome {
                handle: Some(Lpn(tag)),
                done: c.done,
                status: c.status,
            },
            Err(_) => UpdateOutcome {
                handle: None,
                done: now,
                status: IoStatus::Rejected,
            },
        }
    }

    fn fetch(&mut self, now: SimTime, tag: u64, handle: Lpn) -> (SimTime, IoStatus) {
        debug_assert_eq!(handle, Lpn(tag), "block handles are the tag itself");
        match self.read(now, handle) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn discard(&mut self, now: SimTime, _tag: u64, handle: Lpn) -> (SimTime, IoStatus) {
        match self.trim(now, handle) {
            Ok(c) => (c.done, c.status),
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn commit_batch(
        &mut self,
        now: SimTime,
        tags: &[u64],
        _prev: &[Option<Lpn>],
    ) -> CommitOutcome<Lpn> {
        let lpns: Vec<Lpn> = tags.iter().map(|&t| Lpn(t)).collect();
        match self.write_atomic(now, &lpns) {
            Ok(c) => CommitOutcome {
                handles: lpns,
                done: c.done,
                status: c.status,
            },
            // the FTL defers the mapping switch until the whole batch is
            // durable, so a refused batch leaves the old versions visible
            Err(_) => CommitOutcome {
                handles: Vec::new(),
                done: now,
                status: IoStatus::Rejected,
            },
        }
    }

    fn drain_time(&self) -> SimTime {
        self.inner().drain_time()
    }

    fn device_metrics(&self) -> DeviceMetrics {
        let m = self.inner().metrics();
        DeviceMetrics {
            host_writes: m.host_writes,
            host_reads: m.host_reads,
            flash_programs: m.flash_programs.total(),
            flash_reads: m.flash_reads.total(),
            gc_pages_moved: m.gc_pages_moved,
            gc_runs: m.gc_runs,
            mapping_ram_bytes: self.inner().config().mapping_table_bytes(),
            upcalls_delivered: 0,
        }
    }
}

// ---------------------------------------------------------------------
// communication abstraction: nameless writes + upcalls
// ---------------------------------------------------------------------

impl DeviceInterface for NamelessSsd {
    type Handle = PhysName;

    fn label(&self) -> &'static str {
        "nameless"
    }

    fn usable_tags(&self) -> u64 {
        NamelessSsd::usable_tags(self)
    }

    fn update(
        &mut self,
        now: SimTime,
        tag: u64,
        prev: Option<PhysName>,
    ) -> UpdateOutcome<PhysName> {
        // release the old version first; the host's handle may be stale
        // if GC moved it, in which case the pending upcall names the
        // current location — apply it and free that instead. No pending
        // upcall means the old version is already gone (freed by an
        // earlier drain, or its block was retired): the free is
        // idempotent-by-intent and skipping it is the correct action.
        if let Some(old) = prev {
            if self.free(now, old, tag).is_err() {
                let cur = self.upcalls_pending().iter().rev().find_map(|u| match u {
                    Upcall::Migrated { tag: t, new, .. } if *t == tag => Some(*new),
                    _ => None,
                });
                if let Some(cur) = cur {
                    let _ = self.free(now, cur, tag);
                }
            }
        }
        match self.write(now, tag) {
            Ok(w) => UpdateOutcome {
                handle: Some(w.name),
                done: w.done,
                status: w.status,
            },
            Err(_) => UpdateOutcome {
                handle: None,
                done: now,
                status: IoStatus::Rejected,
            },
        }
    }

    fn fetch(&mut self, now: SimTime, tag: u64, handle: PhysName) -> (SimTime, IoStatus) {
        match self.read(now, handle, tag) {
            Ok((done, _lat, status)) => (done, status),
            // stale name: the host must drain its relocation upcalls
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn discard(&mut self, now: SimTime, tag: u64, handle: PhysName) -> (SimTime, IoStatus) {
        match self.free(now, handle, tag) {
            Ok(done) => (done, IoStatus::Ok),
            // stale name: the page already moved; the live copy (named
            // by a pending upcall) is untouched
            Err(_) => (now, IoStatus::Rejected),
        }
    }

    fn commit_batch(
        &mut self,
        now: SimTime,
        tags: &[u64],
        prev: &[Option<PhysName>],
    ) -> CommitOutcome<PhysName> {
        // out-of-place by construction: write every new version first
        // (old names stay valid — a crash before the index swap leaves
        // the old batch intact), then release the old versions. A write
        // refusal mid-batch aborts before any old version is freed, so
        // the previous batch stays fully intact: atomicity holds even
        // on failure.
        let mut names = Vec::with_capacity(tags.len());
        let mut done = now;
        let mut status = IoStatus::Ok;
        for &tag in tags {
            match self.write(now, tag) {
                Ok(w) => {
                    done = done.max(w.done);
                    status = status.combine(w.status);
                    names.push(w.name);
                }
                Err(_) => {
                    return CommitOutcome {
                        handles: Vec::new(),
                        done,
                        status: IoStatus::Rejected,
                    };
                }
            }
        }
        for (i, &tag) in tags.iter().enumerate() {
            if let Some(old) = prev[i] {
                let _ = self.free(done, old, tag); // stale = already moved
            }
        }
        CommitOutcome {
            handles: names,
            done,
            status,
        }
    }

    fn drain_relocations(&mut self) -> Vec<Relocation<PhysName>> {
        self.upcalls()
            .drain()
            .into_iter()
            .filter_map(|u| match u {
                Upcall::Migrated { tag, new, at, .. } => Some(Relocation { tag, new, at }),
                _ => None,
            })
            .collect()
    }

    fn drain_time(&self) -> SimTime {
        NamelessSsd::drain_time(self)
    }

    fn device_metrics(&self) -> DeviceMetrics {
        let m = self.metrics();
        DeviceMetrics {
            host_writes: m.host_writes,
            host_reads: m.host_reads,
            flash_programs: m.flash_programs.total(),
            flash_reads: m.flash_reads.total(),
            gc_pages_moved: m.gc_pages_moved,
            gc_runs: m.gc_runs,
            mapping_ram_bytes: self.mapping_table_bytes(),
            upcalls_delivered: self.upcalls_pending().delivered(),
        }
    }
}

// ---------------------------------------------------------------------
// generic harness: the workload that used to be copy-pasted per device
// ---------------------------------------------------------------------

/// What [`tag_churn`] measured during its churn phase.
#[derive(Debug, Clone, Copy)]
pub struct ChurnReport {
    /// Tags kept live.
    pub live_tags: u64,
    /// Rewrites issued during the churn phase.
    pub rewrites: u64,
    /// Wall-clock of the churn phase.
    pub makespan: SimDuration,
    /// Counter deltas over the churn phase.
    pub delta: DeviceMetrics,
    /// Host MB/s during churn (4 KiB pages).
    pub throughput_mbs: f64,
    /// Rewrites the device refused (`IoStatus::Rejected`) — 0 on a
    /// healthy run; a nonzero count means the device ran out of space.
    pub rejected: u64,
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Fill `live_fraction` of the device's usable tags, then rewrite random
/// tags for `drive_fills` passes over the live set, applying relocation
/// upcalls as they arrive. The identical loop runs against every
/// [`DeviceInterface`] implementation — interface differences are the
/// *only* variable.
pub fn tag_churn<D: DeviceInterface>(
    dev: &mut D,
    live_fraction: f64,
    drive_fills: u64,
    seed: u64,
) -> ChurnReport {
    let live = (dev.usable_tags() as f64 * live_fraction) as u64;
    assert!(live > 0, "empty live set");
    let mut handles: Vec<Option<D::Handle>> = vec![None; live as usize];
    let mut t = SimTime::ZERO;
    let mut rejected = 0u64;
    for tag in 0..live {
        let out = dev.update(t, tag, None);
        if let Some(h) = out.handle {
            handles[tag as usize] = Some(h);
        } else {
            rejected += 1;
        }
        t = out.done;
    }
    let t0 = t;
    let before = dev.device_metrics();
    let rewrites = drive_fills * live;
    let mut x = seed;
    for _ in 0..rewrites {
        x = lcg(x);
        let tag = x % live;
        for r in dev.drain_relocations() {
            if r.tag < live {
                handles[r.tag as usize] = Some(r.new);
            }
        }
        let out = dev.update(t, tag, handles[tag as usize]);
        if let Some(h) = out.handle {
            handles[tag as usize] = Some(h);
        } else {
            rejected += 1;
        }
        t = out.done;
    }
    for r in dev.drain_relocations() {
        if r.tag < live {
            handles[r.tag as usize] = Some(r.new);
        }
    }
    let delta = dev.device_metrics().since(&before);
    let makespan = t.since(t0);
    let secs = makespan.as_secs_f64();
    ChurnReport {
        live_tags: live,
        rewrites,
        makespan,
        delta,
        throughput_mbs: if secs > 0.0 {
            delta.host_writes as f64 * 4096.0 / (1024.0 * 1024.0) / secs
        } else {
            0.0
        },
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_ssd::SsdConfig;

    use crate::nameless::NamelessConfig;

    fn small_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::modern();
        cfg.buffer.capacity_pages = 0;
        cfg.shape.channels = 2;
        cfg.shape.chips_per_channel = 2;
        cfg
    }

    /// The generic loop a host would actually run: update, remember the
    /// handle, fetch it back — for each interface.
    fn round_trip<D: DeviceInterface>(dev: &mut D) {
        let w = dev.update(SimTime::ZERO, 7, None);
        assert_eq!(w.status, IoStatus::Ok, "{}: clean write", dev.label());
        let h = w.handle.expect("clean write returns a handle");
        let (read_done, status) = dev.fetch(w.done, 7, h);
        assert_eq!(status, IoStatus::Ok, "{}: clean media", dev.label());
        assert!(read_done > w.done, "{}: fetch must take time", dev.label());
        let w2 = dev.update(read_done, 7, Some(h));
        assert!(w2.done > read_done);
        let h2 = w2.handle.expect("clean rewrite returns a handle");
        let (end, st) = dev.discard(w2.done, 7, h2);
        assert_eq!(st, IoStatus::Ok, "{}: live discard accepted", dev.label());
        assert!(end >= w2.done);
        let m = dev.device_metrics();
        assert_eq!(m.host_writes, 2);
        assert_eq!(m.host_reads, 1);
    }

    #[test]
    fn round_trip_on_every_interface() {
        round_trip(&mut Ssd::new(small_cfg()));
        round_trip(&mut ExtendedSsd::new(Ssd::new(small_cfg())));
        round_trip(&mut NamelessSsd::new(NamelessConfig::from(&small_cfg())));
    }

    #[test]
    fn commit_batch_io_cost_ranks_interfaces() {
        let tags: Vec<u64> = (0..8).collect();
        let prev: Vec<Option<Lpn>> = vec![None; 8];

        let mut blk = Ssd::new(small_cfg());
        let cb = blk.commit_batch(SimTime::ZERO, &tags, &prev);
        assert_eq!(cb.status, IoStatus::Ok);
        assert_eq!(cb.handles.len(), 8);
        let mut ext = ExtendedSsd::new(Ssd::new(small_cfg()));
        let ce = ext.commit_batch(SimTime::ZERO, &tags, &prev);
        assert_eq!(ce.status, IoStatus::Ok);
        let mut nl = NamelessSsd::new(NamelessConfig::from(&small_cfg()));
        let nprev: Vec<Option<PhysName>> = vec![None; 8];
        let cn = nl.commit_batch(SimTime::ZERO, &tags, &nprev);
        assert_eq!(cn.status, IoStatus::Ok);
        assert_eq!(cn.handles.len(), 8);

        // journal pays 2x; the other two pay 1x
        assert_eq!(blk.device_metrics().flash_programs, 16);
        assert_eq!(ext.device_metrics().flash_programs, 8);
        assert_eq!(nl.device_metrics().flash_programs, 8);
    }

    #[test]
    fn device_full_surfaces_as_rejected_not_panic() {
        let mut d = NamelessSsd::new(NamelessConfig::from(&small_cfg()));
        let raw = d.config().shape.total_luns() as u64 * d.config().flash.geometry.total_pages();
        let mut t = SimTime::ZERO;
        let mut saw_reject = false;
        // distinct tags, never freed: the device must eventually refuse
        // with a typed status instead of panicking (satellite 1)
        for tag in 0..raw * 2 {
            let out = d.update(t, tag, None);
            t = out.done;
            if out.handle.is_none() {
                assert_eq!(out.status, IoStatus::Rejected);
                saw_reject = true;
                break;
            }
        }
        assert!(saw_reject, "overfilled device must reject");
    }

    #[test]
    fn churn_applies_relocations_and_stays_consistent() {
        let mut dev = NamelessSsd::new(NamelessConfig::from(&small_cfg()));
        let r = tag_churn(&mut dev, 0.9, 2, 99);
        assert_eq!(r.rejected, 0, "healthy churn rejects nothing");
        assert!(r.delta.gc_runs > 0, "churn must trigger GC");
        assert!(
            r.delta.upcalls_delivered > 0,
            "GC migrations must reach the host"
        );
        assert!(r.throughput_mbs > 0.0);
    }

    #[test]
    fn same_churn_on_block_interface_reports_no_upcalls() {
        let mut dev = Ssd::new(small_cfg());
        let r = tag_churn(&mut dev, 1.0, 2, 99);
        assert!(r.delta.gc_pages_moved > 0, "GC moved pages…");
        assert_eq!(
            r.delta.upcalls_delivered, 0,
            "…but the block interface cannot say so"
        );
        assert!(r.delta.mapping_ram_bytes > 0, "and it pays mapping RAM");
    }
}
