//! The device→host message vocabulary of the communication abstraction.
//!
//! §3: *"the database system is no longer the master and secondary
//! storage a slave (they are communicating peers)"*. Concretely, the
//! device initiates messages the block interface has no way to express:
//! a migrated page's new name, garbage-collection pressure, wear status.

use requiem_sim::time::SimTime;
use std::collections::VecDeque;

use crate::nameless::PhysName;

/// A message from the device to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Upcall {
    /// Garbage collection moved a page; the host must update its pointer.
    Migrated {
        /// The host tag supplied at write time (e.g. a database page id).
        tag: u64,
        /// The page's previous name.
        old: PhysName,
        /// The page's new name.
        new: PhysName,
        /// When the migration happened.
        at: SimTime,
    },
    /// Free space is running low; the host may want to free or trim.
    GcPressure {
        /// Free blocks remaining across the device.
        free_blocks: u32,
        /// When the pressure was observed.
        at: SimTime,
    },
    /// A block was retired for wear; capacity shrank.
    BlockRetired {
        /// When it happened.
        at: SimTime,
    },
}

/// A FIFO of pending upcalls, drained by the host.
#[derive(Debug, Default)]
pub struct UpcallQueue {
    q: VecDeque<Upcall>,
    delivered: u64,
}

impl UpcallQueue {
    /// New, empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Device side: enqueue a message.
    pub fn push(&mut self, u: Upcall) {
        self.q.push_back(u);
    }

    /// Host side: take the next message.
    pub fn pop(&mut self) -> Option<Upcall> {
        let u = self.q.pop_front();
        if u.is_some() {
            self.delivered += 1;
        }
        u
    }

    /// Host side: drain everything pending.
    pub fn drain(&mut self) -> Vec<Upcall> {
        self.delivered += self.q.len() as u64;
        self.q.drain(..).collect()
    }

    /// Peek at pending messages without delivering them.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Upcall> {
        self.q.iter()
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Total messages delivered to the host so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_flash::PageAddr;
    use requiem_ssd::LunId;

    fn name(lun: u32, block: u32, page: u32) -> PhysName {
        PhysName {
            lun: LunId(lun),
            addr: PageAddr {
                plane: 0,
                block,
                page,
            },
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = UpcallQueue::new();
        q.push(Upcall::GcPressure {
            free_blocks: 3,
            at: SimTime::ZERO,
        });
        q.push(Upcall::BlockRetired { at: SimTime::ZERO });
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop(), Some(Upcall::GcPressure { .. })));
        assert!(matches!(q.pop(), Some(Upcall::BlockRetired { .. })));
        assert!(q.pop().is_none());
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn drain_empties_and_counts() {
        let mut q = UpcallQueue::new();
        for i in 0..5 {
            q.push(Upcall::Migrated {
                tag: i,
                old: name(0, 0, i as u32),
                new: name(1, 0, i as u32),
                at: SimTime::from_nanos(i),
            });
        }
        let all = q.drain();
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 5);
    }
}
