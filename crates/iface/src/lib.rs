//! # requiem-iface — life beyond the block device interface
//!
//! §3 of the paper proposes abandoning the memory abstraction for a
//! *communication abstraction*: the database system and the storage device
//! become **communicating peers** rather than master and slave, and the
//! granularity of interaction stops being fixed-size blocks. This crate
//! implements the concrete mechanisms the paper names:
//!
//! * [`atomic::ExtendedSsd`] — the incremental path: keep the block
//!   interface but add the commands vendors were already proposing —
//!   **TRIM** (already in `requiem-ssd`), **atomic multi-page writes**
//!   (the paper's ref [17], Ouyang et al. "Beyond block I/O"), and write
//!   barriers. Atomic writes exploit the FTL's copy-on-write nature: the
//!   batch costs no extra data I/O, only a commit record.
//! * [`nameless::NamelessSsd`] — the radical path: **nameless writes**.
//!   The device chooses the physical location and returns its *name*; the
//!   host stores names instead of maintaining a redundant logical map.
//!   When garbage collection migrates a page, the device sends the host an
//!   *upcall* — the peer-to-peer message flow of the communication
//!   abstraction. The FTL's RAM-hungry mapping table disappears.
//! * [`comm::Upcall`] — the device→host message vocabulary.
//! * [`device::DeviceInterface`] — one trait over all three interfaces
//!   (block, extended block, nameless), in host vocabulary (tags and
//!   handles), so experiments E5/E6/E8 can drive the *identical*
//!   workload through each and vary nothing but the interface. Upcall
//!   delivery is a trait method — empty for block devices, which is the
//!   paper's complaint rendered as a type signature.
//! * [`qpair::NamelessQueuePair`] — nameless commands through the
//!   batched-doorbell discipline of the queue-pair engine, so the
//!   cooperating-logs storage manager (E14) drives the device at queue
//!   depth with typed [`requiem_sim::IoStatus`] on every completion.
//!
//! Experiments E5, E6, E8 and E14 quantify what each mechanism buys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod comm;
pub mod device;
pub mod nameless;
pub mod qpair;

pub use atomic::ExtendedSsd;
pub use comm::{Upcall, UpcallQueue};
pub use device::{
    tag_churn, ChurnReport, CommitOutcome, DeviceInterface, DeviceMetrics, Relocation,
    UpdateOutcome,
};
pub use nameless::{NamelessCompletion, NamelessConfig, NamelessError, NamelessSsd, PhysName};
pub use qpair::{NamelessCmd, NamelessCqe, NamelessQueuePair};
