//! Nameless writes: the device names the data, the host keeps the name.
//!
//! §3: with a communication abstraction, *"extent-based allocation is
//! irrelevant, nameless writes are interesting"*. In a nameless write the
//! host sends only data (plus an opaque `tag` such as its database page
//! id); the **device** picks the physical location — wherever its write
//! frontier and parallelism make cheapest — and returns the location's
//! *name*. The host stores names in the index it already maintains, so
//! the FTL's page-mapping table (8 bytes/page of controller RAM) simply
//! disappears, and the double indirection (host index → LBA → physical)
//! collapses to one hop.
//!
//! The cost is a protocol: when garbage collection relocates a live page,
//! the device must tell the host its new name — the
//! [`Upcall::Migrated`](crate::comm::Upcall) message. A host that reads a
//! stale name gets [`NamelessError::StaleName`] (detectable via the
//! out-of-band tag), so correctness is preserved even with a lazy host.
//!
//! [`NamelessSsd`] reuses the same flash, channel, directory, and GC
//! machinery as `requiem-ssd` — only the mapping is gone.

use requiem_flash::{FlashError, FlashSpec, Lun, PageAddr, PagePayload};
use requiem_sim::probe::{Cause, Layer, Probe};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{FaultPlan, IoStatus, Occupant, Resource};
use requiem_ssd::addr::{ArrayShape, LunId, PhysPage};
use requiem_ssd::block_dir::{BlockDirectory, Stream};
use requiem_ssd::channel::ChannelTiming;
use requiem_ssd::config::{GcPolicyKind, SsdConfig};
use requiem_ssd::metrics::{OpCause, SsdMetrics};
use requiem_ssd::Lpn;
use serde::{Deserialize, Serialize};

use crate::comm::{Upcall, UpcallQueue};

/// The resource occupant tag for a flash operation cause (the nameless
/// twin of the block controller's mapping — kept local because the
/// scheduler's helper is crate-private to `requiem-ssd`).
fn occupant_of(cause: OpCause) -> Occupant {
    match cause {
        OpCause::Host => Occupant::Host,
        OpCause::Gc => Occupant::Gc,
        OpCause::WearLevel => Occupant::Wear,
        OpCause::Merge => Occupant::Merge,
        OpCause::Translation => Occupant::Translation,
        OpCause::Recovery => Occupant::Recovery,
    }
}

/// The physical name of a written page — the device-chosen location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysName {
    /// The LUN holding the page.
    pub lun: LunId,
    /// The page within the LUN.
    pub addr: PageAddr,
}

/// Configuration of a nameless device (the FTL-mapping knobs of
/// [`SsdConfig`] are meaningless here and absent).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamelessConfig {
    /// Array shape.
    pub shape: ArrayShape,
    /// Flash die specification.
    pub flash: FlashSpec,
    /// Channel timing.
    pub channel: ChannelTiming,
    /// Host link throughput, bytes/µs.
    pub host_link_bytes_per_us: u32,
    /// Controller overhead per command.
    pub controller_overhead: SimDuration,
    /// GC trigger threshold (free blocks per LUN).
    pub gc_threshold: u32,
    /// Use on-die copyback for relocations.
    pub copyback: bool,
    /// Wear-aware block allocation.
    pub wear_aware: bool,
    /// Over-provisioning ratio the host is expected to respect: the
    /// fraction of raw pages it must leave unnamed so GC has headroom.
    /// A block-device FTL enforces this by exporting fewer LBAs; a
    /// nameless device can only *tell* the host (another message the
    /// communication abstraction carries that the block interface hides).
    pub op_ratio: f64,
    /// RNG seed.
    pub seed: u64,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] injects
    /// nothing and is bit-exact with the pre-fault code).
    #[serde(default)]
    pub fault: FaultPlan,
}

impl From<&SsdConfig> for NamelessConfig {
    fn from(c: &SsdConfig) -> Self {
        NamelessConfig {
            shape: c.shape.clone(),
            flash: c.flash.clone(),
            channel: c.channel.clone(),
            host_link_bytes_per_us: c.host_link_bytes_per_us,
            controller_overhead: c.controller_overhead,
            gc_threshold: c.gc.free_block_threshold,
            copyback: c.gc.copyback,
            wear_aware: c.wl.dynamic,
            op_ratio: c.op_ratio,
            seed: c.seed,
            fault: c.fault.clone(),
        }
    }
}

/// Errors from the nameless interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamelessError {
    /// The name no longer holds the tagged page (migrated or freed); the
    /// host must drain its upcalls.
    StaleName {
        /// The stale name presented.
        name: PhysName,
    },
    /// No usable space left.
    DeviceFull,
}

impl std::fmt::Display for NamelessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NamelessError::StaleName { name } => {
                write!(f, "stale name {:?}; drain migration upcalls", name)
            }
            NamelessError::DeviceFull => write!(f, "device full"),
        }
    }
}

impl std::error::Error for NamelessError {}

/// Completion of a nameless write.
#[derive(Debug, Clone, Copy)]
pub struct NamelessCompletion {
    /// The device-chosen name.
    pub name: PhysName,
    /// Instant the write was durable.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Clean, or recovered after program-fail salvage(s).
    pub status: IoStatus,
}

/// A flash device with no FTL mapping: nameless writes + migration upcalls.
pub struct NamelessSsd {
    cfg: NamelessConfig,
    luns: Vec<Lun>,
    lun_res: Vec<Resource>,
    chan_res: Vec<Resource>,
    host_link: Resource,
    dir: BlockDirectory,
    upcalls: UpcallQueue,
    metrics: SsdMetrics,
    rr: u32,
    gc_active: bool,
    probe: Probe,
}

impl std::fmt::Debug for NamelessSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamelessSsd")
            .field("luns", &self.luns.len())
            .field("writes", &self.metrics.host_writes)
            .field("pending_upcalls", &self.upcalls.len())
            .finish()
    }
}

impl NamelessSsd {
    /// Build a nameless device.
    pub fn new(cfg: NamelessConfig) -> Self {
        let nluns = cfg.shape.total_luns();
        let geom = cfg.flash.geometry.clone();
        NamelessSsd {
            luns: (0..nluns)
                .map(|i| {
                    let mut lun = Lun::new(i, cfg.flash.clone(), cfg.seed);
                    lun.apply_faults(cfg.fault.unit_view(i));
                    lun
                })
                .collect(),
            lun_res: (0..nluns)
                .map(|i| Resource::new(format!("chip{i}")))
                .collect(),
            chan_res: (0..cfg.shape.channels)
                .map(|i| Resource::new(format!("chan{i}")))
                .collect(),
            host_link: Resource::new("host-link"),
            dir: BlockDirectory::new(nluns, geom),
            upcalls: UpcallQueue::new(),
            metrics: SsdMetrics::new(),
            rr: 0,
            gc_active: false,
            probe: Probe::disabled(),
            cfg,
        }
    }

    /// Attach an observability probe. An enabled probe turns on occupant
    /// tracking for every resource, so a host command stalled behind GC
    /// relocations gets the wait blamed as `GcStall` spans — the same
    /// discipline the block controller follows, which is what lets E14
    /// compare stall blame across the two interfaces.
    pub fn attach_probe(&mut self, probe: Probe) {
        let on = probe.is_enabled();
        self.probe = probe;
        for r in self.lun_res.iter_mut().chain(self.chan_res.iter_mut()) {
            r.track_occupants(on);
        }
        self.host_link.track_occupants(on);
    }

    /// The attached probe (disabled handle when none was attached).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The configuration.
    pub fn config(&self) -> &NamelessConfig {
        &self.cfg
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &SsdMetrics {
        &self.metrics
    }

    /// The device→host message queue.
    pub fn upcalls(&mut self) -> &mut UpcallQueue {
        &mut self.upcalls
    }

    /// Immutable view of the device→host message queue (for metrics).
    pub fn upcalls_pending(&self) -> &UpcallQueue {
        &self.upcalls
    }

    /// Distinct host tags the device can keep live while honouring its
    /// over-provisioning ratio (the analog of an FTL's exported LBA count).
    pub fn usable_tags(&self) -> u64 {
        let raw = self.cfg.shape.total_luns() as u64 * self.cfg.flash.geometry.total_pages();
        (raw as f64 * (1.0 - self.cfg.op_ratio)) as u64
    }

    /// Controller RAM spent on logical→physical mapping: **zero** — the
    /// point of the interface (contrast [`SsdConfig::mapping_table_bytes`]).
    pub fn mapping_table_bytes(&self) -> u64 {
        0
    }

    /// When all queued operations drain.
    pub fn drain_time(&self) -> SimTime {
        let mut t = self.host_link.next_free();
        for r in self.lun_res.iter().chain(self.chan_res.iter()) {
            t = t.max(r.next_free());
        }
        t
    }

    fn host_link_time(&self) -> SimDuration {
        let bytes = self.cfg.flash.geometry.page_size;
        SimDuration::from_nanos(
            (bytes as u64 * 1_000).div_ceil(self.cfg.host_link_bytes_per_us as u64),
        )
    }

    fn place_lun(&mut self, t: SimTime) -> LunId {
        let prog = self.cfg.flash.timing.program_mean();
        let n = self.cfg.shape.total_luns();
        let offset = self.rr;
        self.rr = self.rr.wrapping_add(1);
        let mut best = LunId(offset % n);
        let mut best_start = SimTime::MAX;
        for k in 0..n {
            let l = self.cfg.shape.interleaved_lun((offset.wrapping_add(k)) % n);
            if self.dir.exhausted(l) {
                continue;
            }
            let start = self.lun_res[l.0 as usize].peek(t, prog).start;
            if start < best_start {
                best_start = start;
                best = l;
            }
        }
        best
    }

    /// Program one page. A worn-out or fault-scheduled program surfaces
    /// as `Err(())`; the caller retires the block and relocates its live
    /// pages ([`NamelessSsd::salvage_and_retire`]). The failed attempt's
    /// program time is still charged — the chip spent it.
    fn op_program(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        tag: u64,
        use_channel: bool,
        cause: OpCause,
    ) -> Result<SimTime, ()> {
        let chan = self.cfg.shape.channel_of(phys.lun) as usize;
        let occ = occupant_of(cause);
        let start = if use_channel {
            let bus = self
                .cfg
                .channel
                .write_bus_time(self.cfg.flash.geometry.page_size);
            let cg = self.chan_res[chan].reserve_tagged(not_before, bus, occ);
            if self.probe.is_enabled() {
                let blame = self.chan_res[chan].blame(not_before, cg.start);
                self.probe.wait_spans(
                    Layer::Channel,
                    self.chan_res[chan].name(),
                    not_before,
                    cg.start,
                    &blame,
                );
                self.probe.span(
                    Layer::Channel,
                    Cause::Transfer,
                    self.chan_res[chan].name(),
                    cg.start,
                    cg.end,
                );
            }
            cg.end
        } else {
            not_before
        };
        let dur = match self.luns[phys.lun.0 as usize].program(phys.addr, PagePayload::Tag(tag)) {
            Ok(o) => o.duration,
            Err(FlashError::ProgramFailed { .. }) => {
                self.lun_res[phys.lun.0 as usize].reserve_tagged(
                    start,
                    self.cfg.flash.timing.program(phys.addr.page),
                    occ,
                );
                return Err(());
            }
            Err(e) => unreachable!("nameless controller bug: illegal program: {e}"),
        };
        let g = self.lun_res[phys.lun.0 as usize].reserve_tagged(start, dur, occ);
        if self.probe.is_enabled() {
            let li = phys.lun.0 as usize;
            let blame = self.lun_res[li].blame(start, g.start);
            self.probe.wait_spans(
                Layer::Flash,
                self.lun_res[li].name(),
                start,
                g.start,
                &blame,
            );
            self.probe.span(
                Layer::Flash,
                Cause::CellProgram,
                self.lun_res[li].name(),
                g.start,
                g.end,
            );
        }
        self.metrics.flash_programs.bump(cause);
        Ok(g.end)
    }

    /// A program failed on a worn-out block: retire it and move its live
    /// pages somewhere safe. Every relocation is announced to the host
    /// as [`Upcall::Migrated`] — the communication abstraction lets the
    /// device *say* what a block-device FTL would silently absorb.
    fn salvage_and_retire(&mut self, lun: LunId, addr: PageAddr, t: SimTime) {
        self.metrics.recovery.program_salvages += 1;
        self.metrics.blocks_retired += 1;
        let geom = self.cfg.flash.geometry.clone();
        let block_idx = geom.block_index(geom.block_of(addr));
        // retire FIRST so relocations below can never target this block
        self.dir.retire(lun, block_idx);
        self.upcalls.push(Upcall::BlockRetired { at: t });
        let live = self.dir.live_pages(lun, block_idx);
        for (a, tag) in live {
            let old = PhysPage { lun, addr: a };
            let (after_read, _payload, _st) = self.op_read(t, old, false, OpCause::WearLevel, None);
            let Some(np) = self.dir.next_page(lun, Stream::Gc, self.cfg.wear_aware) else {
                return; // out of space: page stays readable on the retired block
            };
            if self
                .op_program(after_read, np.phys, tag.0, false, OpCause::WearLevel)
                .is_err()
            {
                // nested failure: leave the page where it is
                continue;
            }
            self.dir.invalidate(old);
            self.dir.mark_valid(np.phys, tag);
            self.upcalls.push(Upcall::Migrated {
                tag: tag.0,
                old: PhysName {
                    lun: old.lun,
                    addr: old.addr,
                },
                new: PhysName {
                    lun: np.phys.lun,
                    addr: np.phys.addr,
                },
                at: t,
            });
        }
    }

    /// Read one flash page, running the recovery pipeline when the ECC
    /// gives up: read-retry ladder → soft-decode escalation → XOR parity
    /// rebuild across the LUN stripe. `tag` enables the nameless
    /// device's signature move: a successful parity rebuild rewrites the
    /// page at a fresh location and *tells the host* via
    /// [`Upcall::Migrated`] (pass `None` on GC relocation reads, which
    /// re-home the page themselves). Returns the completion instant, the
    /// payload, and how hard the device had to work for it.
    fn op_read(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        with_transfer: bool,
        cause: OpCause,
        tag: Option<u64>,
    ) -> (SimTime, PagePayload, IoStatus) {
        let chan = self.cfg.shape.channel_of(phys.lun) as usize;
        let li = phys.lun.0 as usize;
        let occ = occupant_of(cause);
        // command cycles are latency, not bus occupancy (see requiem-ssd)
        let cmd_done = not_before + self.cfg.channel.command;
        self.metrics.flash_reads.bump(cause);
        if self.probe.is_enabled() {
            self.probe.span(
                Layer::Channel,
                Cause::Command,
                self.chan_res[chan].name(),
                not_before,
                cmd_done,
            );
        }
        let finish = |slf: &mut Self, from: SimTime, payload: PagePayload, status: IoStatus| {
            if with_transfer {
                let xfer = slf.cfg.flash.geometry.page_size;
                let xg =
                    slf.chan_res[chan].reserve_tagged(from, slf.cfg.channel.transfer(xfer), occ);
                if slf.probe.is_enabled() {
                    let blame = slf.chan_res[chan].blame(from, xg.start);
                    slf.probe.wait_spans(
                        Layer::Channel,
                        slf.chan_res[chan].name(),
                        from,
                        xg.start,
                        &blame,
                    );
                    slf.probe.span(
                        Layer::Channel,
                        Cause::Transfer,
                        slf.chan_res[chan].name(),
                        xg.start,
                        xg.end,
                    );
                }
                (xg.end, payload, status)
            } else {
                (from, payload, status)
            }
        };
        match self.luns[li].read(phys.addr) {
            Ok(o) => {
                let lg = self.lun_res[li].reserve_tagged(cmd_done, o.duration, occ);
                if self.probe.is_enabled() {
                    let blame = self.lun_res[li].blame(cmd_done, lg.start);
                    self.probe.wait_spans(
                        Layer::Flash,
                        self.lun_res[li].name(),
                        cmd_done,
                        lg.start,
                        &blame,
                    );
                    self.probe.span(
                        Layer::Flash,
                        Cause::CellRead,
                        self.lun_res[li].name(),
                        lg.start,
                        lg.end,
                    );
                }
                finish(self, lg.end, o.payload, IoStatus::Ok)
            }
            Err(FlashError::UncorrectableRead { .. }) => {
                self.metrics.uncorrectable_reads += 1;
                // the failed sense still occupied the chip
                let lg = self.lun_res[li].reserve_tagged(cmd_done, self.cfg.flash.timing.read, occ);
                let mut cursor = lg.end;
                let t_read = self.cfg.flash.timing.read;
                let mut steps = 0u32;
                let mut payload: Option<PagePayload> = None;
                let mut rebuilt = false;
                // stage 1: read-retry ladder (shifted reference voltages)
                for derate in [0.6, 0.35, 0.2] {
                    steps += 1;
                    self.metrics.recovery.retry_attempts += 1;
                    self.metrics.flash_reads.bump(OpCause::Recovery);
                    let g = self.lun_res[li].reserve_tagged(cursor, t_read, Occupant::Recovery);
                    cursor = g.end;
                    if let Ok(o) = self.luns[li].recovery_read(phys.addr, derate, 1.0) {
                        self.metrics.recovery.retry_recovered += 1;
                        payload = Some(o.payload);
                        break;
                    }
                }
                // stage 2: soft-decode escalation (stronger ECC mode)
                if payload.is_none() {
                    steps += 1;
                    self.metrics.recovery.ecc_escalations += 1;
                    self.metrics.flash_reads.bump(OpCause::Recovery);
                    let g = self.lun_res[li].reserve_tagged(cursor, t_read * 4, Occupant::Recovery);
                    cursor = g.end;
                    if let Ok(o) = self.luns[li].recovery_read(phys.addr, 0.5, 1.5) {
                        self.metrics.recovery.ecc_recovered += 1;
                        payload = Some(o.payload);
                    }
                }
                // stage 3: XOR parity rebuild across the LUN stripe
                let nluns = self.luns.len();
                if payload.is_none() && nluns > 1 {
                    self.metrics.recovery.parity_rebuilds += 1;
                    let rb_start = cursor;
                    let mut rb_end = cursor;
                    for peer in 0..nluns {
                        if peer == li {
                            continue;
                        }
                        steps += 1;
                        self.metrics.recovery.rebuild_page_reads += 1;
                        self.metrics.flash_reads.bump(OpCause::Recovery);
                        let g =
                            self.lun_res[peer].reserve_tagged(rb_start, t_read, Occupant::Recovery);
                        rb_end = rb_end.max(g.end);
                    }
                    cursor = rb_end;
                    if let Some(p) = self.luns[li].parity_reconstruct(phys.addr) {
                        payload = Some(p);
                        rebuilt = true;
                    }
                }
                self.metrics.recovery.recovery_time += cursor.since(lg.end);
                if self.probe.is_enabled() {
                    self.probe.span(
                        Layer::Flash,
                        Cause::Recovery,
                        self.lun_res[li].name(),
                        lg.end,
                        cursor,
                    );
                }
                let Some(payload) = payload else {
                    self.metrics.recovery.unrecoverable += 1;
                    return finish(self, cursor, PagePayload::Empty, IoStatus::Unrecoverable);
                };
                // a rebuilt page sits on dying media: re-home it and tell
                // the host its new name (block FTLs do this silently —
                // the nameless interface has a channel to say so)
                if rebuilt {
                    if let Some(t) = tag {
                        if let Some(np) =
                            self.dir
                                .next_page(phys.lun, Stream::Gc, self.cfg.wear_aware)
                        {
                            if self
                                .op_program(cursor, np.phys, t, false, OpCause::Recovery)
                                .is_ok()
                            {
                                self.metrics.recovery.rebuild_relocations += 1;
                                self.dir.invalidate(phys);
                                self.dir.mark_valid(np.phys, Lpn(t));
                                self.upcalls.push(Upcall::Migrated {
                                    tag: t,
                                    old: PhysName {
                                        lun: phys.lun,
                                        addr: phys.addr,
                                    },
                                    new: PhysName {
                                        lun: np.phys.lun,
                                        addr: np.phys.addr,
                                    },
                                    at: cursor,
                                });
                            }
                        }
                    }
                }
                let status = IoStatus::RecoveredAfterRetry { steps };
                finish(self, cursor, payload, status)
            }
            Err(e) => unreachable!("nameless controller bug: illegal read: {e}"),
        }
    }

    fn maybe_gc(&mut self, lun: LunId, t: SimTime) {
        if self.gc_active {
            return;
        }
        // GC runs on device time off the host command's critical path:
        // its spans are background (`cmd: None`); its cost reaches host
        // commands only as occupant-blamed queueing delay (`GcStall`).
        let _bg = self.probe.background();
        self.gc_active = true;
        let mut guard = self.cfg.flash.geometry.total_blocks();
        while self.dir.free_blocks(lun) <= self.cfg.gc_threshold && guard > 0 {
            guard -= 1;
            let Some(victim) = self.dir.pick_victim(lun, GcPolicyKind::Greedy) else {
                break;
            };
            self.gc_collect(lun, victim, t);
        }
        self.gc_active = false;
    }

    /// Allocate a page on `lun` and program it, salvaging and retrying
    /// on a failed program. `None` when the device is out of space.
    fn program_retrying(
        &mut self,
        t: SimTime,
        lun: LunId,
        stream: Stream,
        tag: u64,
        use_channel: bool,
        cause: OpCause,
    ) -> Option<(PhysPage, SimTime)> {
        let mut tries = self.luns.len() as u32 * 4;
        loop {
            let np = self.dir.next_page(lun, stream, self.cfg.wear_aware)?;
            match self.op_program(t, np.phys, tag, use_channel, cause) {
                Ok(end) => return Some((np.phys, end)),
                Err(()) => {
                    self.salvage_and_retire(np.phys.lun, np.phys.addr, t);
                    tries -= 1;
                    if tries == 0 {
                        return None;
                    }
                }
            }
        }
    }

    fn gc_collect(&mut self, lun: LunId, victim: u32, t: SimTime) {
        self.metrics.gc_runs += 1;
        let live = self.dir.live_pages(lun, victim);
        for (addr, tag) in live {
            let old = PhysPage { lun, addr };
            let copyback = self.cfg.copyback;
            let (after_read, _payload, _st) = self.op_read(t, old, !copyback, OpCause::Gc, None);
            let Some((newphys, _end)) =
                self.program_retrying(after_read, lun, Stream::Gc, tag.0, !copyback, OpCause::Gc)
            else {
                // worn-out device: leave the page where it is
                continue;
            };
            self.dir.invalidate(old);
            self.dir.mark_valid(newphys, tag);
            self.metrics.gc_pages_moved += 1;
            // the peer-to-peer message: tell the host where its page went
            self.upcalls.push(Upcall::Migrated {
                tag: tag.0,
                old: PhysName {
                    lun: old.lun,
                    addr: old.addr,
                },
                new: PhysName {
                    lun: newphys.lun,
                    addr: newphys.addr,
                },
                at: t,
            });
        }
        // erase the victim
        let baddr = self.cfg.flash.geometry.block_from_index(victim);
        let cmd_done = t + self.cfg.channel.command;
        match self.luns[lun.0 as usize].erase(baddr) {
            Ok(o) => {
                self.lun_res[lun.0 as usize].reserve_tagged(cmd_done, o.duration, Occupant::Gc);
                self.metrics.flash_erases.bump(OpCause::Gc);
                self.dir.recycle(lun, victim);
            }
            Err(FlashError::EraseFailed { .. }) => {
                self.lun_res[lun.0 as usize].reserve_tagged(
                    cmd_done,
                    self.cfg.flash.timing.erase,
                    Occupant::Gc,
                );
                self.metrics.blocks_retired += 1;
                self.dir.retire(lun, victim);
                self.upcalls.push(Upcall::BlockRetired { at: t });
            }
            Err(e) => unreachable!("nameless controller bug: illegal erase: {e}"),
        }
    }

    /// Write a page; the device picks the location and returns its name.
    /// `tag` is an opaque host identifier stored out-of-band (and echoed
    /// in migration upcalls).
    pub fn write(&mut self, now: SimTime, tag: u64) -> Result<NamelessCompletion, NamelessError> {
        self.metrics.host_writes += 1;
        let scope = self.probe.open_command("write", now);
        let link = self
            .host_link
            .reserve_tagged(now, self.host_link_time(), Occupant::Host);
        let t = link.end + self.cfg.controller_overhead;
        if self.probe.is_enabled() {
            let blame = self.host_link.blame(now, link.start);
            self.probe.wait_spans(
                Layer::HostLink,
                self.host_link.name(),
                now,
                link.start,
                &blame,
            );
            self.probe.span(
                Layer::HostLink,
                Cause::Transfer,
                self.host_link.name(),
                link.start,
                link.end,
            );
            self.probe
                .span(Layer::Controller, Cause::Overhead, "ctrl", link.end, t);
        }
        let lun = self.place_lun(t);
        self.maybe_gc(lun, t);
        let salvages_before = self.metrics.recovery.program_salvages;
        let Some((phys, done)) =
            self.program_retrying(t, lun, Stream::Host, tag, true, OpCause::Host)
        else {
            // dropping the scope aborts the probe command — a rejected
            // write has no completion instant to close with
            drop(scope);
            return Err(NamelessError::DeviceFull);
        };
        self.dir.mark_valid(phys, Lpn(tag));
        let latency = done.since(now);
        self.metrics.write_latency.record_duration(latency);
        let salvages = (self.metrics.recovery.program_salvages - salvages_before) as u32;
        let status = if salvages > 0 {
            IoStatus::RecoveredAfterRetry { steps: salvages }
        } else {
            IoStatus::Ok
        };
        scope.close(done);
        self.probe.note_status(status.as_str());
        Ok(NamelessCompletion {
            name: PhysName {
                lun: phys.lun,
                addr: phys.addr,
            },
            done,
            latency,
            status,
        })
    }

    /// Read the page at `name`, verifying it still holds `tag`'s data.
    /// The third element reports how the media fared: clean, recovered
    /// (a parity rebuild re-homes the page and queues a
    /// [`Upcall::Migrated`] naming the new location), or unrecoverable.
    pub fn read(
        &mut self,
        now: SimTime,
        name: PhysName,
        tag: u64,
    ) -> Result<(SimTime, SimDuration, IoStatus), NamelessError> {
        self.metrics.host_reads += 1;
        let geom = &self.cfg.flash.geometry;
        let bidx = geom.block_index(geom.block_of(name.addr));
        let info = self.dir.block_info(name.lun, bidx);
        if info.backptrs[name.addr.page as usize] != Some(Lpn(tag)) {
            return Err(NamelessError::StaleName { name });
        }
        let scope = self.probe.open_command("read", now);
        let t = now + self.cfg.controller_overhead;
        if self.probe.is_enabled() {
            self.probe
                .span(Layer::Controller, Cause::Overhead, "ctrl", now, t);
        }
        let phys = PhysPage {
            lun: name.lun,
            addr: name.addr,
        };
        let (flash_done, _payload, status) = self.op_read(t, phys, true, OpCause::Host, Some(tag));
        let out = self
            .host_link
            .reserve_tagged(flash_done, self.host_link_time(), Occupant::Host);
        if self.probe.is_enabled() {
            let blame = self.host_link.blame(flash_done, out.start);
            self.probe.wait_spans(
                Layer::HostLink,
                self.host_link.name(),
                flash_done,
                out.start,
                &blame,
            );
            self.probe.span(
                Layer::HostLink,
                Cause::Transfer,
                self.host_link.name(),
                out.start,
                out.end,
            );
        }
        scope.close(out.end);
        self.probe.note_status(status.as_str());
        let latency = out.end.since(now);
        self.metrics.read_latency.record_duration(latency);
        Ok((out.end, latency, status))
    }

    /// Free the page at `name` (the trim analog — but exact, since the
    /// host speaks in physical names).
    pub fn free(
        &mut self,
        now: SimTime,
        name: PhysName,
        tag: u64,
    ) -> Result<SimTime, NamelessError> {
        self.metrics.host_trims += 1;
        let geom = &self.cfg.flash.geometry;
        let bidx = geom.block_index(geom.block_of(name.addr));
        let info = self.dir.block_info(name.lun, bidx);
        if info.backptrs[name.addr.page as usize] != Some(Lpn(tag)) {
            return Err(NamelessError::StaleName { name });
        }
        self.dir.invalidate(PhysPage {
            lun: name.lun,
            addr: name.addr,
        });
        let done = now + self.cfg.controller_overhead;
        let scope = self.probe.open_command("free", now);
        if self.probe.is_enabled() {
            self.probe
                .span(Layer::Controller, Cause::Overhead, "ctrl", now, done);
        }
        scope.close(done);
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn device() -> NamelessSsd {
        let mut base = SsdConfig::modern();
        base.shape.channels = 2;
        base.shape.chips_per_channel = 2;
        NamelessSsd::new(NamelessConfig::from(&base))
    }

    #[test]
    fn write_returns_name_and_read_round_trips() {
        let mut d = device();
        let w = d.write(SimTime::ZERO, 42).unwrap();
        let (done, lat, status) = d.read(w.done, w.name, 42).unwrap();
        assert!(done > w.done);
        assert!(lat > SimDuration::ZERO);
        assert_eq!(status, IoStatus::Ok);
    }

    #[test]
    fn wrong_tag_is_stale() {
        let mut d = device();
        let w = d.write(SimTime::ZERO, 42).unwrap();
        let err = d.read(w.done, w.name, 43).unwrap_err();
        assert!(matches!(err, NamelessError::StaleName { .. }));
    }

    #[test]
    fn free_then_read_is_stale() {
        let mut d = device();
        let w = d.write(SimTime::ZERO, 7).unwrap();
        let t = d.free(w.done, w.name, 7).unwrap();
        let err = d.read(t, w.name, 7).unwrap_err();
        assert!(matches!(err, NamelessError::StaleName { .. }));
    }

    #[test]
    fn no_mapping_table_ram() {
        let d = device();
        assert_eq!(d.mapping_table_bytes(), 0);
        // versus the page-mapped FTL on the same hardware:
        let mut base = SsdConfig::modern();
        base.shape.channels = 2;
        base.shape.chips_per_channel = 2;
        assert!(base.mapping_table_bytes() > 50_000);
    }

    #[test]
    fn gc_migrations_emit_upcalls_and_host_stays_consistent() {
        let mut d = device();
        // host-side index: tag -> name (exactly what a DB's page table is)
        let mut index: HashMap<u64, PhysName> = HashMap::new();
        let raw_pages: u64 = 4 * d.config().flash.geometry.total_pages();
        // high utilization so GC victims cannot be fully dead
        let live_set = raw_pages * 8 / 10;
        let mut t = SimTime::ZERO;
        // initial fill: every tag written once
        for tag in 0..live_set {
            let w = d.write(t, tag).unwrap();
            t = w.done;
            index.insert(tag, w.name);
        }
        // random churn: rewrite scattered tags so invalid pages spread
        // thinly over blocks, forcing GC to relocate live neighbours
        let mut x = 12345u64;
        for step in 0..(live_set * 2) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let tag = x % live_set;
            // old version may have migrated; drain upcalls first
            for u in d.upcalls().drain() {
                if let Upcall::Migrated { tag, new, .. } = u {
                    index.insert(tag, new);
                }
            }
            let cur = index[&tag];
            d.free(t, cur, tag).expect("free of current name");
            let w = d
                .write(t, tag)
                .unwrap_or_else(|e| panic!("step {step} tag {tag}: {e}"));
            t = w.done;
            index.insert(tag, w.name);
        }
        // final drain + verify every tag readable at its current name
        for u in d.upcalls().drain() {
            if let Upcall::Migrated { tag, new, .. } = u {
                index.insert(tag, new);
            }
        }
        assert!(d.metrics().gc_runs > 0, "churn must trigger GC");
        assert!(d.upcalls().delivered() > 0, "GC must have migrated pages");
        for (tag, name) in index {
            let r = d.read(t, name, tag);
            assert!(r.is_ok(), "tag {tag} unreadable at {name:?}");
            t = r.unwrap().0;
        }
    }

    #[test]
    fn parallel_writes_stripe_like_an_ftl() {
        let mut d = device();
        let mut names = Vec::new();
        for tag in 0..8u64 {
            names.push(d.write(SimTime::ZERO, tag).unwrap().name);
        }
        let luns: std::collections::HashSet<u32> = names.iter().map(|n| n.lun.0).collect();
        assert!(luns.len() >= 3, "writes should spread over LUNs: {luns:?}");
    }
}
