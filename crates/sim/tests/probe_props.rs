//! Property test: the aggregated probe mode is **observationally
//! equivalent** to the recording mode on any span interleaving.
//!
//! [`Probe::aggregated`] discards closed command records and folds spans
//! into per-`(layer, cause, resource)` accumulators so multi-hour runs
//! hold O(1) memory — but its [`ProbeSummary`] (and its JSON encoding)
//! must be byte-identical to what the recording probe produces on the
//! same event stream, and its resource accumulators must equal a fold
//! over the recording probe's retained events. This is the correctness
//! contract that lets exp16 run with the aggregated probe while every
//! other experiment keeps recording.

use proptest::prelude::*;
use proptest::strategy::Just;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Layer, Occupant, Probe};
use std::collections::BTreeMap;

const LAYERS: [Layer; 5] = [
    Layer::App,
    Layer::Block,
    Layer::Controller,
    Layer::Channel,
    Layer::Flash,
];
const CAUSES: [Cause; 6] = [
    Cause::Overhead,
    Cause::Queue,
    Cause::Transfer,
    Cause::CellRead,
    Cause::CellProgram,
    Cause::GcStall,
];
const RESOURCES: [&str; 4] = ["chan0", "lun3", "core", ""];
const KINDS: [&str; 3] = ["read", "write", "trim"];

/// One span relative to the current clock.
#[derive(Debug, Clone, Copy)]
struct SpanSpec {
    layer: u8,
    cause: u8,
    res: u8,
    gap_ns: u16,
    dur_ns: u16,
}

/// How a command lifecycle segment ends.
#[derive(Debug, Clone, Copy)]
enum Finish {
    Close,
    Abort,
    Detach,
}

/// One probe interaction.
#[derive(Debug, Clone)]
enum Action {
    /// Open a command, emit spans, then close/abort/detach it.
    Command {
        kind: u8,
        spans: Vec<SpanSpec>,
        finish: Finish,
    },
    /// Resume the oldest detached command (no-op if none), emit spans,
    /// finish it.
    Resume {
        spans: Vec<SpanSpec>,
        finish: Finish,
    },
    /// A span outside any command scope.
    Bare(SpanSpec),
    /// A span under a background guard (GC / rebuild work).
    Background(SpanSpec),
    /// A decomposed wait interval with a two-occupant blame split.
    Wait { res: u8, a_ns: u16, b_ns: u16 },
    /// A status note.
    Status(u8),
}

fn span_spec() -> impl Strategy<Value = SpanSpec> {
    ((0..5u8, 0..6u8, 0..4u8), (0..200u16, 1..500u16)).prop_map(
        |((layer, cause, res), (gap_ns, dur_ns))| SpanSpec {
            layer,
            cause,
            res,
            gap_ns,
            dur_ns,
        },
    )
}

fn finish() -> impl Strategy<Value = Finish> {
    prop_oneof![
        3 => Just(Finish::Close),
        1 => Just(Finish::Abort),
        2 => Just(Finish::Detach),
    ]
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..3u8, proptest::collection::vec(span_spec(), 0..4), finish())
            .prop_map(|(kind, spans, finish)| Action::Command { kind, spans, finish }),
        2 => (proptest::collection::vec(span_spec(), 0..4), finish())
            .prop_map(|(spans, finish)| Action::Resume { spans, finish }),
        2 => span_spec().prop_map(Action::Bare),
        2 => span_spec().prop_map(Action::Background),
        1 => (0..4u8, 1..400u16, 1..400u16)
            .prop_map(|(res, a_ns, b_ns)| Action::Wait { res, a_ns, b_ns }),
        1 => (0..3u8).prop_map(Action::Status),
    ]
}

/// Replay `actions` against `probe`, advancing a monotone virtual clock.
fn replay(probe: &Probe, actions: &[Action]) {
    let mut now = SimTime::ZERO;
    let mut detached: Vec<u64> = Vec::new();
    let emit = |probe: &Probe, now: &mut SimTime, s: &SpanSpec| {
        let start = *now + SimDuration::from_nanos(s.gap_ns as u64);
        let end = start + SimDuration::from_nanos(s.dur_ns as u64);
        probe.span(
            LAYERS[s.layer as usize],
            CAUSES[s.cause as usize],
            RESOURCES[s.res as usize],
            start,
            end,
        );
        *now = end;
    };
    for a in actions {
        match a {
            Action::Command {
                kind,
                spans,
                finish,
            } => {
                let scope = probe.open_command(KINDS[*kind as usize], now);
                for s in spans {
                    emit(probe, &mut now, s);
                }
                match finish {
                    Finish::Close => scope.close(now),
                    Finish::Abort => scope.abort(),
                    Finish::Detach => detached.push(scope.detach()),
                }
            }
            Action::Resume { spans, finish } => {
                if detached.is_empty() {
                    continue;
                }
                let id = detached.remove(0);
                let scope = probe.resume(id);
                for s in spans {
                    emit(probe, &mut now, s);
                }
                match finish {
                    Finish::Close => scope.close(now),
                    Finish::Abort => scope.abort(),
                    Finish::Detach => detached.push(scope.detach()),
                }
            }
            Action::Bare(s) => emit(probe, &mut now, s),
            Action::Background(s) => {
                let _bg = probe.background();
                emit(probe, &mut now, s);
            }
            Action::Wait { res, a_ns, b_ns } => {
                let a = SimDuration::from_nanos(*a_ns as u64);
                let b = SimDuration::from_nanos(*b_ns as u64);
                let from = now;
                let to = from + a + b;
                probe.wait_spans(
                    Layer::Controller,
                    RESOURCES[*res as usize],
                    from,
                    to,
                    &[(Occupant::Gc, a), (Occupant::Host, b)],
                );
                now = to;
            }
            Action::Status(k) => probe.note_status(KINDS[*k as usize]),
        }
    }
    // close out any commands still detached so both probes end settled
    for id in detached {
        let scope = probe.resume(id);
        scope.close(now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregated totals == recording totals, byte-for-byte in the JSON.
    #[test]
    fn aggregated_probe_matches_recording_probe(actions in proptest::collection::vec(action(), 0..40)) {
        let rec = Probe::recording();
        let agg = Probe::aggregated();
        replay(&rec, &actions);
        replay(&agg, &actions);

        // identical summaries, including the checked-in JSON encoding
        prop_assert_eq!(rec.summary(), agg.summary(), "summaries diverged");
        prop_assert_eq!(
            rec.summary().to_json(),
            agg.summary().to_json(),
            "summary JSON diverged"
        );

        // the aggregated per-resource fold equals a fold over the
        // recording probe's retained raw events
        let mut expect: BTreeMap<(Layer, Cause, String), (u64, SimDuration)> = BTreeMap::new();
        for e in rec.events_ref().iter() {
            let Some(res) = &e.resource else { continue };
            let slot = expect
                .entry((e.layer, e.cause, res.clone()))
                .or_insert((0, SimDuration::ZERO));
            slot.0 += 1;
            slot.1 += e.duration();
        }
        let got = agg.resource_summary();
        prop_assert_eq!(got.len(), expect.len(), "resource key sets diverged");
        for stat in &got {
            let key = (stat.layer, stat.cause, stat.resource.clone());
            let (count, total) = expect.get(&key).copied().unwrap_or((0, SimDuration::ZERO));
            prop_assert_eq!(stat.count, count, "count diverged for {:?}", key);
            prop_assert_eq!(stat.total, total, "total diverged for {:?}", key);
        }

        // aggregated mode must actually bound memory: every closed or
        // aborted command is gone from its bus
        prop_assert!(
            agg.commands_ref().iter().all(|c| c.done.is_none()),
            "aggregated bus retained a closed command record"
        );
    }
}
