//! Property tests of the simulation kernel's invariants — everything
//! above relies on these holding for arbitrary inputs.

use proptest::prelude::*;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{EventQueue, Histogram, Resource};

proptest! {
    /// A serial resource never overlaps grants, never goes backwards, and
    /// its busy time equals the sum of granted durations.
    #[test]
    fn resource_grants_are_serial_and_monotonic(
        reqs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..200)
    ) {
        let mut r = Resource::new("x");
        let mut reqs = reqs;
        // requests must arrive in nondecreasing time order (the documented
        // contract); sort to satisfy it
        reqs.sort_by_key(|&(at, _)| at);
        let mut last_end = SimTime::ZERO;
        let mut total = 0u64;
        for (at, dur) in reqs {
            let g = r.reserve(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
            prop_assert!(g.start >= SimTime::from_nanos(at), "grant before request");
            prop_assert!(g.start >= last_end, "grants overlap");
            prop_assert_eq!(g.end, g.start + SimDuration::from_nanos(dur));
            last_end = g.end;
            total += dur;
        }
        prop_assert_eq!(r.busy_time().as_nanos(), total);
        prop_assert_eq!(r.next_free(), last_end);
    }

    /// An idle-arrival request is granted immediately.
    #[test]
    fn idle_resource_grants_immediately(at in 0u64..1_000_000, dur in 1u64..10_000) {
        let mut r = Resource::new("x");
        let g = r.reserve(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
        prop_assert_eq!(g.start, SimTime::from_nanos(at));
    }

    /// The event queue pops in nondecreasing time order with FIFO ties,
    /// regardless of insertion order.
    #[test]
    fn event_queue_orders_any_schedule(times in proptest::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0usize;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_nanos(t));
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated: ({lt},{li}) then ({t},{i})");
            }
            last = Some((t, i));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Histogram quantiles are monotone in q, bracketed by min/max, and
    /// within the bucketing error bound of an exact percentile.
    #[test]
    fn histogram_quantiles_sound(values in proptest::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let max = *sorted.last().unwrap();
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantiles must be monotone");
            prop_assert!(v >= min && v <= max);
            last = v;
        }
        // p50 within 6.25% (bucket width) of the true median, below it
        let true_median = sorted[(sorted.len() - 1) / 2];
        let p50 = h.p50();
        prop_assert!(
            p50 <= true_median + true_median / 8 && p50 + p50 / 7 + 1 >= true_median.min(p50 * 2),
            "p50 {p50} too far from median {true_median}"
        );
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn histogram_merge_equals_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        ha.merge(&hb);
        let mut hu = Histogram::new();
        for &v in a.iter().chain(b.iter()) { hu.record(v); }
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }
}
