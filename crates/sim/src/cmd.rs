//! The typed host-command vocabulary shared by every layer of the stack.
//!
//! The seed repo drove devices through positional `submit(now, op, lba)`
//! calls that returned a bare completion instant — one command at a time,
//! caller chained on each completion. The queue-pair engine (blk-mq /
//! NVMe style: per-core submission queues, a device-side in-flight
//! window, out-of-order completion queues) needs commands that carry
//! their identity with them instead:
//!
//! * [`IoRequest`] — what the host asks for: an operation, an address, a
//!   traffic class, and a host-chosen [`CommandId`] tag;
//! * [`IoCompletion`] — what comes back, possibly out of submission
//!   order: the tag, the completion instant, and how many probe spans
//!   were attributed to the command on the observability bus.
//!
//! These types live in `requiem-sim` (not the block layer) because the
//! SSD crate tracks in-flight commands by tag while the block crate sits
//! *above* the SSD crate — the vocabulary must be below both.

use crate::fault::IoStatus;
use crate::time::{SimDuration, SimTime};

/// Host-assigned identity of one in-flight command. `CommandId(0)` means
/// "unassigned": engines that auto-tag ([`crate::completion`] users such
/// as the SSD queue pair or the block-layer batch path) replace it with
/// the next monotonic tag at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CommandId(pub u64);

impl CommandId {
    /// The "unassigned" tag.
    pub const UNASSIGNED: CommandId = CommandId(0);

    /// Whether this tag is still unassigned.
    pub fn is_unassigned(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for CommandId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd{}", self.0)
    }
}

/// Operation kind of a host command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoOp {
    /// Read one logical page/sector.
    Read,
    /// Write one logical page/sector.
    Write,
    /// Declare one logical page dead (the first beyond-block command).
    Trim,
}

impl IoOp {
    /// Stable lowercase name (probe command kinds, JSON keys).
    pub fn as_str(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Trim => "trim",
        }
    }
}

/// Traffic class of a command — who is waiting on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoClass {
    /// Someone blocks on this completion (commit log force, demand read,
    /// steal write).
    Foreground,
    /// Nobody waits (write-back, checkpoint, prefetch); latency is
    /// irrelevant, throughput is not.
    Background,
}

impl IoClass {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            IoClass::Foreground => "foreground",
            IoClass::Background => "background",
        }
    }
}

/// One typed host command: the submission half of the queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Operation kind.
    pub op: IoOp,
    /// Logical address (page/sector).
    pub lba: u64,
    /// Traffic class.
    pub class: IoClass,
    /// Host tag echoed in the matching [`IoCompletion`].
    pub tag: CommandId,
}

impl IoRequest {
    /// A foreground command of kind `op` on `lba` (tag unassigned).
    pub fn new(op: IoOp, lba: u64) -> Self {
        IoRequest {
            op,
            lba,
            class: IoClass::Foreground,
            tag: CommandId::UNASSIGNED,
        }
    }

    /// A foreground read of `lba` (tag unassigned).
    pub fn read(lba: u64) -> Self {
        IoRequest {
            op: IoOp::Read,
            lba,
            class: IoClass::Foreground,
            tag: CommandId::UNASSIGNED,
        }
    }

    /// A foreground write of `lba` (tag unassigned).
    pub fn write(lba: u64) -> Self {
        IoRequest {
            op: IoOp::Write,
            lba,
            class: IoClass::Foreground,
            tag: CommandId::UNASSIGNED,
        }
    }

    /// A trim of `lba` (tag unassigned).
    pub fn trim(lba: u64) -> Self {
        IoRequest {
            op: IoOp::Trim,
            lba,
            class: IoClass::Foreground,
            tag: CommandId::UNASSIGNED,
        }
    }

    /// Set the traffic class.
    pub fn class(mut self, class: IoClass) -> Self {
        self.class = class;
        self
    }

    /// Set the host tag.
    pub fn tag(mut self, tag: CommandId) -> Self {
        self.tag = tag;
        self
    }
}

/// The completion half of the queue pair. Completions are delivered in
/// *device* order (earliest `done` first), which is generally not
/// submission order — the whole point of queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// The tag of the completed command.
    pub tag: CommandId,
    /// Operation kind (echoed).
    pub op: IoOp,
    /// Logical address (echoed).
    pub lba: u64,
    /// Instant the command entered the submission queue.
    pub submitted: SimTime,
    /// Instant the command completed.
    pub done: SimTime,
    /// Probe spans attributed to this command on the observability bus
    /// so far (0 when no probe is attached). Under the span-tiling
    /// invariant these spans cover `[submitted, done)` exactly.
    pub spans: u32,
    /// How the command fared: clean, recovered, unrecoverable, or
    /// rejected. Infallible paths report [`IoStatus::Ok`].
    pub status: IoStatus,
}

impl IoCompletion {
    /// End-to-end latency, including submission-queue wait.
    pub fn latency(&self) -> SimDuration {
        self.done.since(self.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let r = IoRequest::read(7)
            .class(IoClass::Background)
            .tag(CommandId(3));
        assert_eq!(r.op, IoOp::Read);
        assert_eq!(r.lba, 7);
        assert_eq!(r.class, IoClass::Background);
        assert_eq!(r.tag, CommandId(3));
        assert!(IoRequest::write(0).tag.is_unassigned());
        assert_eq!(IoOp::Trim.as_str(), "trim");
        assert_eq!(IoClass::Foreground.as_str(), "foreground");
        assert_eq!(format!("{}", CommandId(9)), "cmd9");
    }

    #[test]
    fn completion_latency() {
        let c = IoCompletion {
            tag: CommandId(1),
            op: IoOp::Write,
            lba: 0,
            submitted: SimTime::from_micros(10),
            done: SimTime::from_micros(35),
            spans: 2,
            status: IoStatus::Ok,
        };
        assert_eq!(c.latency(), SimDuration::from_micros(25));
    }
}
