//! A generic calendar queue for event-driven model fragments.
//!
//! Most of the stack uses resource timelines, but some behaviour is
//! genuinely reactive: background garbage collection waking when the free
//! block pool sinks below a threshold, periodic checkpoints, buffer flush
//! timers. [`EventQueue`] orders arbitrary payloads by `(time, sequence)`,
//! giving deterministic FIFO tie-breaking for simultaneous events.
//!
//! Internally the queue is an indexed binary min-heap over a payload
//! slab: the heap holds small `(time, seq, slot)` keys that move during
//! sifts, while payloads sit still in recycled slots. A
//! schedule/pop-heavy run (one event per simulated I/O) therefore does
//! no per-event allocation once the high-water mark is reached — the
//! arena/slab half of the kernel fast-path work. Pop order is identical
//! to the `BinaryHeap` this replaced: `(time, seq)` is a unique total
//! order.

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in scheduling order.
pub struct EventQueue<E> {
    /// Min-heap keys `(at, seq, slot)`, ordered by `(at, seq)`.
    heap: Vec<(SimTime, u64, u32)>,
    /// Payload slab; `heap` entries index into it and payloads never
    /// move while queued.
    slots: Vec<Option<E>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Create an empty queue with room for `cap` pending events before
    /// the slab grows.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(payload);
                s
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push((at, seq, slot));
        self.sift_up(self.heap.len() - 1);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let (at, _, slot) = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let payload = self.slots[slot as usize]
            .take()
            .expect("heap entry points at an empty slot");
        self.free.push(slot);
        self.now = at;
        Some((at, payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&(at, _, _)| at)
    }

    /// Current clock (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain and process every event with `f`, which may schedule more
    /// events. Returns the number of events processed. `limit` bounds the
    /// total processed as a runaway guard (use `u64::MAX` for no limit).
    ///
    /// # Panics
    /// Panics if, after a handler returns, the earliest pending event
    /// lies before the clock. [`EventQueue::schedule`] already rejects
    /// past insertions; this closes the remaining hole (a handler
    /// replacing or corrupting the queue wholesale), turning a silent
    /// causality bug into the same typed panic.
    pub fn run(&mut self, limit: u64, mut f: impl FnMut(SimTime, E, &mut EventQueue<E>)) -> u64 {
        let mut processed = 0u64;
        while processed < limit {
            let Some((at, payload)) = self.pop() else {
                break;
            };
            // Hand `self` to the handler so it can schedule follow-ups.
            f(at, payload, self);
            processed += 1;
            // `at` (not `self.now`): a hostile handler swapping in a whole
            // stale queue replaces the clock along with the events.
            if let Some(next) = self.peek_time() {
                assert!(
                    next >= at,
                    "cannot schedule event in the past: at={next}, now={at}"
                );
            }
        }
        processed
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (at, seq, _) = self.heap[i];
            let (pat, pseq, _) = self.heap[parent];
            if (at, seq) < (pat, pseq) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut child = l;
            if r < n {
                let (lat, lseq, _) = self.heap[l];
                let (rat, rseq, _) = self.heap[r];
                if (rat, rseq) < (lat, lseq) {
                    child = r;
                }
            }
            let (cat, cseq, _) = self.heap[child];
            let (at, seq, _) = self.heap[i];
            if (cat, cseq) < (at, seq) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_processes_cascading_events() {
        // each event up to t=5 schedules a successor 1ns later
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1u64);
        let mut seen = Vec::new();
        let n = q.run(1000, |t, v, q| {
            seen.push(v);
            if v < 5 {
                q.schedule(t + crate::time::NANOSECOND, v + 1);
            }
        });
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 0u64);
        let n = q.run(3, |t, v, q| {
            q.schedule(t + crate::time::NANOSECOND, v + 1); // infinite cascade
        });
        assert_eq!(n, 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn run_rejects_queue_swapped_into_the_past() {
        // `schedule` guards the normal path; `run` must also catch a
        // handler that replaces the queue with one holding past events.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 0u64);
        q.schedule(SimTime::from_nanos(200), 1u64);
        q.run(10, |_, v, q| {
            if v == 0 {
                let mut stale = EventQueue::new();
                stale.schedule(SimTime::from_nanos(1), 9u64); // before now=100
                *q = stale;
            }
        });
    }

    #[test]
    fn slab_recycles_slots() {
        // schedule/pop churn must not grow the slab past its high-water
        // mark: slots are recycled through the free list
        let mut q = EventQueue::with_capacity(4);
        for round in 0..100u64 {
            for i in 0..3u64 {
                q.schedule(SimTime::from_nanos(round * 10 + i), (round, i));
            }
            for _ in 0..3 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.slots.len(), 3, "slab grew past its high-water mark");
    }

    #[test]
    fn peek_time_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
    }
}
