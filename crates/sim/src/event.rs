//! A generic calendar queue for event-driven model fragments.
//!
//! Most of the stack uses resource timelines, but some behaviour is
//! genuinely reactive: background garbage collection waking when the free
//! block pool sinks below a threshold, periodic checkpoints, buffer flush
//! timers. [`EventQueue`] orders arbitrary payloads by `(time, sequence)`,
//! giving deterministic FIFO tie-breaking for simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in scheduling order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Current clock (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain and process every event with `f`, which may schedule more
    /// events. Returns the number of events processed. `limit` bounds the
    /// total processed as a runaway guard (use `u64::MAX` for no limit).
    pub fn run(&mut self, limit: u64, mut f: impl FnMut(SimTime, E, &mut EventQueue<E>)) -> u64 {
        let mut processed = 0u64;
        while processed < limit {
            let Some(e) = self.heap.pop() else { break };
            self.now = e.at;
            // Hand `self` to the handler so it can schedule follow-ups.
            f(e.at, e.payload, self);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_processes_cascading_events() {
        // each event up to t=5 schedules a successor 1ns later
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1u64);
        let mut seen = Vec::new();
        let n = q.run(1000, |t, v, q| {
            seen.push(v);
            if v < 5 {
                q.schedule(t + crate::time::NANOSECOND, v + 1);
            }
        });
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 0u64);
        let n = q.run(3, |t, v, q| {
            q.schedule(t + crate::time::NANOSECOND, v + 1); // infinite cascade
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn peek_time_does_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
    }
}
