//! Deterministic round-robin core clock for multi-shard stepping.
//!
//! A sharded executor has N independent event loops (one per core)
//! sharing one device. To keep the simulation bit-reproducible the
//! coordinator must interleave their steps in a fixed, seed-free
//! order: always the shard with the **earliest** pending event, and —
//! when several shards are ready at the same instant — round-robin
//! starting just after the shard granted last. The clock holds no
//! times itself; callers pass each shard's next-event candidate and
//! get back which shard to step.
//!
//! Determinism note (DET01): selection depends only on the candidate
//! list and the clock's own grant history — no wall clock, no hash
//! iteration, no randomness.

use crate::time::SimTime;

/// Round-robin tie-breaking selector over per-shard event times.
#[derive(Debug, Clone)]
pub struct CoreClock {
    /// Number of cores/shards being interleaved.
    n: usize,
    /// Index granted by the previous [`CoreClock::pick`] call.
    last: usize,
}

impl CoreClock {
    /// A clock over `n` cores (`n >= 1`). The first tie at time zero
    /// resolves to core 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "core clock needs at least one core");
        CoreClock {
            n: n.max(1),
            last: n - 1,
        }
    }

    /// Number of cores the clock interleaves.
    pub fn cores(&self) -> usize {
        self.n
    }

    /// Choose the next shard to step: the earliest candidate time, ties
    /// broken round-robin (first candidate strictly after the
    /// previously granted index, cyclically). Returns `None` when no
    /// shard has a pending event.
    pub fn pick(&mut self, candidates: &[Option<SimTime>]) -> Option<(usize, SimTime)> {
        debug_assert_eq!(
            candidates.len(),
            self.n,
            "candidate list must cover every core"
        );
        let earliest = candidates.iter().flatten().min().copied()?;
        // scan cyclically starting just after the last grant so equal
        // times rotate fairly instead of starving high indices
        for off in 1..=self.n {
            let i = (self.last + off) % self.n;
            if candidates.get(i).copied().flatten() == Some(earliest) {
                self.last = i;
                return Some((i, earliest));
            }
        }
        None // unreachable: `earliest` came from the list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Option<SimTime> {
        Some(SimTime::ZERO + crate::time::SimDuration::from_nanos(ns))
    }

    #[test]
    fn picks_earliest_event() {
        let mut c = CoreClock::new(3);
        assert_eq!(c.pick(&[t(30), t(10), t(20)]).map(|(i, _)| i), Some(1));
        assert_eq!(c.pick(&[t(30), None, t(20)]).map(|(i, _)| i), Some(2));
        assert_eq!(c.pick(&[t(30), None, None]).map(|(i, _)| i), Some(0));
        assert_eq!(c.pick(&[None, None, None]), None);
    }

    #[test]
    fn ties_rotate_round_robin() {
        let mut c = CoreClock::new(4);
        let all = [t(5), t(5), t(5), t(5)];
        let order: Vec<usize> = (0..8)
            .filter_map(|_| c.pick(&all).map(|(i, _)| i))
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3], "fair rotation");
    }

    #[test]
    fn tie_break_starts_after_last_grant() {
        let mut c = CoreClock::new(3);
        assert_eq!(c.pick(&[t(9), t(9), t(1)]).map(|(i, _)| i), Some(2));
        // 0 and 1 tie at 9; after granting 2 the rotation prefers 0
        assert_eq!(c.pick(&[t(9), t(9), None]).map(|(i, _)| i), Some(0));
        assert_eq!(c.pick(&[t(9), t(9), None]).map(|(i, _)| i), Some(1));
    }

    #[test]
    fn replay_is_deterministic() {
        let script = [
            [t(3), t(1), t(1), None],
            [t(3), t(2), t(2), t(2)],
            [t(3), t(3), t(3), t(3)],
            [None, t(4), None, t(4)],
        ];
        let run = |mut c: CoreClock| -> Vec<Option<usize>> {
            script
                .iter()
                .map(|cand| c.pick(cand).map(|(i, _)| i))
                .collect()
        };
        assert_eq!(run(CoreClock::new(4)), run(CoreClock::new(4)));
    }
}
