//! # requiem-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other `requiem` crate builds on. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock in integer nanoseconds.
//!   All timing in the simulated I/O stack is expressed in these units, so a
//!   whole experiment is reproducible to the nanosecond.
//! * [`Resource`] — a *serial* resource timeline (a flash channel, a LUN, a
//!   CPU core, a submission-queue lock). Operations reserve an interval on
//!   the timeline; the resource hands back the earliest feasible start in
//!   FIFO order and tracks utilization.
//! * [`EventQueue`] — a generic calendar queue for models that need
//!   event-driven control flow (background garbage collection, checkpoint
//!   timers) rather than pure timeline reservation.
//! * [`stats`] — latency histograms with percentile extraction, counters,
//!   and time-weighted gauges.
//! * [`SimRng`] — a seedable, splittable random-number source so that every
//!   component can derive an independent stream from one experiment seed.
//! * [`gantt`] — span recording and ASCII rendering, used to regenerate the
//!   paper's Figure 1 as a textual timing diagram.
//! * [`table`] — GitHub-flavoured markdown table construction for experiment
//!   reports.
//!
//! ## Why a timeline model?
//!
//! The devices simulated in this workspace (flash chips, channels, PCM
//! lines, CPU cores) are all *serial* resources with deterministic service
//! times. For such systems, reserving intervals on per-resource timelines is
//! equivalent to a full event-driven simulation but is simpler, faster, and
//! allocation-free on the hot path. Where genuinely reactive behaviour is
//! needed (e.g. threshold-triggered garbage collection) the [`EventQueue`]
//! complements the timelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmd;
pub mod completion;
pub mod coreclock;
pub mod event;
pub mod fault;
pub mod gantt;
pub mod probe;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use cmd::{CommandId, IoClass, IoCompletion, IoOp, IoRequest};
pub use completion::{CompletionHeap, InflightWindow};
pub use coreclock::CoreClock;
pub use event::EventQueue;
pub use fault::{FaultPlan, FaultView, IoStatus};
pub use gantt::{Gantt, Span};
pub use probe::{
    BackgroundGuard, Cause, CommandScope, CommandsRef, EventsRef, Layer, Probe, ProbeSummary,
    ResourceStat, SpanBatch, SpanEvent,
};
pub use resource::{Occupant, Resource, ResourceBank};
pub use rng::{ExpInterarrival, SimRng};
pub use stats::{Counter, Histogram, Summary};
pub use table::Table;
pub use time::{SimDuration, SimTime};
