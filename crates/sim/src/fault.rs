//! Deterministic fault injection: the [`FaultPlan`].
//!
//! The paper's Myth 1 (§2.3.1) hinges on error management happening
//! *inside* the device controller, and Myth 3 on reads stalling behind
//! hidden recovery work. To measure either, media failures must be
//! injectable — and injectable *reproducibly*, or the double-run
//! determinism discipline (CI diffs two runs of every experiment) dies.
//!
//! A [`FaultPlan`] is pure configuration: per-unit raw-bit-error-rate
//! multipliers, per-unit *schedules* of program and erase failures
//! (indices into that unit's operation counter — "the 37th program on
//! LUN 2 fails"), and per-channel transfer hiccups (indices into the
//! channel's grant counter, each adding a fixed delay). Schedules are
//! resolved against deterministic counters the models already maintain,
//! so injection consumes **no random numbers on the simulation path**:
//! a seeded plan is expanded into explicit schedules at *construction*
//! time ([`FaultPlan::seeded`]), and two runs over the same plan replay
//! identically.
//!
//! [`FaultPlan::none`] is the identity: every multiplier is 1.0 (exact
//! in IEEE-754 multiplication), every schedule empty — a zero-fault run
//! is bit-identical to a run of a build that predates fault injection.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Outcome classification of one host command, threaded through every
/// layer ([`crate::cmd::IoCompletion`], the block stack, the storage
/// manager). Declared here rather than in [`crate::cmd`] so the fault
/// vocabulary is one module, but re-exported at the crate root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum IoStatus {
    /// Completed with no recovery involvement.
    #[default]
    Ok,
    /// Completed, but only after the controller's recovery pipeline ran
    /// (`steps` retry-ladder rungs, ECC escalations, parity-rebuild
    /// reads, or program-fail salvage attempts on the critical path).
    RecoveredAfterRetry {
        /// Recovery actions taken before the command could complete.
        steps: u32,
    },
    /// The device exhausted its recovery pipeline; returned data (if
    /// any) is not the stored data. The command still *completes* — at
    /// full recovery cost — because a real controller burns the time
    /// before giving up.
    Unrecoverable,
    /// The command was refused before reaching the media (illegal
    /// address, device full). No media time was charged.
    Rejected,
}

impl IoStatus {
    /// Stable lowercase name (JSON keys, probe summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            IoStatus::Ok => "ok",
            IoStatus::RecoveredAfterRetry { .. } => "recovered_after_retry",
            IoStatus::Unrecoverable => "unrecoverable",
            IoStatus::Rejected => "rejected",
        }
    }

    /// Whether the command completed with usable data / durable effect.
    pub fn is_success(self) -> bool {
        matches!(self, IoStatus::Ok | IoStatus::RecoveredAfterRetry { .. })
    }

    /// Recovery steps on the critical path (0 unless recovered).
    pub fn steps(self) -> u32 {
        match self {
            IoStatus::RecoveredAfterRetry { steps } => steps,
            _ => 0,
        }
    }

    /// Fold two statuses into the worse one — the status of a compound
    /// operation (a batch, a multi-phase commit) is the worst status of
    /// its parts. `Unrecoverable` dominates `Rejected` (time was burned
    /// *and* data was lost), any failure dominates recovery, and two
    /// recoveries add their step counts (both ladders ran on the
    /// compound command's critical path).
    pub fn combine(self, other: IoStatus) -> IoStatus {
        use IoStatus::*;
        match (self, other) {
            (Unrecoverable, _) | (_, Unrecoverable) => Unrecoverable,
            (Rejected, _) | (_, Rejected) => Rejected,
            (RecoveredAfterRetry { steps: a }, RecoveredAfterRetry { steps: b }) => {
                RecoveredAfterRetry { steps: a + b }
            }
            (s @ RecoveredAfterRetry { .. }, Ok) | (Ok, s @ RecoveredAfterRetry { .. }) => s,
            (Ok, Ok) => Ok,
        }
    }
}

/// Fault schedules for one media unit (one LUN), extracted from a
/// [`FaultPlan`] by [`FaultPlan::unit_view`] and handed to the flash
/// model at construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultView {
    /// Multiplier applied to the computed raw bit error rate of every
    /// read on this unit. 1.0 = no elevation (bit-exact identity).
    pub rber_multiplier: f64,
    /// Sorted indices into the unit's program counter: the *n*-th
    /// program issued to this unit fails (0-based).
    pub program_fail: Vec<u64>,
    /// Sorted indices into the unit's erase counter: the *n*-th erase
    /// issued to this unit fails and retires its block (0-based).
    pub erase_fail: Vec<u64>,
}

impl FaultView {
    /// The identity view: RBER ×1.0, no scheduled failures.
    pub fn none() -> Self {
        FaultView {
            rber_multiplier: 1.0,
            program_fail: Vec::new(),
            erase_fail: Vec::new(),
        }
    }

    /// Whether the view injects nothing.
    pub fn is_none(&self) -> bool {
        self.rber_multiplier == 1.0 && self.program_fail.is_empty() && self.erase_fail.is_empty()
    }
}

fn default_one() -> f64 {
    1.0
}

/// Deterministic fault-injection configuration for one device.
///
/// Everything is expressed as explicit data — multipliers and sorted
/// index schedules — so that applying a plan never consumes randomness
/// on the simulation path. Use [`FaultPlan::seeded`] to expand a seed
/// into schedules up front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RBER multiplier applied to every unit (composed with the
    /// per-unit multipliers below). 1.0 = none.
    #[serde(default = "default_one")]
    pub rber_global: f64,
    /// Extra per-unit RBER multipliers, keyed by unit (LUN) index.
    #[serde(default)]
    pub rber_multiplier: BTreeMap<u32, f64>,
    /// Per-unit program-failure schedules: sorted 0-based indices into
    /// the unit's program counter.
    #[serde(default)]
    pub program_fail: BTreeMap<u32, Vec<u64>>,
    /// Per-unit erase-failure schedules: sorted 0-based indices into
    /// the unit's erase counter.
    #[serde(default)]
    pub erase_fail: BTreeMap<u32, Vec<u64>>,
    /// Per-channel transient hiccups: `(grant index, extra ns)` pairs,
    /// sorted by grant index. The *n*-th transfer granted on that
    /// channel takes `extra ns` longer (a link retrain, a retried
    /// cycle).
    #[serde(default)]
    pub channel_hiccup: BTreeMap<u32, Vec<(u64, u64)>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: nothing is injected; simulation output is
    /// bit-identical to a fault-oblivious build.
    pub fn none() -> Self {
        FaultPlan {
            rber_global: default_one(),
            rber_multiplier: BTreeMap::new(),
            program_fail: BTreeMap::new(),
            erase_fail: BTreeMap::new(),
            channel_hiccup: BTreeMap::new(),
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.rber_global == 1.0
            && self.rber_multiplier.is_empty()
            && self.program_fail.is_empty()
            && self.erase_fail.is_empty()
            && self.channel_hiccup.is_empty()
    }

    /// A plan elevating RBER uniformly on every unit by `multiplier`.
    pub fn uniform_rber(multiplier: f64) -> Self {
        FaultPlan {
            rber_global: multiplier,
            ..FaultPlan::none()
        }
    }

    /// Builder: elevate RBER on one unit.
    pub fn with_unit_rber(mut self, unit: u32, multiplier: f64) -> Self {
        self.rber_multiplier.insert(unit, multiplier);
        self
    }

    /// Builder: schedule program failures on one unit (indices are
    /// sorted and deduplicated).
    pub fn with_program_fail(mut self, unit: u32, mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        self.program_fail.insert(unit, indices);
        self
    }

    /// Builder: schedule erase failures on one unit (indices are sorted
    /// and deduplicated).
    pub fn with_erase_fail(mut self, unit: u32, mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        self.erase_fail.insert(unit, indices);
        self
    }

    /// Builder: schedule channel hiccups (pairs are sorted by grant
    /// index).
    pub fn with_channel_hiccup(mut self, channel: u32, mut hiccups: Vec<(u64, u64)>) -> Self {
        hiccups.sort_unstable();
        self.channel_hiccup.insert(channel, hiccups);
        self
    }

    /// Expand a seed into a concrete plan: uniform RBER elevation plus
    /// randomly placed program-fail / erase-fail schedules and channel
    /// hiccups. All randomness is consumed **here**, at construction —
    /// the resulting plan is plain data and replays identically.
    ///
    /// * `units` / `channels` — device shape;
    /// * `rber_multiplier` — uniform RBER elevation;
    /// * `program_fails_per_unit` — how many scheduled program failures
    ///   each unit receives, placed uniformly in `[0, horizon)` of its
    ///   program counter (`erase_fails_per_unit`, `hiccups_per_channel`
    ///   likewise);
    /// * `horizon` — operation-count window the schedules are drawn
    ///   from.
    #[allow(clippy::too_many_arguments)]
    pub fn seeded(
        seed: u64,
        units: u32,
        channels: u32,
        rber_multiplier: f64,
        program_fails_per_unit: u32,
        erase_fails_per_unit: u32,
        hiccups_per_channel: u32,
        horizon: u64,
    ) -> Self {
        let root = SimRng::from_seed(seed);
        let mut plan = FaultPlan::uniform_rber(rber_multiplier);
        let horizon = horizon.max(1);
        for u in 0..units {
            let mut rng = root.derive(&format!("fault-unit{u}"));
            if program_fails_per_unit > 0 {
                let mut idx: Vec<u64> = (0..program_fails_per_unit)
                    .map(|_| rng.below(horizon))
                    .collect();
                idx.sort_unstable();
                idx.dedup();
                plan.program_fail.insert(u, idx);
            }
            if erase_fails_per_unit > 0 {
                let mut idx: Vec<u64> = (0..erase_fails_per_unit)
                    .map(|_| rng.below(horizon))
                    .collect();
                idx.sort_unstable();
                idx.dedup();
                plan.erase_fail.insert(u, idx);
            }
        }
        for c in 0..channels {
            let mut rng = root.derive(&format!("fault-chan{c}"));
            if hiccups_per_channel > 0 {
                let mut pairs: Vec<(u64, u64)> = (0..hiccups_per_channel)
                    .map(|_| (rng.below(horizon), 1_000 + rng.below(9_000)))
                    .collect();
                pairs.sort_unstable();
                plan.channel_hiccup.insert(c, pairs);
            }
        }
        plan
    }

    /// The fault view of one media unit: composed RBER multiplier plus
    /// that unit's schedules.
    pub fn unit_view(&self, unit: u32) -> FaultView {
        FaultView {
            rber_multiplier: self.rber_global
                * self.rber_multiplier.get(&unit).copied().unwrap_or(1.0),
            program_fail: self.program_fail.get(&unit).cloned().unwrap_or_default(),
            erase_fail: self.erase_fail.get(&unit).cloned().unwrap_or_default(),
        }
    }

    /// The hiccup schedule of one channel (empty when none).
    pub fn channel_view(&self, channel: u32) -> Vec<(u64, u64)> {
        self.channel_hiccup
            .get(&channel)
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        let v = p.unit_view(3);
        assert!(v.is_none());
        assert_eq!(v.rber_multiplier, 1.0);
        assert!(p.channel_view(0).is_empty());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn seeded_plans_replay_identically() {
        let a = FaultPlan::seeded(42, 8, 2, 1e3, 4, 2, 3, 10_000);
        let b = FaultPlan::seeded(42, 8, 2, 1e3, 4, 2, 3, 10_000);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 8, 2, 1e3, 4, 2, 3, 10_000);
        assert_ne!(a, c, "different seeds give different schedules");
        assert!(!a.is_none());
    }

    #[test]
    fn unit_views_compose_multipliers() {
        let p = FaultPlan::uniform_rber(10.0).with_unit_rber(1, 5.0);
        assert_eq!(p.unit_view(0).rber_multiplier, 10.0);
        assert_eq!(p.unit_view(1).rber_multiplier, 50.0);
    }

    #[test]
    fn schedules_sort_and_dedup() {
        let p = FaultPlan::none().with_program_fail(0, vec![9, 3, 3, 7]);
        assert_eq!(p.unit_view(0).program_fail, vec![3, 7, 9]);
    }

    #[test]
    fn status_vocabulary() {
        assert_eq!(IoStatus::Ok.as_str(), "ok");
        assert_eq!(
            IoStatus::RecoveredAfterRetry { steps: 3 }.as_str(),
            "recovered_after_retry"
        );
        assert!(IoStatus::RecoveredAfterRetry { steps: 3 }.is_success());
        assert_eq!(IoStatus::RecoveredAfterRetry { steps: 3 }.steps(), 3);
        assert!(!IoStatus::Unrecoverable.is_success());
        assert_eq!(IoStatus::Rejected.steps(), 0);
        assert_eq!(IoStatus::default(), IoStatus::Ok);
    }
}
