//! Deterministic, splittable randomness.
//!
//! One experiment seed fans out into independent streams — one per
//! component (workload generator, error injector, GC victim tiebreaker…) —
//! so that changing how one component consumes randomness cannot perturb
//! another component's stream. Streams are derived by hashing the parent
//! seed with a label (FNV-1a), so derivation is stable across runs,
//! platforms, and code reordering.
//!
//! The generator itself is a self-contained xoshiro256++ (Blackman &
//! Vigna), state-expanded from the 64-bit seed with splitmix64. No
//! external crates are involved, so the stream is fully under this
//! repository's control: identical across toolchains and immune to
//! upstream algorithm changes — a hard requirement for the bit-identical
//! determinism tests in `tests/determinism.rs`.

/// A deterministic random source, seedable and splittable by label.
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={})", self.seed)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, label: &str) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // avalanche (splitmix64 finalizer) so nearby seeds diverge fully
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// splitmix64 step: advances `x` and returns the next output. Used only
/// to expand the 64-bit seed into xoshiro's 256-bit state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { seed, state }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream.
    pub fn derive(&self, label: &str) -> SimRng {
        SimRng::from_seed(fnv1a(self.seed, label))
    }

    /// The seed this stream was constructed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. Returns 0 if `bound == 0`.
    ///
    /// Debiased via Lemire's widening-multiply rejection method.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                // acceptance region reached; high word is unbiased
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize index in `[0, bound)`. Returns 0 if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1)
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Exponential inter-arrival sampler for open-loop drivers (a Poisson
/// arrival process at a fixed offered rate).
///
/// The mean gap is carried as *fractional* nanoseconds internally —
/// quantising it to the integer-ns [`SimDuration`](crate::SimDuration)
/// would skew the distribution at high rates — and only the sampled gap
/// is truncated, floored at 1 ns so simulated time strictly advances.
/// Keeping the float math here (one inversion-method formula, one
/// truncation site) is what makes every driver that offers "N IOPS"
/// reproduce the same arrival stream bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct ExpInterarrival {
    mean_gap_ns: f64,
}

impl ExpInterarrival {
    /// Sampler for `rate_per_sec` arrivals per second.
    ///
    /// # Panics
    /// Panics if `rate_per_sec <= 0`.
    pub fn per_second(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "offered rate must be positive");
        ExpInterarrival {
            mean_gap_ns: 1e9 / rate_per_sec,
        }
    }

    /// Draw the next inter-arrival gap.
    pub fn sample(&self, rng: &mut SimRng) -> crate::SimDuration {
        // inversion method; clamp the uniform draw away from 0 so ln()
        // stays finite, floor the gap at 1ns to keep time advancing
        let gap = (-rng.unit().max(f64::MIN_POSITIVE).ln() * self.mean_gap_ns).max(1.0);
        crate::SimDuration::from_nanos(gap as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::from_seed(7);
        let mut a1 = root.derive("workload");
        let mut a2 = root.derive("workload");
        let mut b = root.derive("errors");
        let x1 = a1.next_u64();
        assert_eq!(x1, a2.next_u64());
        assert_ne!(x1, b.next_u64());
    }

    #[test]
    fn derive_differs_across_seeds() {
        let a = SimRng::from_seed(1).derive("x");
        let b = SimRng::from_seed(2).derive("x");
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::from_seed(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..=11_000).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::from_seed(13);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit out of range: {u}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = SimRng::from_seed(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }
}
