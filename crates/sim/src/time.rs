//! Virtual time: instants and durations in integer nanoseconds.
//!
//! Every latency in the simulated stack — a 50 µs flash page read, a 3 ms
//! erase, a 300 ns PCM store, a 1.2 µs interrupt — is an exact integer
//! number of nanoseconds. Integer arithmetic keeps experiments bit-for-bit
//! reproducible across runs and platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

/// One nanosecond.
pub const NANOSECOND: SimDuration = SimDuration(1);
/// One microsecond (1 000 ns).
pub const MICROSECOND: SimDuration = SimDuration(1_000);
/// One millisecond (1 000 000 ns).
pub const MILLISECOND: SimDuration = SimDuration(1_000_000);
/// One second (10⁹ ns).
pub const SECOND: SimDuration = SimDuration(1_000_000_000);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct an instant a given number of nanoseconds after the origin.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct an instant a given number of microseconds after the origin.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct an instant a given number of milliseconds after the origin.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`; saturates to zero
    /// in release builds.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in (possibly fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Length in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, truncating to whole nanoseconds.
    ///
    /// This is the one sanctioned way to apply a fractional factor to a
    /// duration (seek curves, utilisation shares): the rounding rule —
    /// `(ns as f64 * factor) as u64`, i.e. truncation toward zero — is
    /// defined *here*, once, so every call site rounds identically.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "mul_f64 factor must be non-negative");
        SimDuration((self.0 as f64 * factor) as u64)
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is longer.
    #[inline]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

/// Render a nanosecond count with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3), SimTime::from_nanos(3_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_nanos(2_000_000));
        assert_eq!(SimDuration::from_secs(1), SECOND);
        assert_eq!(MILLISECOND * 1_000, SECOND);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_is_difference() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(b.since(a), SimDuration::from_nanos(250));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let d = SimDuration::from_nanos(5);
        let e = SimDuration::from_nanos(9);
        assert_eq!(d.max(e), e);
        assert_eq!(d.min(e), d);
    }

    #[test]
    fn duration_ratio() {
        assert!((MILLISECOND / MICROSECOND - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.50µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.50ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    fn saturating_sub() {
        let d = SimDuration::from_nanos(5);
        assert_eq!(
            d.saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(d.saturating_sub(SimDuration::from_nanos(2)).as_nanos(), 3);
    }
}
