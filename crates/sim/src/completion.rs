//! Kernel primitives for out-of-order completion: the completion heap
//! and the device-side in-flight window.
//!
//! These two types are the heart of the queue-pair engine:
//!
//! * [`CompletionHeap`] — a min-heap keyed on `(done, seq)` that drains
//!   completions in *device* order (earliest finish first) while a
//!   monotonically increasing sequence number breaks ties in submission
//!   order. Both the SSD queue pair and the block-layer per-core
//!   completion queues are built on it.
//! * [`InflightWindow`] — the NVMe-style device-side window that admits
//!   at most `depth` commands at once. Submission queues are fetched in
//!   order (admission instants are monotone), completion is where
//!   reordering happens. The window also enforces the same-LBA hazard:
//!   a command to an LBA with an in-flight predecessor is not admitted
//!   until the predecessor's completion instant, which (together with
//!   the heap's seq tie-break) guarantees same-LBA commands complete in
//!   submission order.
//!
//! Everything here is pure bookkeeping over [`SimTime`] instants — no
//! wall-clock, no randomness — so the engine stays deterministic.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};

use crate::time::SimTime;

/// One entry in a [`CompletionHeap`]: a payload keyed by completion
/// instant with a submission-order sequence number as tie-break.
#[derive(Debug, Clone)]
struct Entry<T> {
    done: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.done == other.done && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get a min-heap on
        // (done, seq). Equal `done` pops in submission order.
        (other.done, other.seq).cmp(&(self.done, self.seq))
    }
}

/// Min-heap of pending completions ordered by `(done, seq)`.
///
/// `seq` is assigned internally at [`push`](CompletionHeap::push) time,
/// so two completions with the same `done` instant pop in the order
/// they were pushed — which is submission order for every user of this
/// type. That tie-break is load-bearing: it is half of the same-LBA
/// ordering guarantee (the other half is
/// [`InflightWindow::admit`]'s hazard guard).
#[derive(Debug, Clone, Default)]
pub struct CompletionHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> CompletionHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        CompletionHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Queue a completion that will be ready at `done`.
    pub fn push(&mut self, done: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { done, seq, payload });
    }

    /// Pop the earliest completion regardless of "now".
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.done, e.payload))
    }

    /// Pop the earliest completion if it is ready at `now`.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_done().is_some_and(|d| d <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Drain every completion ready at `now`, earliest first.
    pub fn drain_ready(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while let Some(c) = self.pop_ready(now) {
            out.push(c);
        }
        out
    }

    /// Completion instant of the earliest pending entry.
    pub fn peek_done(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.done)
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Device-side in-flight window: admits at most `depth` commands at
/// once, in submission order, with a per-LBA write/write-read hazard
/// guard.
///
/// Protocol per command: call [`admit`](InflightWindow::admit) to get
/// the instant the device starts the command, dispatch the device
/// model at that instant to learn `done`, then call
/// [`commit`](InflightWindow::commit) with the LBA and `done`.
#[derive(Debug, Clone)]
pub struct InflightWindow {
    depth: usize,
    /// Completion instants of in-flight commands (min-heap).
    inflight: BinaryHeap<Reverse<SimTime>>,
    /// Admission instants are monotone: SQs are fetched in order.
    last_admit: SimTime,
    /// Completion instant of the last in-flight command per LBA.
    lba_busy: BTreeMap<u64, SimTime>,
}

impl InflightWindow {
    /// A window admitting up to `depth` commands (min 1).
    pub fn new(depth: usize) -> Self {
        InflightWindow {
            depth: depth.max(1),
            inflight: BinaryHeap::new(),
            last_admit: SimTime::ZERO,
            lba_busy: BTreeMap::new(),
        }
    }

    /// Configured window depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands currently in flight as of the last admit instant.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Earliest completion instant among in-flight commands.
    pub fn earliest_done(&self) -> Option<SimTime> {
        self.inflight.peek().map(|Reverse(t)| *t)
    }

    /// Compute the admission instant for a command targeting `lba`
    /// that arrives at the submission queue at `now`.
    ///
    /// The instant is the earliest `t >= max(now, previous admit)` at
    /// which (a) fewer than `depth` commands are still in flight and
    /// (b) no earlier command to the same LBA is still in flight.
    pub fn admit(&mut self, now: SimTime, lba: u64) -> SimTime {
        // SQ fetch order: never admit before a previously admitted
        // command (keeps device-side submit instants monotone).
        let mut t = if now > self.last_admit {
            now
        } else {
            self.last_admit
        };
        // Retire commands already done by `t`.
        while self.inflight.peek().is_some_and(|Reverse(d)| *d <= t) {
            self.inflight.pop();
        }
        // Window full: wait for the earliest in-flight completion.
        while self.inflight.len() >= self.depth {
            let Reverse(d) = self.inflight.pop().expect("non-empty at depth");
            if d > t {
                t = d;
            }
        }
        // Same-LBA hazard: wait out any in-flight predecessor.
        if let Some(&busy) = self.lba_busy.get(&lba) {
            if busy > t {
                t = busy;
                // The predecessor finishing may retire more commands.
                while self.inflight.peek().is_some_and(|Reverse(d)| *d <= t) {
                    self.inflight.pop();
                }
            }
        }
        // Lazy cleanup so the hazard map stays O(depth)-ish.
        if self.lba_busy.len() > 4 * self.depth {
            self.lba_busy.retain(|_, d| *d > t);
        }
        t
    }

    /// Record a dispatched command: `lba` is busy until `done`.
    ///
    /// Must be called after [`admit`](InflightWindow::admit) with the
    /// completion instant the device model returned for the admitted
    /// command.
    pub fn commit(&mut self, admit: SimTime, lba: u64, done: SimTime) {
        debug_assert!(done >= admit, "completion precedes admission");
        self.inflight.push(Reverse(done));
        self.lba_busy.insert(lba, done);
        self.last_admit = admit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn heap_orders_by_done_then_seq() {
        let mut h = CompletionHeap::new();
        h.push(t(30), "c");
        h.push(t(10), "a1");
        h.push(t(10), "a2");
        h.push(t(20), "b");
        assert_eq!(h.len(), 4);
        assert_eq!(h.peek_done(), Some(t(10)));
        assert_eq!(h.pop(), Some((t(10), "a1")));
        assert_eq!(h.pop(), Some((t(10), "a2")));
        assert_eq!(h.pop(), Some((t(20), "b")));
        assert_eq!(h.pop(), Some((t(30), "c")));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn heap_pop_ready_respects_now() {
        let mut h = CompletionHeap::new();
        h.push(t(10), 1u32);
        h.push(t(20), 2u32);
        assert_eq!(h.pop_ready(t(5)), None);
        assert_eq!(h.pop_ready(t(10)), Some((t(10), 1)));
        assert_eq!(h.pop_ready(t(10)), None);
        let rest = h.drain_ready(t(100));
        assert_eq!(rest, vec![(t(20), 2)]);
    }

    #[test]
    fn window_admits_up_to_depth_then_blocks() {
        let mut w = InflightWindow::new(2);
        let a0 = w.admit(t(0), 0);
        assert_eq!(a0, t(0));
        w.commit(a0, 0, t(100));
        let a1 = w.admit(t(0), 1);
        assert_eq!(a1, t(0));
        w.commit(a1, 1, t(50));
        // Window full: third command waits for the earliest done (50).
        let a2 = w.admit(t(0), 2);
        assert_eq!(a2, t(50));
        w.commit(a2, 2, t(120));
        // Fourth waits for the next earliest (100).
        let a3 = w.admit(t(0), 3);
        assert_eq!(a3, t(100));
    }

    #[test]
    fn window_admissions_are_monotone() {
        let mut w = InflightWindow::new(4);
        let a0 = w.admit(t(10), 0);
        w.commit(a0, 0, t(30));
        // A command "arriving" earlier still admits no earlier than a0.
        let a1 = w.admit(t(5), 1);
        assert_eq!(a1, t(10));
    }

    #[test]
    fn window_same_lba_hazard_serializes() {
        let mut w = InflightWindow::new(8);
        let a0 = w.admit(t(0), 7);
        w.commit(a0, 7, t(200));
        // Same LBA: admitted only once the predecessor is done.
        let a1 = w.admit(t(0), 7);
        assert_eq!(a1, t(200));
        w.commit(a1, 7, t(260));
        // Different LBA unaffected by the hazard (window has room).
        let a2 = w.admit(t(0), 8);
        assert_eq!(a2, t(200)); // monotone after a1, not hazard-blocked
    }

    #[test]
    fn window_retires_done_commands() {
        let mut w = InflightWindow::new(1);
        let a0 = w.admit(t(0), 0);
        w.commit(a0, 0, t(10));
        assert_eq!(w.in_flight(), 1);
        // At t=20 the first command has retired: no wait.
        let a1 = w.admit(t(20), 1);
        assert_eq!(a1, t(20));
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn window_hazard_map_stays_bounded() {
        let mut w = InflightWindow::new(2);
        for i in 0..1000u64 {
            let a = w.admit(t(i), i);
            w.commit(a, i, a + crate::time::SimDuration::from_micros(1));
        }
        assert!(w.lba_busy.len() <= 4 * w.depth() + 1);
    }
}
