//! Cross-layer observability bus.
//!
//! Every layer of the simulated stack (flash timing, SSD controller,
//! block layer, storage manager) can emit [`SpanEvent`]s into a shared
//! [`Probe`]: *this command spent `[start, end)` in layer L for cause C
//! on resource R*. One bus per experiment replaces per-layer ad-hoc
//! metric structs with a single composable view: any host command can be
//! decomposed into per-layer latency (queueing vs. channel transfer vs.
//! cell read vs. GC stall vs. buffer hit), and aggregate per-layer
//! totals fall out of the same stream.
//!
//! ## Span model
//!
//! * A **command** is opened by the outermost layer that accepts a host
//!   operation ([`Probe::open_command`]) and closed with its completion
//!   time. If a lower layer also calls `open_command` while a command is
//!   open (e.g. `Ssd::read` under the block layer), it joins the open
//!   command instead of nesting — so one host op maps to one command id
//!   no matter where the stack was entered.
//! * Spans emitted while a command is open are attributed to it and MUST
//!   tile the command's `[submit, done)` interval without overlap: each
//!   span is *exclusive* time on the critical path. The sum of a
//!   command's span durations therefore equals its end-to-end latency —
//!   tested property, not convention.
//! * Work that runs on device time but off the command's critical path
//!   (GC relocations, buffer flushes after a buffered-write completion,
//!   discarded translation traffic) is emitted inside a *background*
//!   scope ([`Probe::enter_background`]) and recorded with `cmd: None`.
//!   Its cost reaches host commands only indirectly — as queueing delay
//!   on shared resources — which the resource layer attributes via
//!   occupant tags ([`crate::resource::Occupant`]) and surfaces here as
//!   `GcStall` / `WearStall` / `MergeStall` spans on the stalled command.
//!
//! The bus always maintains aggregate per-`(layer, cause)` statistics;
//! retaining the raw event list is opt-in ([`Probe::recording`]) so
//! million-op experiments can run with summaries only.

use crate::resource::Occupant;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The stack layer a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Application / experiment harness.
    App,
    /// Storage manager (key-value / database engine).
    Db,
    /// Write-ahead log inside the storage manager.
    Wal,
    /// OS block layer (submission, queueing, completion).
    Block,
    /// SSD controller firmware (fixed overheads, mapping decisions).
    Controller,
    /// FTL mapping traffic (DFTL translation reads/writes, rebuild scans).
    Mapping,
    /// Controller write buffer.
    Buffer,
    /// Flash channel (command/address cycles, data transfers).
    Channel,
    /// Flash cell operations (tR / tPROG / tBERS) and waits for chips.
    Flash,
    /// Host interface link (SATA/NVMe transfer).
    HostLink,
}

impl Layer {
    /// Stable lowercase name (JSON keys, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::App => "app",
            Layer::Db => "db",
            Layer::Wal => "wal",
            Layer::Block => "block",
            Layer::Controller => "controller",
            Layer::Mapping => "mapping",
            Layer::Buffer => "buffer",
            Layer::Channel => "channel",
            Layer::Flash => "flash",
            Layer::HostLink => "host_link",
        }
    }
}

/// Why the time elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// Fixed processing overhead (controller firmware, CPU submit path).
    Overhead,
    /// Command/address cycles on a channel.
    Command,
    /// Waiting for a resource occupied by other host traffic.
    Queue,
    /// Waiting for a resource occupied by garbage collection.
    GcStall,
    /// Waiting for a resource occupied by wear leveling.
    WearStall,
    /// Waiting for a resource occupied by an FTL merge.
    MergeStall,
    /// Waiting for a resource occupied by mapping-translation traffic.
    TranslationStall,
    /// Waiting for a resource occupied by error recovery (another
    /// command's retry ladder, parity rebuild, or salvage).
    RecoveryStall,
    /// Error-recovery work on the command's own critical path: retry
    /// re-reads, ECC escalation, parity-rebuild reads.
    Recovery,
    /// Data movement on a bus (channel or host link).
    Transfer,
    /// Flash cell read (tR).
    CellRead,
    /// Flash cell program (tPROG).
    CellProgram,
    /// Flash block erase (tBERS).
    CellErase,
    /// Served out of the write buffer (zero-duration marker).
    BufferHit,
    /// Waiting for write-buffer space (buffer-full stall).
    BufferStall,
    /// Mapping translation traffic (DFTL page reads/writes, boot scan).
    Translation,
    /// Byte-granular persist to PCM on the memory bus: line writes plus
    /// the persist barrier (the paper's §3 synchronous-persistence path,
    /// distinct from `Transfer` which is a block-device bus).
    PcmPersist,
}

impl Cause {
    /// Stable lowercase name (JSON keys, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Cause::Overhead => "overhead",
            Cause::Command => "command",
            Cause::Queue => "queue",
            Cause::GcStall => "gc_stall",
            Cause::WearStall => "wear_stall",
            Cause::MergeStall => "merge_stall",
            Cause::TranslationStall => "translation_stall",
            Cause::RecoveryStall => "recovery_stall",
            Cause::Recovery => "recovery",
            Cause::Transfer => "transfer",
            Cause::CellRead => "cell_read",
            Cause::CellProgram => "cell_program",
            Cause::CellErase => "cell_erase",
            Cause::BufferHit => "buffer_hit",
            Cause::BufferStall => "buffer_stall",
            Cause::Translation => "translation",
            Cause::PcmPersist => "pcm_persist",
        }
    }

    /// The stall cause charged to a command that waited behind a
    /// resource occupied by `occ`.
    pub fn from_occupant(occ: Occupant) -> Cause {
        match occ {
            Occupant::Host => Cause::Queue,
            Occupant::Gc => Cause::GcStall,
            Occupant::Wear => Cause::WearStall,
            Occupant::Merge => Cause::MergeStall,
            Occupant::Translation => Cause::TranslationStall,
            Occupant::Recovery => Cause::RecoveryStall,
        }
    }
}

/// One attributed interval of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Command this span is on the critical path of (`None` = background).
    pub cmd: Option<u64>,
    /// Stack layer.
    pub layer: Layer,
    /// Why the time elapsed.
    pub cause: Cause,
    /// Resource involved, when one is (`"chip3"`, `"chan0"`, …).
    pub resource: Option<String>,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end (virtual time).
    pub end: SimTime,
}

impl SpanEvent {
    /// Span duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Record of one opened command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandRecord {
    /// Command id (unique per bus).
    pub id: u64,
    /// Command kind (`"read"`, `"write"`, `"trim"`, …).
    pub kind: &'static str,
    /// Submission instant.
    pub submit: SimTime,
    /// Completion instant (`None` while open).
    pub done: Option<SimTime>,
    /// Number of spans attributed to this command so far. Maintained
    /// even when raw events are not retained, so queue-pair engines can
    /// report span counts per [`crate::cmd::IoCompletion`] cheaply.
    pub spans: u32,
}

/// Aggregate statistics for one `(layer, cause)` bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of spans.
    pub count: u64,
    /// Total attributed time.
    pub total: SimDuration,
}

/// Per-`(layer, cause)` aggregate view over everything the bus saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSummary {
    /// Aggregates keyed by `(layer, cause)`.
    pub by_layer_cause: BTreeMap<(Layer, Cause), SpanStat>,
    /// Commands completed, by kind.
    pub commands: BTreeMap<&'static str, u64>,
    /// Non-`Ok` completion statuses observed, by status name (see
    /// [`crate::fault::IoStatus::as_str`]). Clean completions are not
    /// counted, so a zero-fault run leaves this empty — and the JSON
    /// summary byte-identical to a fault-oblivious build.
    pub statuses: BTreeMap<&'static str, u64>,
}

impl ProbeSummary {
    /// Total attributed time in `layer` across all causes.
    pub fn layer_total(&self, layer: Layer) -> SimDuration {
        self.by_layer_cause
            .iter()
            .filter(|((l, _), _)| *l == layer)
            .map(|(_, s)| s.total)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total attributed time for `cause` across all layers.
    pub fn cause_total(&self, cause: Cause) -> SimDuration {
        self.by_layer_cause
            .iter()
            .filter(|((_, c), _)| *c == cause)
            .map(|(_, s)| s.total)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Serialize as a JSON object (hand-rolled; no serializer dependency):
    /// `{"commands": {...}, "spans": [{"layer": .., "cause": ..,
    /// "count": .., "total_ns": ..}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"commands\":{");
        let mut first = true;
        for (kind, n) in &self.commands {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{kind}\":{n}"));
        }
        out.push('}');
        if !self.statuses.is_empty() {
            out.push_str(",\"statuses\":{");
            let mut first = true;
            for (status, n) in &self.statuses {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{status}\":{n}"));
            }
            out.push('}');
        }
        out.push_str(",\"spans\":[");
        let mut first = true;
        for ((layer, cause), stat) in &self.by_layer_cause {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"layer\":\"{}\",\"cause\":\"{}\",\"count\":{},\"total_ns\":{}}}",
                layer.as_str(),
                cause.as_str(),
                stat.count,
                stat.total.as_nanos()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Aggregate statistics for one `(layer, cause, resource)` bucket, as
/// reported by [`Probe::resource_summary`] in aggregated mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceStat {
    /// Stack layer.
    pub layer: Layer,
    /// Why the time elapsed.
    pub cause: Cause,
    /// Resource name (`"chip3"`, `"chan0"`, …).
    pub resource: String,
    /// Number of spans.
    pub count: u64,
    /// Total attributed time.
    pub total: SimDuration,
}

#[derive(Debug, Default)]
struct ProbeBus {
    retain_events: bool,
    /// Aggregated mode drops closed command records (memory stays
    /// O(in-flight), not O(commands)); the default keeps them all.
    discard_closed: bool,
    /// Aggregated mode folds spans into `by_resource` accumulators.
    track_resources: bool,
    events: Vec<SpanEvent>,
    commands: Vec<CommandRecord>,
    /// Command id → position in `commands`, for O(log n) attribution
    /// instead of the reverse linear scans the bus used to do per span.
    index: BTreeMap<u64, usize>,
    open: Option<u64>,
    /// Position of the open command in `commands`; valid iff `open` is
    /// `Some` (cached so the per-span hot path does no lookup at all).
    open_idx: usize,
    next_cmd: u64,
    background_depth: u32,
    summary: ProbeSummary,
    /// Interned resource names (aggregated mode); id = first-seen order.
    res_names: Vec<String>,
    res_ids: BTreeMap<String, u32>,
    by_resource: BTreeMap<(Layer, Cause, u32), SpanStat>,
}

impl ProbeBus {
    fn intern(&mut self, resource: &str) -> u32 {
        if let Some(&id) = self.res_ids.get(resource) {
            return id;
        }
        let id = self.res_names.len() as u32;
        self.res_names.push(resource.to_string());
        self.res_ids.insert(resource.to_string(), id);
        id
    }

    /// Emit one span (shared by [`Probe::span`] and [`SpanBatch::span`],
    /// which differ only in how the `RefCell` borrow is amortized).
    fn push_span(
        &mut self,
        layer: Layer,
        cause: Cause,
        resource: &str,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        let cmd = if self.background_depth > 0 {
            None
        } else {
            self.open
        };
        let stat = self
            .summary
            .by_layer_cause
            .entry((layer, cause))
            .or_default();
        stat.count += 1;
        stat.total += end.since(start);
        if cmd.is_some() {
            self.commands[self.open_idx].spans += 1;
        }
        if self.track_resources && !resource.is_empty() {
            let rid = self.intern(resource);
            let stat = self.by_resource.entry((layer, cause, rid)).or_default();
            stat.count += 1;
            stat.total += end.since(start);
        }
        if self.retain_events {
            let resource = if resource.is_empty() {
                None
            } else {
                Some(resource.to_string())
            };
            self.events.push(SpanEvent {
                cmd,
                layer,
                cause,
                resource,
                start,
                end,
            });
        }
    }

    fn push_wait_spans(
        &mut self,
        layer: Layer,
        resource: &str,
        from: SimTime,
        to: SimTime,
        blame: &[(Occupant, SimDuration)],
    ) {
        if to <= from {
            return;
        }
        let mut cursor = from;
        for &(occ, dur) in blame {
            if dur == SimDuration::ZERO {
                continue;
            }
            let end = cursor + dur;
            self.push_span(layer, Cause::from_occupant(occ), resource, cursor, end);
            cursor = end;
        }
        debug_assert_eq!(cursor, to, "blame does not tile the wait interval");
    }

    fn close_command(&mut self, id: u64, done: SimTime) {
        if let Some(&pos) = self.index.get(&id) {
            let kind = self.commands[pos].kind;
            *self.summary.commands.entry(kind).or_insert(0) += 1;
            if self.discard_closed {
                // swap-remove keeps close O(1); fix the moved record's
                // index entry (and the open cache, should it be open).
                self.commands.swap_remove(pos);
                self.index.remove(&id);
                if pos < self.commands.len() {
                    let moved = self.commands[pos].id;
                    self.index.insert(moved, pos);
                    if self.open == Some(moved) {
                        self.open_idx = pos;
                    }
                }
            } else {
                self.commands[pos].done = Some(done);
            }
        }
        self.open = None;
    }

    /// Remove an aborted (never-closed) record, preserving record order.
    /// Aborts are error-path-only, so the O(n) index shift is fine.
    fn abort_command(&mut self, id: u64) {
        if self.open == Some(id) {
            self.open = None;
        }
        let Some(&pos) = self.index.get(&id) else {
            return;
        };
        if self.commands[pos].done.is_some() {
            return;
        }
        self.commands.remove(pos);
        self.index.remove(&id);
        for p in self.index.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
        if let Some(open) = self.open {
            if let Some(&op) = self.index.get(&open) {
                self.open_idx = op;
            }
        }
    }
}

/// Scope handle returned by [`Probe::open_command`]; close it with the
/// completion time. A scope that *joined* an already-open command (or a
/// disabled probe) closes as a no-op.
///
/// Dropping an owned scope without closing it **aborts** the command: the
/// unfinished record is discarded and the bus reopens for the next
/// command. This keeps error paths (`?` past an open scope) from wedging
/// the bus with a phantom open command.
#[must_use = "close the command scope with its completion time"]
pub struct CommandScope {
    bus: Option<Rc<RefCell<ProbeBus>>>,
    id: u64,
    owned: bool,
}

impl CommandScope {
    /// The command id (0 when the probe is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Detach the scope from the bus, leaving the command **open** for
    /// later [`Probe::resume`]. Returns the command id.
    ///
    /// This is the out-of-order-completion hook: a queue-pair engine
    /// opens a command at submission, detaches it so other commands can
    /// use the bus, and resumes it when the completion is reaped to emit
    /// the completion-path spans and close. A joined (non-owned) or
    /// disabled scope detaches as a no-op and returns its id.
    pub fn detach(mut self) -> u64 {
        let owned = self.owned;
        if let (Some(bus), true) = (self.bus.take(), owned) {
            let mut b = bus.borrow_mut();
            debug_assert_eq!(b.open, Some(self.id), "detach of a non-open command");
            b.open = None;
        }
        self.id
    }

    /// Abort the command explicitly: discard the unfinished record and
    /// reopen the bus, exactly as the drop-abort would — but visibly, so
    /// error paths can state their intent (`scope.abort(); return
    /// Err(e);`) instead of relying on an implicit drop the reader (and
    /// the `requiem-lint` PRB03 pass) cannot tell apart from a leak.
    pub fn abort(self) {
        drop(self);
    }

    /// Close the command at `done`.
    pub fn close(mut self, done: SimTime) {
        let owned = self.owned;
        if let (Some(bus), true) = (self.bus.take(), owned) {
            bus.borrow_mut().close_command(self.id, done);
        }
    }
}

impl Drop for CommandScope {
    fn drop(&mut self) {
        if !self.owned {
            return;
        }
        if let Some(bus) = self.bus.take() {
            // abort: the command never completed
            bus.borrow_mut().abort_command(self.id);
        }
    }
}

/// RAII guard for a background scope (see [`Probe::background`]).
pub struct BackgroundGuard {
    probe: Probe,
}

impl Drop for BackgroundGuard {
    fn drop(&mut self) {
        self.probe.exit_background();
    }
}

/// Cheaply clonable handle to a shared observability bus. A default
/// (`Probe::disabled`) handle is a no-op with no allocation behind it,
/// so instrumented hot paths cost one branch when tracing is off.
#[derive(Debug, Clone, Default)]
pub struct Probe {
    bus: Option<Rc<RefCell<ProbeBus>>>,
}

impl Probe {
    /// A disabled probe: every emission is a no-op.
    pub fn disabled() -> Self {
        Probe { bus: None }
    }

    /// An enabled probe maintaining aggregate summaries only.
    pub fn new() -> Self {
        Probe {
            bus: Some(Rc::new(RefCell::new(ProbeBus::default()))),
        }
    }

    /// An enabled probe that additionally retains every [`SpanEvent`]
    /// (for span-level tests and traces; memory grows with event count).
    pub fn recording() -> Self {
        let p = Probe::new();
        if let Some(b) = &p.bus {
            b.borrow_mut().retain_events = true;
        }
        p
    }

    /// An enabled probe for long-horizon runs: spans fold into
    /// per-`(layer, cause, resource)` accumulators ([`Probe::resource_summary`])
    /// and closed command records are dropped after counting, so memory
    /// stays O(in-flight commands + distinct resources) instead of
    /// O(events). The [`ProbeSummary`] is maintained identically to the
    /// other modes — same totals, same JSON — on the same event stream.
    pub fn aggregated() -> Self {
        let p = Probe::new();
        if let Some(b) = &p.bus {
            let mut b = b.borrow_mut();
            b.discard_closed = true;
            b.track_resources = true;
        }
        p
    }

    /// Whether the probe is attached to a bus.
    pub fn is_enabled(&self) -> bool {
        self.bus.is_some()
    }

    /// Open (or join) a command submitted at `submit`.
    pub fn open_command(&self, kind: &'static str, submit: SimTime) -> CommandScope {
        let Some(bus) = &self.bus else {
            return CommandScope {
                bus: None,
                id: 0,
                owned: false,
            };
        };
        let mut b = bus.borrow_mut();
        if let Some(open) = b.open {
            // join: inner layer of an already-open command
            return CommandScope {
                bus: Some(bus.clone()),
                id: open,
                owned: false,
            };
        }
        b.next_cmd += 1;
        let id = b.next_cmd;
        b.open = Some(id);
        let pos = b.commands.len();
        b.open_idx = pos;
        b.index.insert(id, pos);
        b.commands.push(CommandRecord {
            id,
            kind,
            submit,
            done: None,
            spans: 0,
        });
        CommandScope {
            bus: Some(bus.clone()),
            id,
            owned: true,
        }
    }

    /// Reattach a command previously [`CommandScope::detach`]ed. The
    /// returned scope owns the command again: spans emitted while it is
    /// open are attributed to it, and it must be closed (or re-detached)
    /// like any other scope. Resuming id 0 (disabled-probe sentinel)
    /// yields a no-op scope.
    ///
    /// # Panics
    /// Debug-asserts that no other command is currently open.
    pub fn resume(&self, id: u64) -> CommandScope {
        let Some(bus) = &self.bus else {
            return CommandScope {
                bus: None,
                id: 0,
                owned: false,
            };
        };
        if id == 0 {
            return CommandScope {
                bus: None,
                id: 0,
                owned: false,
            };
        }
        let mut b = bus.borrow_mut();
        debug_assert!(b.open.is_none(), "resume while another command is open");
        let Some(&pos) = b.index.get(&id) else {
            debug_assert!(false, "resume of unknown or already-closed command {id}");
            return CommandScope {
                bus: None,
                id: 0,
                owned: false,
            };
        };
        debug_assert!(
            b.commands[pos].done.is_none(),
            "resume of already-closed command {id}"
        );
        b.open = Some(id);
        b.open_idx = pos;
        CommandScope {
            bus: Some(bus.clone()),
            id,
            owned: true,
        }
    }

    /// Number of spans attributed to command `id` so far (0 for an
    /// unknown id or a disabled probe). Works without event retention.
    pub fn command_span_count(&self, id: u64) -> u32 {
        self.bus
            .as_ref()
            .and_then(|b| {
                let b = b.borrow();
                b.index.get(&id).map(|&pos| b.commands[pos].spans)
            })
            .unwrap_or(0)
    }

    /// Emit one span. Attributed to the open command unless the bus is
    /// inside a background scope (or no command is open). Zero-duration
    /// spans are legal (markers such as [`Cause::BufferHit`]).
    pub fn span(&self, layer: Layer, cause: Cause, resource: &str, start: SimTime, end: SimTime) {
        if let Some(bus) = &self.bus {
            bus.borrow_mut()
                .push_span(layer, cause, resource, start, end);
        }
    }

    /// Emit a wait interval `[from, to)` decomposed into per-occupant
    /// stall spans (see [`crate::resource::Resource::blame`]). Sub-span
    /// boundaries are synthetic but durations are exact.
    pub fn wait_spans(
        &self,
        layer: Layer,
        resource: &str,
        from: SimTime,
        to: SimTime,
        blame: &[(Occupant, SimDuration)],
    ) {
        if let Some(bus) = &self.bus {
            bus.borrow_mut()
                .push_wait_spans(layer, resource, from, to, blame);
        }
    }

    /// Borrow the bus once for a run of span emissions. One flash
    /// operation emits three to five spans (channel command, stall
    /// decomposition, cell op, transfers); batching them through a single
    /// guard replaces that many `RefCell` round-trips with one.
    ///
    /// Returns `None` when the probe is disabled — callers keep their
    /// existing `is_enabled()` fast path. The guard must be dropped
    /// before any other probe call (scope open/close, `summary()`), or
    /// the bus `RefCell` will panic; keep batches straight-line.
    pub fn batch(&self) -> Option<SpanBatch<'_>> {
        self.bus.as_ref().map(|b| SpanBatch {
            bus: b.borrow_mut(),
        })
    }

    /// Count a non-`Ok` completion status in the summary (see
    /// [`ProbeSummary::statuses`]). Callers pass
    /// [`crate::fault::IoStatus::as_str`]; `"ok"` is ignored so clean
    /// runs leave the summary untouched.
    pub fn note_status(&self, status: &'static str) {
        if status == "ok" {
            return;
        }
        if let Some(b) = &self.bus {
            *b.borrow_mut().summary.statuses.entry(status).or_insert(0) += 1;
        }
    }

    /// Enter a background scope: spans emitted until the matching
    /// [`Probe::exit_background`] carry `cmd: None`.
    pub fn enter_background(&self) {
        if let Some(b) = &self.bus {
            b.borrow_mut().background_depth += 1;
        }
    }

    /// Enter a background scope released when the returned guard drops.
    /// Prefer this over the manual pair on paths with early returns.
    pub fn background(&self) -> BackgroundGuard {
        self.enter_background();
        BackgroundGuard {
            probe: self.clone(),
        }
    }

    /// Leave the innermost background scope.
    pub fn exit_background(&self) {
        if let Some(b) = &self.bus {
            let mut b = b.borrow_mut();
            debug_assert!(b.background_depth > 0, "unbalanced exit_background");
            b.background_depth = b.background_depth.saturating_sub(1);
        }
    }

    /// Snapshot of the aggregate per-`(layer, cause)` view.
    pub fn summary(&self) -> ProbeSummary {
        self.bus
            .as_ref()
            .map(|b| b.borrow().summary.clone())
            .unwrap_or_default()
    }

    /// All retained events (empty unless built with [`Probe::recording`]).
    /// Clones the whole list; prefer [`Probe::events_ref`] for read-only
    /// walks.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.bus
            .as_ref()
            .map(|b| b.borrow().events.clone())
            .unwrap_or_default()
    }

    /// All command records (in aggregated mode, the in-flight ones only).
    /// Clones the whole list; prefer [`Probe::commands_ref`] for
    /// read-only walks.
    pub fn commands(&self) -> Vec<CommandRecord> {
        self.bus
            .as_ref()
            .map(|b| b.borrow().commands.clone())
            .unwrap_or_default()
    }

    /// Borrow the retained events without cloning. The guard keeps the
    /// bus borrowed: drop it before emitting any span or opening a
    /// command, or the bus `RefCell` will panic.
    pub fn events_ref(&self) -> EventsRef<'_> {
        EventsRef {
            inner: self.bus.as_ref().map(|b| b.borrow()),
        }
    }

    /// Borrow the command records without cloning (same borrow caveat as
    /// [`Probe::events_ref`]).
    pub fn commands_ref(&self) -> CommandsRef<'_> {
        CommandsRef {
            inner: self.bus.as_ref().map(|b| b.borrow()),
        }
    }

    /// Per-`(layer, cause, resource)` totals, sorted by layer, cause,
    /// then resource name. Populated only in [`Probe::aggregated`] mode;
    /// empty otherwise (recording mode keeps the raw events instead —
    /// fold them yourself if you need this view there).
    pub fn resource_summary(&self) -> Vec<ResourceStat> {
        let Some(bus) = &self.bus else {
            return Vec::new();
        };
        let b = bus.borrow();
        let mut v: Vec<ResourceStat> = b
            .by_resource
            .iter()
            .map(|(&(layer, cause, rid), stat)| ResourceStat {
                layer,
                cause,
                resource: b.res_names[rid as usize].clone(),
                count: stat.count,
                total: stat.total,
            })
            .collect();
        v.sort_by(|a, b| (a.layer, a.cause, &a.resource).cmp(&(b.layer, b.cause, &b.resource)));
        v
    }

    /// Retained events on the critical path of command `id`, in
    /// chronological order.
    pub fn command_spans(&self, id: u64) -> Vec<SpanEvent> {
        let mut v: Vec<SpanEvent> = self
            .events_ref()
            .iter()
            .filter(|e| e.cmd == Some(id))
            .cloned()
            .collect();
        v.sort_by_key(|e| (e.start, e.end));
        v
    }
}

/// Borrowed view of the retained events (see [`Probe::events_ref`]).
/// Derefs to `[SpanEvent]`; empty for a disabled probe.
pub struct EventsRef<'a> {
    inner: Option<std::cell::Ref<'a, ProbeBus>>,
}

impl std::ops::Deref for EventsRef<'_> {
    type Target = [SpanEvent];
    fn deref(&self) -> &[SpanEvent] {
        self.inner.as_ref().map_or(&[], |b| b.events.as_slice())
    }
}

/// Borrowed view of the command records (see [`Probe::commands_ref`]).
/// Derefs to `[CommandRecord]`; empty for a disabled probe.
pub struct CommandsRef<'a> {
    inner: Option<std::cell::Ref<'a, ProbeBus>>,
}

impl std::ops::Deref for CommandsRef<'_> {
    type Target = [CommandRecord];
    fn deref(&self) -> &[CommandRecord] {
        self.inner.as_ref().map_or(&[], |b| b.commands.as_slice())
    }
}

/// Single-borrow span emission guard (see [`Probe::batch`]). Emits
/// exactly what the equivalent sequence of [`Probe::span`] /
/// [`Probe::wait_spans`] calls would — same events, same summary — while
/// holding the bus borrow once across the run.
pub struct SpanBatch<'a> {
    bus: std::cell::RefMut<'a, ProbeBus>,
}

impl SpanBatch<'_> {
    /// Emit one span (see [`Probe::span`]).
    pub fn span(
        &mut self,
        layer: Layer,
        cause: Cause,
        resource: &str,
        start: SimTime,
        end: SimTime,
    ) {
        self.bus.push_span(layer, cause, resource, start, end);
    }

    /// Emit a decomposed wait interval (see [`Probe::wait_spans`]).
    pub fn wait_spans(
        &mut self,
        layer: Layer,
        resource: &str,
        from: SimTime,
        to: SimTime,
        blame: &[(Occupant, SimDuration)],
    ) {
        self.bus.push_wait_spans(layer, resource, from, to, blame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROSECOND;

    #[test]
    fn disabled_probe_is_inert() {
        let p = Probe::disabled();
        assert!(!p.is_enabled());
        let scope = p.open_command("read", SimTime::ZERO);
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(50),
        );
        scope.close(SimTime::from_micros(50));
        assert!(p.events().is_empty());
        assert!(p.summary().by_layer_cause.is_empty());
    }

    #[test]
    fn spans_attribute_to_open_command() {
        let p = Probe::recording();
        let scope = p.open_command("read", SimTime::ZERO);
        let id = scope.id();
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(50),
        );
        scope.close(SimTime::from_micros(50));
        let spans = p.command_spans(id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), MICROSECOND * 50);
        assert_eq!(p.summary().commands.get("read"), Some(&1));
    }

    #[test]
    fn nested_open_joins_outer_command() {
        let p = Probe::recording();
        let outer = p.open_command("write", SimTime::ZERO);
        let inner = p.open_command("ssd_write", SimTime::ZERO);
        assert_eq!(inner.id(), outer.id());
        p.span(
            Layer::Flash,
            Cause::CellProgram,
            "chip1",
            SimTime::ZERO,
            SimTime::from_micros(200),
        );
        inner.close(SimTime::from_micros(200));
        // inner close must not close the outer command
        p.span(
            Layer::Block,
            Cause::Overhead,
            "",
            SimTime::from_micros(200),
            SimTime::from_micros(201),
        );
        let id = outer.id();
        outer.close(SimTime::from_micros(201));
        assert_eq!(p.command_spans(id).len(), 2);
        assert_eq!(p.summary().commands.len(), 1);
    }

    #[test]
    fn background_spans_are_unattributed() {
        let p = Probe::recording();
        let scope = p.open_command("write", SimTime::ZERO);
        p.enter_background();
        p.span(
            Layer::Flash,
            Cause::CellErase,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(2000),
        );
        p.exit_background();
        let id = scope.id();
        scope.close(SimTime::from_micros(10));
        assert!(p.command_spans(id).is_empty());
        // ...but still aggregated
        assert_eq!(
            p.summary().cause_total(Cause::CellErase),
            MICROSECOND * 2000
        );
    }

    #[test]
    fn wait_spans_tile_interval() {
        let p = Probe::recording();
        let scope = p.open_command("read", SimTime::ZERO);
        let blame = [
            (Occupant::Gc, MICROSECOND * 3),
            (Occupant::Host, MICROSECOND * 2),
        ];
        p.wait_spans(
            Layer::Flash,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(5),
            &blame,
        );
        let id = scope.id();
        scope.close(SimTime::from_micros(5));
        let spans = p.command_spans(id);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].cause, Cause::GcStall);
        assert_eq!(spans[1].cause, Cause::Queue);
        let total: SimDuration = spans
            .iter()
            .map(SpanEvent::duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, MICROSECOND * 5);
    }

    #[test]
    fn dropped_scope_aborts_command() {
        let p = Probe::recording();
        {
            let _scope = p.open_command("write", SimTime::ZERO);
            // error path: scope dropped without close
        }
        assert!(p.commands().is_empty());
        // the bus is reusable afterwards
        let scope = p.open_command("read", SimTime::ZERO);
        assert!(scope.id() > 0);
        scope.close(SimTime::from_micros(1));
        assert_eq!(p.summary().commands.get("read"), Some(&1));
    }

    #[test]
    fn background_guard_restores_depth() {
        let p = Probe::recording();
        let scope = p.open_command("write", SimTime::ZERO);
        {
            let _bg = p.background();
            p.span(
                Layer::Flash,
                Cause::CellProgram,
                "chip0",
                SimTime::ZERO,
                SimTime::from_micros(1),
            );
        }
        p.span(
            Layer::Controller,
            Cause::Overhead,
            "",
            SimTime::from_micros(1),
            SimTime::from_micros(2),
        );
        let id = scope.id();
        scope.close(SimTime::from_micros(2));
        // only the post-guard span is attributed
        assert_eq!(p.command_spans(id).len(), 1);
    }

    #[test]
    fn detach_resume_interleaves_commands() {
        let p = Probe::recording();
        // Command A: submit-path span, then detach.
        let a = p.open_command("read", SimTime::ZERO);
        let a_id = a.id();
        p.span(
            Layer::Block,
            Cause::Overhead,
            "",
            SimTime::ZERO,
            SimTime::from_micros(1),
        );
        let a_id2 = a.detach();
        assert_eq!(a_id, a_id2);
        // Command B runs while A is in flight.
        let b = p.open_command("write", SimTime::ZERO);
        let b_id = b.id();
        assert_ne!(a_id, b_id);
        p.span(
            Layer::Flash,
            Cause::CellProgram,
            "chip0",
            SimTime::from_micros(1),
            SimTime::from_micros(3),
        );
        let b_id2 = b.detach();
        assert_eq!(b_id, b_id2);
        // B completes first (out of submission order).
        let b = p.resume(b_id);
        p.span(
            Layer::Block,
            Cause::Overhead,
            "irq",
            SimTime::from_micros(3),
            SimTime::from_micros(4),
        );
        b.close(SimTime::from_micros(4));
        // Then A.
        let a = p.resume(a_id);
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip1",
            SimTime::from_micros(1),
            SimTime::from_micros(6),
        );
        a.close(SimTime::from_micros(6));
        assert_eq!(p.command_span_count(a_id), 2);
        assert_eq!(p.command_span_count(b_id), 2);
        assert_eq!(p.command_spans(a_id).len(), 2);
        assert_eq!(p.command_spans(b_id).len(), 2);
        assert_eq!(p.summary().commands.get("read"), Some(&1));
        assert_eq!(p.summary().commands.get("write"), Some(&1));
    }

    #[test]
    fn detach_resume_noop_when_disabled() {
        let p = Probe::disabled();
        let s = p.open_command("read", SimTime::ZERO);
        let id = s.detach();
        assert_eq!(id, 0);
        let s = p.resume(id);
        s.close(SimTime::from_micros(1));
        assert_eq!(p.command_span_count(0), 0);
    }

    #[test]
    fn aggregated_mode_matches_recording_summary() {
        let mk = |p: &Probe| {
            let scope = p.open_command("read", SimTime::ZERO);
            p.span(
                Layer::Flash,
                Cause::CellRead,
                "chip0",
                SimTime::ZERO,
                SimTime::from_micros(50),
            );
            p.span(
                Layer::Channel,
                Cause::Transfer,
                "chan0",
                SimTime::from_micros(50),
                SimTime::from_micros(60),
            );
            scope.close(SimTime::from_micros(60));
            let bg = p.background();
            p.span(
                Layer::Flash,
                Cause::CellErase,
                "chip0",
                SimTime::from_micros(60),
                SimTime::from_micros(2060),
            );
            drop(bg);
        };
        let rec = Probe::recording();
        let agg = Probe::aggregated();
        mk(&rec);
        mk(&agg);
        assert_eq!(rec.summary(), agg.summary());
        assert_eq!(rec.summary().to_json(), agg.summary().to_json());
        // aggregated mode drops the closed record but keeps the count
        assert!(agg.commands().is_empty());
        assert_eq!(agg.summary().commands.get("read"), Some(&1));
    }

    #[test]
    fn aggregated_resource_totals() {
        let p = Probe::aggregated();
        let scope = p.open_command("read", SimTime::ZERO);
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip1",
            SimTime::ZERO,
            SimTime::from_micros(50),
        );
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip0",
            SimTime::from_micros(50),
            SimTime::from_micros(80),
        );
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip1",
            SimTime::from_micros(80),
            SimTime::from_micros(90),
        );
        scope.close(SimTime::from_micros(90));
        let rs = p.resource_summary();
        assert_eq!(rs.len(), 2);
        // sorted by (layer, cause, resource name), not first-seen order
        assert_eq!(rs[0].resource, "chip0");
        assert_eq!(rs[0].count, 1);
        assert_eq!(rs[0].total, MICROSECOND * 30);
        assert_eq!(rs[1].resource, "chip1");
        assert_eq!(rs[1].count, 2);
        assert_eq!(rs[1].total, MICROSECOND * 60);
        // recording mode leaves it empty
        assert!(Probe::recording().resource_summary().is_empty());
    }

    #[test]
    fn batch_emits_like_individual_calls() {
        let a = Probe::recording();
        let b = Probe::recording();
        let blame = [
            (Occupant::Gc, MICROSECOND * 3),
            (Occupant::Host, MICROSECOND * 2),
        ];
        let sa = a.open_command("read", SimTime::ZERO);
        a.span(
            Layer::Channel,
            Cause::Command,
            "chan0",
            SimTime::ZERO,
            SimTime::from_micros(1),
        );
        a.wait_spans(
            Layer::Flash,
            "chip0",
            SimTime::from_micros(1),
            SimTime::from_micros(6),
            &blame,
        );
        sa.close(SimTime::from_micros(6));
        let sb = b.open_command("read", SimTime::ZERO);
        {
            let mut batch = b.batch().expect("enabled probe");
            batch.span(
                Layer::Channel,
                Cause::Command,
                "chan0",
                SimTime::ZERO,
                SimTime::from_micros(1),
            );
            batch.wait_spans(
                Layer::Flash,
                "chip0",
                SimTime::from_micros(1),
                SimTime::from_micros(6),
                &blame,
            );
        }
        sb.close(SimTime::from_micros(6));
        assert_eq!(a.events(), b.events());
        assert_eq!(a.summary(), b.summary());
        assert!(Probe::disabled().batch().is_none());
    }

    #[test]
    fn borrowed_accessors_match_clones() {
        let p = Probe::recording();
        let scope = p.open_command("write", SimTime::ZERO);
        p.span(
            Layer::Flash,
            Cause::CellProgram,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(200),
        );
        scope.close(SimTime::from_micros(200));
        assert_eq!(&*p.events_ref(), p.events().as_slice());
        assert_eq!(&*p.commands_ref(), p.commands().as_slice());
        let d = Probe::disabled();
        assert!(d.events_ref().is_empty());
        assert!(d.commands_ref().is_empty());
    }

    #[test]
    fn aggregated_detach_resume_still_tracks() {
        let p = Probe::aggregated();
        let a = p.open_command("read", SimTime::ZERO);
        let a_id = a.detach();
        let b = p.open_command("write", SimTime::ZERO);
        p.span(
            Layer::Flash,
            Cause::CellProgram,
            "chip0",
            SimTime::ZERO,
            SimTime::from_micros(2),
        );
        b.close(SimTime::from_micros(2));
        // closing B swap-removed its record; A must still resume cleanly
        let a = p.resume(a_id);
        p.span(
            Layer::Flash,
            Cause::CellRead,
            "chip1",
            SimTime::from_micros(2),
            SimTime::from_micros(5),
        );
        a.close(SimTime::from_micros(5));
        assert_eq!(p.summary().commands.get("read"), Some(&1));
        assert_eq!(p.summary().commands.get("write"), Some(&1));
        assert!(p.commands().is_empty());
    }

    #[test]
    fn summary_json_shape() {
        let p = Probe::new();
        let scope = p.open_command("read", SimTime::ZERO);
        p.span(
            Layer::Channel,
            Cause::Transfer,
            "chan0",
            SimTime::ZERO,
            SimTime::from_micros(100),
        );
        scope.close(SimTime::from_micros(100));
        let json = p.summary().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"commands\":{\"read\":1}"));
        assert!(json.contains("\"layer\":\"channel\""));
        assert!(json.contains("\"cause\":\"transfer\""));
        assert!(json.contains("\"total_ns\":100000"));
    }
}
