//! Serial resource timelines.
//!
//! A [`Resource`] models anything that executes one operation at a time: a
//! flash channel (one command/data transfer in flight), a LUN (one chip
//! operation in flight — the paper's unit of operation interleaving), a CPU
//! core, or a lock. Callers *reserve* an interval; the resource grants the
//! earliest start not before the requested time and not before all earlier
//! grants have finished (FIFO, non-preemptive).
//!
//! The timeline model makes the paper's Figure 1 notions precise:
//!
//! * a workload is **channel-bound** when the channel resource's busy time
//!   dominates the makespan, and
//! * **chip-bound** when LUN resources dominate.
//!
//! [`Resource::utilization`] reports exactly this.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Who a (tagged) grant on a resource belongs to. Used to *blame* queueing
/// delay: when a later reservation waits, the wait interval is decomposed
/// by the occupants that held the resource during it, which is how a host
/// read stalled behind a GC erase gets its latency attributed to a
/// GC-stall span on the observability bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Occupant {
    /// Host-issued traffic (also the default for untagged reservations).
    Host,
    /// Garbage collection.
    Gc,
    /// Wear leveling.
    Wear,
    /// FTL merge (hybrid log merge, replacement-block finalize).
    Merge,
    /// Mapping-translation traffic (e.g. DFTL page reads/writes).
    Translation,
    /// Error-recovery traffic (read-retry ladders, ECC escalation,
    /// parity-rebuild reads, salvage relocations).
    Recovery,
}

/// How many recent tagged grants a tracking resource retains for blame
/// decomposition. Waits only ever overlap the most recent grants (FIFO
/// timeline), so a small window is exact in practice; anything older is
/// attributed to generic queueing.
const OCCUPANT_WINDOW: usize = 128;

/// A serial (one-op-at-a-time), FIFO, non-preemptive resource timeline.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name (shows up in Gantt charts and debug output).
    name: String,
    /// Earliest instant a new reservation may begin.
    next_free: SimTime,
    /// Total time the resource has been occupied by grants.
    busy: SimDuration,
    /// Number of grants made.
    grants: u64,
    /// End of the last grant (== `next_free`, kept for clarity in stats).
    last_end: SimTime,
    /// Recent grants `(start, end, occupant)` for blame decomposition;
    /// empty unless [`Resource::track_occupants`] enabled tracking.
    recent: VecDeque<(SimTime, SimTime, Occupant)>,
    /// Whether reservations are recorded into `recent`.
    tracking: bool,
}

/// A granted reservation on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the operation starts on the resource.
    pub start: SimTime,
    /// When the operation finishes and the resource becomes free.
    pub end: SimTime,
}

impl Grant {
    /// Time spent waiting for the resource before the operation began.
    #[inline]
    pub fn queue_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.since(requested_at)
    }

    /// Service duration of the grant itself.
    #[inline]
    pub fn service(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

impl Resource {
    /// Create an idle resource, free from `t = 0`.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            grants: 0,
            last_end: SimTime::ZERO,
            recent: VecDeque::new(),
            tracking: false,
        }
    }

    /// Enable (or disable) occupant tracking for blame decomposition.
    /// Off by default: the tracking ring buffer costs a push per grant,
    /// which untraced hot paths should not pay.
    pub fn track_occupants(&mut self, on: bool) {
        self.tracking = on;
        if !on {
            self.recent.clear();
        }
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Earliest instant at which a new reservation could start.
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Reserve `duration` of exclusive time, starting no earlier than `not_before`.
    ///
    /// Returns the granted `[start, end)` interval. The start is
    /// `max(not_before, next_free)` — FIFO with respect to all previous
    /// reservations on this resource.
    pub fn reserve(&mut self, not_before: SimTime, duration: SimDuration) -> Grant {
        self.reserve_tagged(not_before, duration, Occupant::Host)
    }

    /// [`reserve`](Self::reserve), recording `occupant` as the owner of
    /// the granted interval (when tracking is enabled) so later waiters
    /// can attribute their queueing delay via [`blame`](Self::blame).
    pub fn reserve_tagged(
        &mut self,
        not_before: SimTime,
        duration: SimDuration,
        occupant: Occupant,
    ) -> Grant {
        let start = not_before.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        self.last_end = end;
        self.busy += duration;
        self.grants += 1;
        if self.tracking {
            if self.recent.len() == OCCUPANT_WINDOW {
                self.recent.pop_front();
            }
            self.recent.push_back((start, end, occupant));
        }
        Grant { start, end }
    }

    /// Decompose the wait interval `[requested_at, granted_start)` by the
    /// occupants that held this resource during it. Returns per-occupant
    /// durations summing exactly to the wait; time not covered by a
    /// tracked grant (tracking off, window overflow, idle gaps in a
    /// multi-resource wait) is attributed to [`Occupant::Host`] queueing.
    ///
    /// Call *before* reserving the waiting operation itself, or the
    /// waiter's own grant will not perturb the result anyway (it starts
    /// at `granted_start`, outside the decomposed interval).
    pub fn blame(
        &self,
        requested_at: SimTime,
        granted_start: SimTime,
    ) -> Vec<(Occupant, SimDuration)> {
        let mut out = Vec::new();
        self.blame_into(requested_at, granted_start, &mut out);
        out
    }

    /// [`blame`](Self::blame) into a caller-owned scratch buffer (cleared
    /// first), so per-wait decomposition on the scheduler hot path reuses
    /// one allocation instead of building a fresh `Vec` per query.
    ///
    /// The grant window is FIFO, so both starts and ends are
    /// nondecreasing: the scan binary-searches to the first grant ending
    /// inside the wait and stops at the first one starting past it,
    /// touching only the overlapping grants instead of the whole window.
    /// Occupants appear in order of their first overlapping grant —
    /// identical to the full linear scan.
    pub fn blame_into(
        &self,
        requested_at: SimTime,
        granted_start: SimTime,
        out: &mut Vec<(Occupant, SimDuration)>,
    ) {
        out.clear();
        if granted_start <= requested_at {
            return;
        }
        let mut covered = SimDuration::ZERO;
        // first grant with end > requested_at (ends are nondecreasing)
        let first = self.recent.partition_point(|&(_, e, _)| e <= requested_at);
        for &(s, e, occ) in self.recent.iter().skip(first) {
            if s >= granted_start {
                break; // starts are nondecreasing: nothing later overlaps
            }
            // overlap of [s, e) with [requested_at, granted_start)
            let lo = s.max(requested_at);
            let hi = e.min(granted_start);
            if hi > lo {
                let d = hi.since(lo);
                covered += d;
                match out.iter_mut().find(|(o, _)| *o == occ) {
                    Some((_, acc)) => *acc += d,
                    None => out.push((occ, d)),
                }
            }
        }
        let wait = granted_start.since(requested_at);
        if wait > covered {
            let rest = wait - covered;
            match out.iter_mut().find(|(o, _)| *o == Occupant::Host) {
                Some((_, acc)) => *acc += rest,
                None => out.push((Occupant::Host, rest)),
            }
        }
    }

    /// Reserve time that must start *exactly* when the resource next frees,
    /// at or after `not_before` (identical to [`reserve`](Self::reserve);
    /// provided for call-site readability when chaining pipelined stages).
    #[inline]
    pub fn reserve_after(&mut self, not_before: SimTime, duration: SimDuration) -> Grant {
        self.reserve(not_before, duration)
    }

    /// Would-be grant if we reserved now — without committing. Used by
    /// schedulers comparing candidate resources (e.g. least-loaded LUN).
    pub fn peek(&self, not_before: SimTime, duration: SimDuration) -> Grant {
        let start = not_before.max(self.next_free);
        Grant {
            start,
            end: start + duration,
        }
    }

    /// Total busy time granted so far.
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of grants made so far.
    #[inline]
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Utilization over the window `[0, horizon]`: busy time / horizon.
    ///
    /// Returns 0.0 for a zero horizon. Values can exceed 1.0 only if the
    /// caller passes a horizon earlier than the last grant end — pass the
    /// makespan (or [`Resource::next_free`]) for a sound figure.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.as_nanos() == 0 {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / horizon.as_nanos() as f64
    }

    /// Reset the timeline to idle at t = 0, clearing statistics.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.busy = SimDuration::ZERO;
        self.grants = 0;
        self.last_end = SimTime::ZERO;
        self.recent.clear();
    }
}

/// A bank of identical serial resources with helpers for least-loaded and
/// round-robin selection (e.g. "the 16 LUNs of a channel", "8 CPU cores").
#[derive(Debug, Clone)]
pub struct ResourceBank {
    members: Vec<Resource>,
    rr_next: usize,
}

impl ResourceBank {
    /// Create `n` resources named `{prefix}{index}`.
    pub fn new(prefix: &str, n: usize) -> Self {
        ResourceBank {
            members: (0..n)
                .map(|i| Resource::new(format!("{prefix}{i}")))
                .collect(),
            rr_next: 0,
        }
    }

    /// Number of member resources.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the bank has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Access a member by index.
    pub fn get(&self, idx: usize) -> &Resource {
        &self.members[idx]
    }

    /// Mutable access to a member by index.
    pub fn get_mut(&mut self, idx: usize) -> &mut Resource {
        &mut self.members[idx]
    }

    /// Iterate over members.
    pub fn iter(&self) -> impl Iterator<Item = &Resource> {
        self.members.iter()
    }

    /// Index of the member that could start a `duration` reservation soonest.
    /// Ties break toward the lowest index (determinism).
    pub fn least_loaded(&self, not_before: SimTime, duration: SimDuration) -> usize {
        let mut best = 0usize;
        let mut best_start = SimTime::MAX;
        for (i, r) in self.members.iter().enumerate() {
            let g = r.peek(not_before, duration);
            if g.start < best_start {
                best_start = g.start;
                best = i;
            }
        }
        best
    }

    /// Next index in round-robin order (advances internal cursor).
    pub fn round_robin(&mut self) -> usize {
        let i = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.members.len().max(1);
        i
    }

    /// The latest `next_free` across members — when the whole bank drains.
    pub fn drain_time(&self) -> SimTime {
        self.members
            .iter()
            .map(|r| r.next_free())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Mean utilization across members at `horizon`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members
            .iter()
            .map(|r| r.utilization(horizon))
            .sum::<f64>()
            / self.members.len() as f64
    }

    /// Reset all members.
    pub fn reset(&mut self) {
        for r in &mut self.members {
            r.reset();
        }
        self.rr_next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MICROSECOND;

    #[test]
    fn fifo_ordering() {
        let mut r = Resource::new("chan");
        let g1 = r.reserve(SimTime::ZERO, MICROSECOND * 10);
        let g2 = r.reserve(SimTime::ZERO, MICROSECOND * 5);
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g1.end, SimTime::from_micros(10));
        // second op must wait for first even though requested at t=0
        assert_eq!(g2.start, SimTime::from_micros(10));
        assert_eq!(g2.end, SimTime::from_micros(15));
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut r = Resource::new("lun");
        r.reserve(SimTime::ZERO, MICROSECOND * 2);
        // arrives later, leaving a gap [2µs, 10µs)
        let g = r.reserve(SimTime::from_micros(10), MICROSECOND * 3);
        assert_eq!(g.start, SimTime::from_micros(10));
        assert_eq!(r.busy_time(), MICROSECOND * 5);
        let horizon = r.next_free();
        let util = r.utilization(horizon);
        assert!((util - 5.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_commit() {
        let mut r = Resource::new("x");
        let p = r.peek(SimTime::ZERO, MICROSECOND);
        assert_eq!(p.start, SimTime::ZERO);
        assert_eq!(r.grant_count(), 0);
        assert_eq!(r.next_free(), SimTime::ZERO);
        r.reserve(SimTime::ZERO, MICROSECOND);
        assert_eq!(r.grant_count(), 1);
    }

    #[test]
    fn grant_delay_and_service() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, MICROSECOND * 4);
        let g = r.reserve(SimTime::from_micros(1), MICROSECOND * 2);
        assert_eq!(g.queue_delay(SimTime::from_micros(1)), MICROSECOND * 3);
        assert_eq!(g.service(), MICROSECOND * 2);
    }

    #[test]
    fn bank_least_loaded_prefers_idle() {
        let mut b = ResourceBank::new("lun", 3);
        b.get_mut(0).reserve(SimTime::ZERO, MICROSECOND * 10);
        b.get_mut(1).reserve(SimTime::ZERO, MICROSECOND * 4);
        let pick = b.least_loaded(SimTime::ZERO, MICROSECOND);
        assert_eq!(pick, 2); // idle one wins
    }

    #[test]
    fn bank_least_loaded_tie_breaks_low_index() {
        let b = ResourceBank::new("lun", 4);
        assert_eq!(b.least_loaded(SimTime::ZERO, MICROSECOND), 0);
    }

    #[test]
    fn bank_round_robin_wraps() {
        let mut b = ResourceBank::new("c", 3);
        assert_eq!(
            (0..7).map(|_| b.round_robin()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn drain_time_is_latest_free() {
        let mut b = ResourceBank::new("c", 2);
        b.get_mut(0).reserve(SimTime::ZERO, MICROSECOND * 7);
        b.get_mut(1).reserve(SimTime::ZERO, MICROSECOND * 3);
        assert_eq!(b.drain_time(), SimTime::from_micros(7));
    }

    #[test]
    fn blame_decomposes_wait_by_occupant() {
        let mut r = Resource::new("lun");
        r.track_occupants(true);
        // GC erase occupies [0, 2ms)
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 2000, Occupant::Gc);
        // host op arrives at 0.5ms, waits until 2ms
        let req = SimTime::from_micros(500);
        let g = r.peek(req, MICROSECOND * 50);
        let blame = r.blame(req, g.start);
        assert_eq!(blame, vec![(Occupant::Gc, MICROSECOND * 1500)]);
        let total: SimDuration = blame
            .iter()
            .map(|&(_, d)| d)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, g.start.since(req));
    }

    #[test]
    fn blame_mixes_occupants_and_residual() {
        let mut r = Resource::new("lun");
        r.track_occupants(true);
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 10, Occupant::Host);
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 30, Occupant::Merge);
        // waiter arrives at 5µs; resource busy until 40µs
        let req = SimTime::from_micros(5);
        let blame = r.blame(req, SimTime::from_micros(40));
        let host = blame
            .iter()
            .find(|(o, _)| *o == Occupant::Host)
            .map(|&(_, d)| d);
        let merge = blame
            .iter()
            .find(|(o, _)| *o == Occupant::Merge)
            .map(|&(_, d)| d);
        assert_eq!(host, Some(MICROSECOND * 5));
        assert_eq!(merge, Some(MICROSECOND * 30));
    }

    #[test]
    fn blame_without_tracking_is_generic_queueing() {
        let mut r = Resource::new("lun");
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 10, Occupant::Gc);
        let blame = r.blame(SimTime::ZERO, SimTime::from_micros(10));
        assert_eq!(blame, vec![(Occupant::Host, MICROSECOND * 10)]);
    }

    #[test]
    fn blame_empty_for_no_wait() {
        let mut r = Resource::new("x");
        r.track_occupants(true);
        r.reserve(SimTime::ZERO, MICROSECOND);
        assert!(r
            .blame(SimTime::from_micros(5), SimTime::from_micros(5))
            .is_empty());
    }

    #[test]
    fn blame_into_reuses_scratch_and_matches_blame() {
        let mut r = Resource::new("lun");
        r.track_occupants(true);
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 10, Occupant::Host);
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 30, Occupant::Merge);
        r.reserve_tagged(SimTime::ZERO, MICROSECOND * 5, Occupant::Gc);
        let mut scratch = vec![(Occupant::Wear, MICROSECOND)]; // stale content
        for (req, grant) in [(0u64, 45u64), (5, 40), (12, 45), (41, 45), (50, 50)] {
            let req = SimTime::from_micros(req);
            let grant = SimTime::from_micros(grant);
            r.blame_into(req, grant, &mut scratch);
            assert_eq!(scratch, r.blame(req, grant), "req={req} grant={grant}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, MICROSECOND);
        r.reset();
        assert_eq!(r.next_free(), SimTime::ZERO);
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.grant_count(), 0);
    }
}
