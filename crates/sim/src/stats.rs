//! Measurement collection: latency histograms, counters, summaries.
//!
//! The histogram uses HDR-style log-linear bucketing: values are grouped by
//! power-of-two magnitude, each magnitude subdivided into 16 linear
//! sub-buckets. This gives ≤ 6.25 % relative error on percentile extraction
//! across the full `u64` range with a small constant footprint — accurate
//! enough to distinguish a 50 µs read from a 3 ms erase-stalled read by
//! orders of magnitude, which is what the paper's myth 3 requires.

use std::fmt;

use crate::time::SimDuration;

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 16
const MAGNITUDES: usize = 64;
const BUCKETS: usize = MAGNITUDES * SUB_BUCKETS;

/// A log-linear histogram over `u64` values (typically nanoseconds).
///
/// Equality is exact bucket-state equality: two histograms compare equal
/// iff they recorded the same multiset of values — what the database
/// layer's QD-1 identity tests assert.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // floor(log2(value)) >= 4
        let shift = magnitude - SUB_BUCKET_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        ((magnitude - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value for a bucket index.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let magnitude = (idx / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
        let sub = (idx % SUB_BUCKETS) as u64;
        let base = 1u64 << magnitude;
        let step = 1u64 << (magnitude - SUB_BUCKET_BITS);
        base + sub * step
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a duration (nanoseconds).
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of recorded values (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (exact). Zero if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact). Zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]` (bucket lower bound; ≤ 6.25 % relative
    /// error). Zero if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // clamp to true extrema for exactness at the edges
                return Self::bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand: median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand: 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Shorthand: 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Condensed summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean: self.mean(),
            min: self.min(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

/// A condensed latency summary (all values in the recorded unit, typically ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            SimDuration::from_nanos(self.mean as u64),
            SimDuration::from_nanos(self.p50),
            SimDuration::from_nanos(self.p95),
            SimDuration::from_nanos(self.p99),
            SimDuration::from_nanos(self.max),
        )
    }
}

/// A labelled monotonically-increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

/// Welford online mean/variance accumulator for f64 series (used for
/// utilization and amplification factors where histograms are overkill).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_small_values_exact() {
        for v in 0..16u64 {
            let idx = Histogram::bucket_index(v);
            assert_eq!(Histogram::bucket_floor(idx), v);
        }
    }

    #[test]
    fn bucket_floor_within_relative_error() {
        for &v in &[17u64, 100, 1_000, 50_000, 3_000_000, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // next bucket's floor must be above v
            let next = Histogram::bucket_floor(idx + 1);
            assert!(next > v, "next floor {next} <= value {v}");
            // relative error bound 1/16
            assert!((v - floor) as f64 / v as f64 <= 1.0 / 16.0 + 1e-12);
        }
    }

    #[test]
    fn quantiles_of_uniform_sequence() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((450..=550).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((930..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn bimodal_distribution_separates() {
        // 99 fast reads at 50µs + 1 erase-stalled read at 3ms:
        // p50 must stay ~50µs, max must report ~3ms. This is the exact
        // shape myth 3 depends on.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(50_000);
        }
        h.record(3_000_000);
        assert!(h.p50() < 60_000);
        assert_eq!(h.max(), 3_000_000);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merged_quantiles_equal_rerecorded_quantiles() {
        // E13 combines per-txn-class histograms (read-only + update)
        // with merge() instead of re-recording samples; the merged
        // histogram must be bucket-for-bucket what recording the union
        // would have produced — quantiles, mean, extrema, equality.
        let fast: Vec<u64> = (0..600).map(|i| 40_000 + i * 37).collect();
        let slow: Vec<u64> = (0..60).map(|i| 2_500_000 + i * 11_113).collect();
        let mut a = Histogram::new();
        for &v in &fast {
            a.record(v);
        }
        let mut b = Histogram::new();
        for &v in &slow {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut union = Histogram::new();
        for &v in fast.iter().chain(&slow) {
            union.record(v);
        }
        assert_eq!(merged, union, "merge must equal re-recording the union");
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), union.quantile(q), "quantile {q}");
        }
        assert_eq!(merged.count(), 660);
        assert_eq!(merged.min(), union.min());
        assert_eq!(merged.max(), union.max());
        assert!((merged.mean() - union.mean()).abs() < 1e-9);
        // the bimodal split survives the merge: median stays in the fast
        // mode, p99 lands in the slow mode
        assert!(merged.p50() < 100_000);
        assert!(merged.p99() >= 2_500_000);
    }

    #[test]
    fn per_shard_merge_equals_whole_run_quantiles() {
        // The shard coordinator records latencies into per-shard
        // histograms (samples hash-partitioned exactly like the
        // keyspace, `key % N`) and merges them for the run report. For
        // any shard count the merged quantiles must equal what one
        // whole-run histogram would have reported.
        let samples: Vec<u64> = (0..4096u64)
            .map(|i| 30_000 + (i * 2_654_435_761 % 5_000_000))
            .collect();
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        for n in [2usize, 4, 8] {
            let mut shards = vec![Histogram::new(); n];
            for (i, &v) in samples.iter().enumerate() {
                shards[i % n].record(v);
            }
            let mut merged = Histogram::new();
            for h in &shards {
                merged.merge(h);
            }
            assert_eq!(merged, whole, "{n}-way shard merge must equal whole-run");
            for q in [0.5, 0.9, 0.99, 0.999] {
                assert_eq!(
                    merged.quantile(q),
                    whole.quantile(q),
                    "{n} shards: quantile {q}"
                );
            }
            assert_eq!(merged.count(), whole.count());
            assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(77);
        a.merge(&b);
        assert_eq!(a, b, "empty.merge(x) == x");
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "x.merge(empty) is a no-op");
    }

    #[test]
    fn quantile_extremes_clamped_to_true_min_max() {
        let mut h = Histogram::new();
        h.record(123_456);
        assert_eq!(h.quantile(0.0), 123_456);
        assert_eq!(h.quantile(1.0), 123_456);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.clear();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.record(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
    }
}
