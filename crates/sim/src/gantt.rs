//! Span recording and ASCII Gantt rendering.
//!
//! The paper's Figure 1 is a timing diagram: four chips on one shared
//! channel, reads serialized on the channel (channel-bound) versus writes
//! overlapping on chips (chip-bound). [`Gantt`] records labelled spans per
//! lane and renders them as a textual chart so experiment binaries can
//! regenerate the figure directly in a terminal / markdown code block.

use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// One labelled interval on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Lane (row) this span belongs to, e.g. `"chip2"` or `"channel"`.
    pub lane: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Single-character glyph used when rendering (e.g. `T` transfer, `R` read).
    pub glyph: char,
    /// Free-form annotation.
    pub label: String,
}

/// A recorder of spans across named lanes, renderable as ASCII art.
#[derive(Debug, Default, Clone)]
pub struct Gantt {
    spans: Vec<Span>,
    lane_order: Vec<String>,
}

impl Gantt {
    /// New, empty chart.
    pub fn new() -> Self {
        Gantt::default()
    }

    /// Record a span. Lanes appear in first-recorded order.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        start: SimTime,
        end: SimTime,
        glyph: char,
        label: impl Into<String>,
    ) {
        let lane = lane.into();
        if !self.lane_order.contains(&lane) {
            self.lane_order.push(lane.clone());
        }
        self.spans.push(Span {
            lane,
            start,
            end,
            glyph,
            label: label.into(),
        });
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Latest end across spans (the makespan).
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time on one lane.
    pub fn lane_busy(&self, lane: &str) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.lane == lane)
            .map(|s| s.end.since(s.start))
            .sum()
    }

    /// Render as ASCII rows, `width` characters of timeline per row.
    ///
    /// Each lane becomes one row; spans are drawn with their glyph,
    /// overlapping spans on a lane overwrite left-to-right (lanes fed from a
    /// serial [`crate::Resource`] never overlap). A time axis is appended.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let makespan = self.makespan().as_nanos().max(1);
        let width = width.max(10);
        let name_w = self
            .lane_order
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let scale = |t: SimTime| -> usize {
            ((t.as_nanos() as u128 * width as u128) / makespan as u128) as usize
        };
        for lane in &self.lane_order {
            let mut row = vec![' '; width + 1];
            for s in self.spans.iter().filter(|s| &s.lane == lane) {
                let a = scale(s.start).min(width);
                let b = scale(s.end).min(width).max(a + 1);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = s.glyph;
                }
            }
            let _ = writeln!(
                out,
                "{lane:<name_w$} |{}|",
                row.into_iter().collect::<String>()
            );
        }
        // time axis
        let total = SimDuration::from_nanos(makespan);
        let _ = writeln!(
            out,
            "{:<name_w$} 0{}^ (makespan {})",
            "",
            " ".repeat(width.saturating_sub(1)),
            total
        );
        out
    }

    /// Shift every span so `origin` becomes time zero (for rendering a
    /// measurement window that started mid-run). Spans beginning before
    /// `origin` are clamped to zero.
    pub fn rebase(&mut self, origin: SimTime) {
        for s in &mut self.spans {
            let start = s.start.as_nanos().saturating_sub(origin.as_nanos());
            let end = s.end.as_nanos().saturating_sub(origin.as_nanos());
            s.start = SimTime::from_nanos(start);
            s.end = SimTime::from_nanos(end.max(start));
        }
    }

    /// Clear recorded spans (lane order is also reset).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.lane_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_lanes() {
        let mut g = Gantt::new();
        g.record("chip1", SimTime::ZERO, SimTime::from_micros(2), 'R', "read");
        g.record(
            "channel",
            SimTime::ZERO,
            SimTime::from_micros(1),
            'T',
            "xfer",
        );
        g.record(
            "chip1",
            SimTime::from_micros(3),
            SimTime::from_micros(4),
            'R',
            "read",
        );
        assert_eq!(g.spans().len(), 3);
        assert_eq!(g.makespan(), SimTime::from_micros(4));
        assert_eq!(g.lane_busy("chip1"), SimDuration::from_micros(3));
    }

    #[test]
    fn render_contains_lanes_and_glyphs() {
        let mut g = Gantt::new();
        g.record(
            "chipA",
            SimTime::ZERO,
            SimTime::from_micros(5),
            'P',
            "program",
        );
        g.record("chanX", SimTime::ZERO, SimTime::from_micros(1), 'T', "xfer");
        let art = g.render(40);
        assert!(art.contains("chipA"));
        assert!(art.contains("chanX"));
        assert!(art.contains('P'));
        assert!(art.contains('T'));
        assert!(art.contains("makespan"));
    }

    #[test]
    fn render_scales_span_lengths() {
        let mut g = Gantt::new();
        // long span should paint many more cells than a short one
        g.record("long", SimTime::ZERO, SimTime::from_micros(10), 'L', "");
        g.record("short", SimTime::ZERO, SimTime::from_micros(1), 'S', "");
        let art = g.render(100);
        let longs = art.matches('L').count();
        let shorts = art.matches('S').count();
        assert!(longs >= 8 * shorts, "longs={longs} shorts={shorts}");
    }

    #[test]
    fn empty_chart_renders() {
        let g = Gantt::new();
        let art = g.render(20);
        assert!(art.contains("makespan"));
    }

    #[test]
    fn clear_resets() {
        let mut g = Gantt::new();
        g.record("a", SimTime::ZERO, SimTime::from_micros(1), 'x', "");
        g.clear();
        assert!(g.spans().is_empty());
        assert_eq!(g.makespan(), SimTime::ZERO);
    }
}
