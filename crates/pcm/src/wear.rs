//! Start-Gap wear leveling.
//!
//! PCM supports in-place updates, so no FTL mapping is needed for
//! correctness — but hot lines would wear out early without leveling.
//! Start-Gap (Qureshi et al., MICRO 2009) is the canonical scheme: keep one
//! spare line (the *gap*); every `gap_interval` writes, move the gap one
//! slot (copying the displaced line into the old gap). Over time every
//! logical line slowly rotates through every physical slot, spreading wear,
//! with O(1) state: the algebraic map needs only `start` and `gap`.
//!
//! This is a deliberately different mechanism from a flash FTL: it
//! demonstrates the paper's §2.4 point that PCM devices still embed
//! management logic, just lighter-weight.

use serde::{Deserialize, Serialize};

/// Start-Gap remapper over `n` logical lines (using `n + 1` physical slots).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StartGap {
    /// Number of logical lines.
    n: u64,
    /// Physical slot currently holding logical line 0 ("start").
    start: u64,
    /// Physical slot currently unused (the gap).
    gap: u64,
    /// Writes since the last gap move.
    writes_since_move: u64,
    /// Gap moves every this many writes.
    gap_interval: u64,
    /// Total gap moves performed (each costs one line copy).
    moves: u64,
}

impl StartGap {
    /// Create a remapper for `n` logical lines, rotating the gap every
    /// `gap_interval` writes (the literature uses 100).
    ///
    /// # Panics
    /// Panics if `n == 0` or `gap_interval == 0`.
    pub fn new(n: u64, gap_interval: u64) -> Self {
        assert!(n > 0, "need at least one line");
        assert!(gap_interval > 0, "gap interval must be positive");
        StartGap {
            n,
            start: 0,
            gap: n, // gap starts at the spare slot at the end
            writes_since_move: 0,
            gap_interval,
            moves: 0,
        }
    }

    /// Number of logical lines.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false (n > 0 enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Physical slot for a logical line (Qureshi et al.'s formulation):
    /// `pa = (la + start) mod n`, then skip over the gap slot.
    pub fn map(&self, logical: u64) -> u64 {
        debug_assert!(logical < self.n, "logical line out of range");
        let pa = (logical + self.start) % self.n;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Record one write. Returns `Some((from_slot, to_slot))` when the gap
    /// moves and the caller must copy the displaced line's data from
    /// `from_slot` to `to_slot`.
    pub fn on_write(&mut self) -> Option<(u64, u64)> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.gap_interval {
            return None;
        }
        self.writes_since_move = 0;
        self.moves += 1;
        let copy;
        if self.gap == 0 {
            // wrap: the line in the last slot moves into slot 0, the gap
            // jumps to the top, and the whole array has rotated one step
            copy = (self.n, 0);
            self.gap = self.n;
            self.start = (self.start + 1) % self.n;
        } else {
            // move the line just below the gap up into the gap
            copy = (self.gap - 1, self.gap);
            self.gap -= 1;
        }
        Some(copy)
    }

    /// Total gap moves so far (each is one extra line write of overhead).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Write-overhead ratio of the scheme: extra writes per user write
    /// (`1 / gap_interval` asymptotically).
    pub fn overhead_ratio(&self) -> f64 {
        1.0 / self.gap_interval as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn initial_map_is_identity() {
        let sg = StartGap::new(8, 100);
        for i in 0..8 {
            assert_eq!(sg.map(i), i);
        }
    }

    #[test]
    fn map_is_injective_after_any_number_of_moves() {
        let mut sg = StartGap::new(16, 1); // move gap on every write
        for step in 0..200 {
            let mut seen = HashSet::new();
            for i in 0..16 {
                let p = sg.map(i);
                assert!(p < 17, "slot out of range");
                assert_ne!(p, sg.gap, "mapped into the gap at step {step}");
                assert!(seen.insert(p), "collision at step {step}");
            }
            sg.on_write();
        }
    }

    #[test]
    fn gap_move_returns_copy_instruction() {
        let mut sg = StartGap::new(4, 2);
        assert_eq!(sg.on_write(), None);
        let mv = sg.on_write().expect("second write moves gap");
        // gap was at slot 4; line in slot 3 moves into 4
        assert_eq!(mv, (3, 4));
        assert_eq!(sg.moves(), 1);
    }

    #[test]
    fn lines_rotate_over_time() {
        // after n+1 gap rotations every line has moved one slot
        let n = 8u64;
        let mut sg = StartGap::new(n, 1);
        let before: Vec<u64> = (0..n).map(|i| sg.map(i)).collect();
        for _ in 0..(n + 1) {
            sg.on_write();
        }
        let after: Vec<u64> = (0..n).map(|i| sg.map(i)).collect();
        assert_ne!(before, after, "rotation should change the mapping");
        // every logical line still maps somewhere unique
        let set: HashSet<_> = after.iter().collect();
        assert_eq!(set.len(), n as usize);
    }

    #[test]
    fn wear_spreads_across_slots() {
        // hammer a single logical line; with gap moving every write the
        // physical slot it lands on must change over time
        let mut sg = StartGap::new(8, 1);
        let mut slots = HashSet::new();
        for _ in 0..100 {
            slots.insert(sg.map(0));
            sg.on_write();
        }
        assert!(slots.len() >= 8, "hot line only hit {} slots", slots.len());
    }

    #[test]
    fn overhead_ratio_matches_interval() {
        let sg = StartGap::new(8, 100);
        assert!((sg.overhead_ratio() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need at least one line")]
    fn zero_lines_rejected() {
        StartGap::new(0, 100);
    }
}
