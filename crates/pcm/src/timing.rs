//! PCM latency parameters.
//!
//! Figures follow the characterization literature the paper cites (Condit
//! et al. SOSP'09; Chen/Gibbons/Nath CIDR'11): array reads near DRAM speed,
//! writes several times slower due to the thermal SET/RESET process, and a
//! large read/write asymmetry. All values are per 64-byte line.

use requiem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Latency/endurance model for a PCM array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcmTiming {
    /// Read one 64 B line.
    pub read_line: SimDuration,
    /// Write (SET/RESET) one 64 B line.
    pub write_line: SimDuration,
    /// Cost of a persist barrier (flush + fence) beyond the line writes.
    pub persist_barrier: SimDuration,
    /// Rated writes per line before wear-out.
    pub endurance_writes: u64,
}

impl PcmTiming {
    /// Baseline first-generation PCM (c. 2012): 85 ns read, 350 ns write,
    /// 10⁸ write endurance.
    pub fn gen1() -> Self {
        PcmTiming {
            read_line: SimDuration::from_nanos(85),
            write_line: SimDuration::from_nanos(350),
            persist_barrier: SimDuration::from_nanos(100),
            endurance_writes: 100_000_000,
        }
    }

    /// Optimistic projected PCM (the paper's "PCM promises to keep
    /// improving"): 60 ns read, 150 ns write.
    pub fn projected() -> Self {
        PcmTiming {
            read_line: SimDuration::from_nanos(60),
            write_line: SimDuration::from_nanos(150),
            persist_barrier: SimDuration::from_nanos(80),
            endurance_writes: 1_000_000_000,
        }
    }

    /// Zero-latency model: every access is free and endurance is
    /// unbounded. Used by tests that want PCM as a pure *ordering* device
    /// (e.g. proving a zero-cost `PcmWal` is an ordering identity for the
    /// immediate-commit flash path).
    pub fn zero() -> Self {
        PcmTiming {
            read_line: SimDuration::ZERO,
            write_line: SimDuration::ZERO,
            persist_barrier: SimDuration::ZERO,
            endurance_writes: u64::MAX,
        }
    }

    /// Time to read `n` lines back-to-back.
    pub fn read_lines(&self, n: u64) -> SimDuration {
        self.read_line * n
    }

    /// Time to write `n` lines back-to-back.
    pub fn write_lines(&self, n: u64) -> SimDuration {
        self.write_line * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_write_slower_than_read() {
        for t in [PcmTiming::gen1(), PcmTiming::projected()] {
            assert!(t.write_line > t.read_line);
        }
    }

    #[test]
    fn pcm_much_faster_than_flash_page_ops() {
        // the premise of P1: a sync log write to PCM beats a flash program
        // by orders of magnitude
        let t = PcmTiming::gen1();
        let log_record = t.write_lines(2) + t.persist_barrier; // 128 B record
        assert!(log_record < SimDuration::from_micros(2));
    }

    #[test]
    fn bulk_scaling_linear() {
        let t = PcmTiming::gen1();
        assert_eq!(t.read_lines(10), SimDuration::from_nanos(850));
        assert_eq!(t.write_lines(4), SimDuration::from_nanos(1_400));
    }
}
