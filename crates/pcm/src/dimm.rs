//! The memory-bus persistence path.
//!
//! *"There is a large consensus that PCM chips should be directly plugged
//! onto the memory bus (because PCM is byte addressable and exhibits low
//! latency)."* (§2.4)
//!
//! [`PcmDimm`] models that path: CPU stores land in a (volatile) write
//! queue for free; **persistence** requires an explicit `persist` — flush
//! the touched lines and fence — whose cost is `lines × write_line +
//! barrier`. This is the synchronous-persistence primitive the vision's
//! principle P1 routes log writes and buffer steals to, and the substrate
//! `requiem-db`'s `VisionBackend` logs into.
//!
//! Start-Gap wear leveling runs underneath, so the DIMM survives hot spots
//! (a WAL head is the textbook hot spot).

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Histogram, Resource};
use serde::{Deserialize, Serialize};

use crate::chip::PcmChip;
use crate::timing::PcmTiming;
use crate::wear::StartGap;
use crate::LINE_BYTES;

/// A typed snapshot of the DIMM's wear state: per-line write counts plus
/// the Start-Gap rotation bookkeeping. This is the public face of wear for
/// experiments (E15's wear table) and future endurance studies — callers
/// never reach into [`PcmChip`] or [`StartGap`] internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WearSnapshot {
    /// Logical lines in the DIMM (physical slots = `lines + 1` for the gap).
    pub lines: u64,
    /// Total line writes the chip absorbed (user writes + gap-move copies).
    pub total_line_writes: u64,
    /// Hottest physical slot's write count.
    pub max_line_writes: u64,
    /// Mean write count across physical slots.
    pub mean_line_writes: f64,
    /// Start-Gap rotations performed (each is one extra line copy).
    pub gap_moves: u64,
    /// Asymptotic extra-writes-per-user-write of the leveling scheme.
    pub gap_overhead_ratio: f64,
    /// Write count per *physical* slot, including the gap spare.
    pub per_line_writes: Vec<u64>,
}

impl WearSnapshot {
    /// Max/mean wear skew; 1.0 would be perfectly level. 0 when unwritten.
    pub fn skew(&self) -> f64 {
        if self.mean_line_writes == 0.0 {
            0.0
        } else {
            self.max_line_writes as f64 / self.mean_line_writes
        }
    }
}

/// A byte-addressable persistent memory module on the memory bus.
pub struct PcmDimm {
    chip: PcmChip,
    remap: StartGap,
    /// The DIMM's array is serial per rank; one rank modelled.
    rank: Resource,
    persist_lat: Histogram,
    persisted_bytes: u64,
}

impl std::fmt::Debug for PcmDimm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmDimm")
            .field("lines", &self.remap.len())
            .field("persisted_bytes", &self.persisted_bytes)
            .finish()
    }
}

impl PcmDimm {
    /// Create a DIMM with `capacity_bytes` of PCM (rounded up to lines).
    /// `gap_interval` is the Start-Gap rotation period (100 is standard).
    pub fn new(capacity_bytes: u64, timing: PcmTiming, gap_interval: u64) -> Self {
        let lines = capacity_bytes.div_ceil(LINE_BYTES as u64).max(1);
        PcmDimm {
            // +1 spare slot for the start-gap gap
            chip: PcmChip::new(lines + 1, timing),
            remap: StartGap::new(lines, gap_interval),
            rank: Resource::new("pcm-rank"),
            persist_lat: Histogram::new(),
            persisted_bytes: 0,
        }
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.remap.len() * LINE_BYTES as u64
    }

    /// Load `len` bytes at `offset`. Returns `(completion_time, data)`.
    ///
    /// # Panics
    /// Panics if the range exceeds capacity.
    pub fn load(&mut self, now: SimTime, offset: u64, len: usize) -> (SimTime, Vec<u8>) {
        assert!(
            offset + len as u64 <= self.capacity_bytes(),
            "load beyond capacity"
        );
        let mut out = Vec::with_capacity(len);
        let mut t = now;
        let first = offset / LINE_BYTES as u64;
        let last = (offset + len as u64 - 1) / LINE_BYTES as u64;
        for line in first..=last {
            let slot = self.remap.map(line);
            let (acc, bytes) = self.chip.read_line(slot);
            let g = self.rank.reserve(t, acc.duration);
            t = g.end;
            let line_start = line * LINE_BYTES as u64;
            let from = offset.max(line_start) - line_start;
            let to = ((offset + len as u64).min(line_start + LINE_BYTES as u64)) - line_start;
            out.extend_from_slice(&bytes[from as usize..to as usize]);
        }
        (t, out)
    }

    /// Store + persist `data` at `offset`: write the touched lines through
    /// to the array and fence. Returns the instant at which the data is
    /// durable. This is the synchronous path — the caller (e.g. a commit)
    /// blocks until the returned time.
    ///
    /// # Panics
    /// Panics if the range exceeds capacity.
    pub fn persist(&mut self, now: SimTime, offset: u64, data: &[u8]) -> SimTime {
        assert!(
            offset + data.len() as u64 <= self.capacity_bytes(),
            "persist beyond capacity"
        );
        if data.is_empty() {
            return now;
        }
        let mut t = now;
        let first = offset / LINE_BYTES as u64;
        let last = (offset + data.len() as u64 - 1) / LINE_BYTES as u64;
        for line in first..=last {
            let slot = self.remap.map(line);
            // read-modify-write for partial lines
            let (_, mut bytes) = self.chip.read_line(slot);
            let line_start = line * LINE_BYTES as u64;
            let from = offset.max(line_start);
            let to = (offset + data.len() as u64).min(line_start + LINE_BYTES as u64);
            for b in from..to {
                bytes[(b - line_start) as usize] = data[(b - offset) as usize];
            }
            let acc = self.chip.write_line(slot, &bytes);
            let g = self.rank.reserve(t, acc.duration);
            t = g.end;
            // wear leveling bookkeeping
            if let Some((from_slot, to_slot)) = self.remap.on_write() {
                let d = self.chip.copy_line(from_slot, to_slot);
                let g = self.rank.reserve(t, d);
                t = g.end;
            }
        }
        let barrier = self.chip.timing().persist_barrier;
        let g = self.rank.reserve(t, barrier);
        t = g.end;
        self.persist_lat.record_duration(t.since(now));
        self.persisted_bytes += data.len() as u64;
        t
    }

    /// Latency distribution of `persist` calls.
    pub fn persist_latency(&self) -> &Histogram {
        &self.persist_lat
    }

    /// Total bytes persisted.
    pub fn persisted_bytes(&self) -> u64 {
        self.persisted_bytes
    }

    /// Maximum per-line write count (wear-leveling effectiveness metric).
    pub fn max_line_writes(&self) -> u64 {
        self.chip.max_line_writes()
    }

    /// Mean per-line write count.
    pub fn mean_line_writes(&self) -> f64 {
        self.chip.mean_line_writes()
    }

    /// Typed wear snapshot: per-line writes + Start-Gap rotation state.
    pub fn wear_snapshot(&self) -> WearSnapshot {
        let per_line = self.chip.line_write_counts().to_vec();
        WearSnapshot {
            lines: self.remap.len(),
            total_line_writes: self.chip.op_counts().1,
            max_line_writes: self.chip.max_line_writes(),
            mean_line_writes: self.chip.mean_line_writes(),
            gap_moves: self.remap.moves(),
            gap_overhead_ratio: self.remap.overhead_ratio(),
            per_line_writes: per_line,
        }
    }

    /// Typical cost of persisting `bytes` (no queueing): lines × write + barrier.
    pub fn persist_cost(&self, bytes: u64) -> SimDuration {
        let lines = bytes.div_ceil(LINE_BYTES as u64);
        self.chip.timing().write_lines(lines) + self.chip.timing().persist_barrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dimm() -> PcmDimm {
        PcmDimm::new(64 * 1024, PcmTiming::gen1(), 100)
    }

    #[test]
    fn persist_then_load_roundtrips() {
        let mut d = dimm();
        let data = b"commit record 00042".to_vec();
        let t1 = d.persist(SimTime::ZERO, 100, &data);
        assert!(t1 > SimTime::ZERO);
        let (_, got) = d.load(t1, 100, data.len());
        assert_eq!(got, data);
    }

    #[test]
    fn unaligned_writes_preserve_neighbours() {
        let mut d = dimm();
        d.persist(SimTime::ZERO, 0, &[0xAA; 128]);
        // overwrite bytes 60..70 (straddles a line boundary)
        d.persist(SimTime::ZERO, 60, &[0xBB; 10]);
        let (_, got) = d.load(SimTime::ZERO, 0, 128);
        assert_eq!(&got[..60], &[0xAA; 60][..]);
        assert_eq!(&got[60..70], &[0xBB; 10][..]);
        assert_eq!(&got[70..], &[0xAA; 58][..]);
    }

    #[test]
    fn persist_latency_is_sub_microsecond_for_log_records() {
        // P1's premise: a 128-byte log record persists in ~1µs, vs
        // hundreds of µs for a flash program
        let mut d = dimm();
        let t = d.persist(SimTime::ZERO, 0, &[1u8; 128]);
        let lat = t.since(SimTime::ZERO);
        assert!(lat < SimDuration::from_micros(3), "persist took {lat}");
        assert!(lat >= SimDuration::from_nanos(700)); // 2 writes + barrier
    }

    #[test]
    fn persist_cost_formula() {
        let d = dimm();
        let c = d.persist_cost(128);
        let t = PcmTiming::gen1();
        assert_eq!(c, t.write_lines(2) + t.persist_barrier);
    }

    #[test]
    fn wear_leveling_spreads_hot_offset() {
        // hammer one offset (a WAL head); with start-gap the max line wear
        // must stay well below the total write count
        let mut d = PcmDimm::new(4096, PcmTiming::gen1(), 4);
        let writes = 4_000u64;
        let mut t = SimTime::ZERO;
        for _ in 0..writes {
            t = d.persist(t, 0, &[7u8; 64]);
        }
        let max = d.max_line_writes();
        assert!(
            max < writes / 2,
            "wear not levelled: max {max} of {writes} writes"
        );
    }

    #[test]
    fn serial_rank_queues_concurrent_persists() {
        let mut d = dimm();
        // two "threads" persist at the same instant; second must queue
        let t1 = d.persist(SimTime::ZERO, 0, &[1u8; 64]);
        let t2 = d.persist(SimTime::ZERO, 4096, &[2u8; 64]);
        assert!(t2 > t1);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dimm();
        d.persist(SimTime::ZERO, 0, &[0u8; 64]);
        d.persist(SimTime::ZERO, 64, &[0u8; 64]);
        assert_eq!(d.persisted_bytes(), 128);
        assert_eq!(d.persist_latency().count(), 2);
    }

    #[test]
    fn wear_snapshot_is_consistent_with_chip_state() {
        let mut d = PcmDimm::new(4096, PcmTiming::gen1(), 4);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t = d.persist(t, 0, &[7u8; 64]);
        }
        let snap = d.wear_snapshot();
        assert_eq!(snap.lines, 64);
        assert_eq!(snap.per_line_writes.len(), 65); // + gap spare
        assert_eq!(snap.max_line_writes, d.max_line_writes());
        assert_eq!(
            snap.per_line_writes.iter().sum::<u64>(),
            snap.total_line_writes
        );
        // 100 user writes at interval 4 → 25 gap moves, each one copy write
        assert_eq!(snap.gap_moves, 25);
        assert_eq!(snap.total_line_writes, 125);
        assert!(snap.skew() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "persist beyond capacity")]
    fn persist_out_of_range_panics() {
        let mut d = PcmDimm::new(128, PcmTiming::gen1(), 100);
        d.persist(SimTime::ZERO, 100, &[0u8; 64]);
    }
}
