//! A PCM-based SSD (the paper's ref [1], Onyx-style).
//!
//! §2.4: *"even if we contemplate pure PCM-based SSDs, the issues of
//! parallelism, wear leveling and error management will likely introduce
//! significant complexity. Also, PCM-based SSDs will not make the issues of
//! low latency and high-parallelism disappear."*
//!
//! [`PcmSsd`] makes that concrete: PCM banks behind shared channels, pages
//! striped across banks, Start-Gap wear leveling per bank. There is no FTL
//! mapping (in-place updates), no garbage collection, no erase — yet the
//! device still has queueing at channels and banks, still needs scheduling
//! to reach nominal bandwidth, and still wears. Experiment E10 compares
//! this against a flash SSD.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Histogram, Resource, ResourceBank};
use serde::{Deserialize, Serialize};

use crate::timing::PcmTiming;
use crate::wear::StartGap;
use crate::LINE_BYTES;

/// Configuration of a PCM SSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcmSsdConfig {
    /// Independent channels to the banks.
    pub channels: u32,
    /// PCM banks per channel.
    pub banks_per_channel: u32,
    /// Page (request) size in bytes.
    pub page_size: u32,
    /// Pages per bank.
    pub pages_per_bank: u64,
    /// Channel transfer time per page (PCIe-class link per lane).
    pub transfer_per_page: SimDuration,
    /// Array timing.
    pub timing: PcmTiming,
    /// Start-Gap rotation interval (writes per gap move).
    pub gap_interval: u64,
}

impl PcmSsdConfig {
    /// A small Onyx-like device: 4 channels × 4 banks, 4 KiB pages.
    pub fn small() -> Self {
        PcmSsdConfig {
            channels: 4,
            banks_per_channel: 4,
            page_size: 4096,
            pages_per_bank: 4096,
            transfer_per_page: SimDuration::from_micros(2),
            timing: PcmTiming::gen1(),
            gap_interval: 100,
        }
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.pages_per_bank * self.channels as u64 * self.banks_per_channel as u64
    }

    /// Lines per page.
    pub fn lines_per_page(&self) -> u64 {
        (self.page_size as u64).div_ceil(LINE_BYTES as u64)
    }
}

/// Completion information for one I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcmIoDone {
    /// When the I/O completed.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
}

struct Bank {
    remap: StartGap,
    writes: Vec<u64>,
}

/// A PCM storage array behind a block-style page interface.
pub struct PcmSsd {
    cfg: PcmSsdConfig,
    channels: ResourceBank,
    banks: Vec<Resource>, // serial array access per bank
    bank_state: Vec<Bank>,
    read_lat: Histogram,
    write_lat: Histogram,
    reads: u64,
    writes: u64,
}

impl std::fmt::Debug for PcmSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmSsd")
            .field("channels", &self.cfg.channels)
            .field("banks", &self.banks.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl PcmSsd {
    /// Build a device from a config.
    pub fn new(cfg: PcmSsdConfig) -> Self {
        let nbanks = (cfg.channels * cfg.banks_per_channel) as usize;
        let bank_state = (0..nbanks)
            .map(|_| Bank {
                remap: StartGap::new(cfg.pages_per_bank, cfg.gap_interval),
                writes: vec![0; cfg.pages_per_bank as usize + 1],
            })
            .collect();
        PcmSsd {
            channels: ResourceBank::new("pcm-chan", cfg.channels as usize),
            banks: (0..nbanks)
                .map(|i| Resource::new(format!("pcm-bank{i}")))
                .collect(),
            bank_state,
            cfg,
            read_lat: Histogram::new(),
            write_lat: Histogram::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PcmSsdConfig {
        &self.cfg
    }

    /// Pages addressable.
    pub fn total_pages(&self) -> u64 {
        self.cfg.total_pages()
    }

    /// Static striping: page → (bank, page-in-bank). Stripes across
    /// channels first so consecutive pages use different channels.
    fn locate(&self, page: u64) -> (usize, u64) {
        let nbanks = self.banks.len() as u64;
        let bank = (page % nbanks) as usize;
        let within = page / nbanks;
        (bank, within)
    }

    /// Array time for one page worth of lines.
    fn array_time(&self, write: bool) -> SimDuration {
        let lines = self.cfg.lines_per_page();
        if write {
            self.cfg.timing.write_lines(lines)
        } else {
            self.cfg.timing.read_lines(lines)
        }
    }

    /// Read one page.
    ///
    /// # Panics
    /// Panics if `page` is out of range.
    pub fn read_page(&mut self, now: SimTime, page: u64) -> PcmIoDone {
        assert!(page < self.total_pages(), "page out of range");
        let (bank, _within) = self.locate(page);
        let chan = bank % self.channels.len();
        // command + array read, then transfer out on the channel
        let at = self.array_time(false);
        let array = self.banks[bank].reserve(now, at);
        let xfer = self
            .channels
            .get_mut(chan)
            .reserve(array.end, self.cfg.transfer_per_page);
        self.reads += 1;
        let lat = xfer.end.since(now);
        self.read_lat.record_duration(lat);
        PcmIoDone {
            done: xfer.end,
            latency: lat,
        }
    }

    /// Write one page (in place; wear levelled by Start-Gap).
    ///
    /// # Panics
    /// Panics if `page` is out of range.
    pub fn write_page(&mut self, now: SimTime, page: u64) -> PcmIoDone {
        assert!(page < self.total_pages(), "page out of range");
        let (bank, within) = self.locate(page);
        let chan = bank % self.channels.len();
        // transfer in on the channel, then array write
        let xfer = self
            .channels
            .get_mut(chan)
            .reserve(now, self.cfg.transfer_per_page);
        let mut array_t = self.array_time(true);
        let state = &mut self.bank_state[bank];
        let slot = state.remap.map(within);
        state.writes[slot as usize] += 1;
        if state.remap.on_write().is_some() {
            // gap move: one page copy (read + write) of overhead
            array_t += self.cfg.timing.read_lines(self.cfg.lines_per_page())
                + self.cfg.timing.write_lines(self.cfg.lines_per_page());
        }
        let array = self.banks[bank].reserve(xfer.end, array_t);
        self.writes += 1;
        let lat = array.end.since(now);
        self.write_lat.record_duration(lat);
        PcmIoDone {
            done: array.end,
            latency: lat,
        }
    }

    /// Read-latency histogram.
    pub fn read_latency(&self) -> &Histogram {
        &self.read_lat
    }

    /// Write-latency histogram.
    pub fn write_latency(&self) -> &Histogram {
        &self.write_lat
    }

    /// Max page-slot write count across banks (wear metric).
    pub fn max_slot_writes(&self) -> u64 {
        self.bank_state
            .iter()
            .flat_map(|b| b.writes.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// When every queued operation has drained.
    pub fn drain_time(&self) -> SimTime {
        let banks = self
            .banks
            .iter()
            .map(|b| b.next_free())
            .fold(SimTime::ZERO, SimTime::max);
        banks.max(self.channels.drain_time())
    }

    /// `(reads, writes)` served.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> PcmSsd {
        PcmSsd::new(PcmSsdConfig::small())
    }

    #[test]
    fn single_read_latency_is_array_plus_transfer() {
        let mut s = ssd();
        let done = s.read_page(SimTime::ZERO, 0);
        let expect = s.array_time(false) + s.cfg.transfer_per_page;
        assert_eq!(done.latency, expect);
    }

    #[test]
    fn consecutive_pages_hit_different_banks() {
        let s = ssd();
        let (b0, _) = s.locate(0);
        let (b1, _) = s.locate(1);
        assert_ne!(b0, b1);
    }

    #[test]
    fn parallel_reads_across_banks_overlap() {
        let mut s = ssd();
        // 16 banks: 16 reads to distinct banks at t=0 mostly overlap
        let mut last = SimTime::ZERO;
        for p in 0..16 {
            let d = s.read_page(SimTime::ZERO, p);
            last = last.max(d.done);
        }
        let serial = (s.array_time(false) + s.cfg.transfer_per_page) * 16;
        assert!(
            last.since(SimTime::ZERO).as_nanos() < serial.as_nanos() / 2,
            "no parallelism: makespan {last}"
        );
    }

    #[test]
    fn same_bank_requests_serialize() {
        // pages p and p+16 share a bank (16 banks) — the paper's point
        // that PCM SSDs still queue
        let mut s = ssd();
        let a = s.read_page(SimTime::ZERO, 0);
        let b = s.read_page(SimTime::ZERO, 16);
        assert!(b.done > a.done);
        assert!(b.latency > a.latency);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut s = ssd();
        let r = s.read_page(SimTime::ZERO, 0);
        let w = s.write_page(SimTime::ZERO, 1);
        assert!(w.latency > r.latency);
    }

    #[test]
    fn wear_leveling_bounds_hot_page() {
        // small bank + aggressive gap interval so rotation sweeps the hot
        // slot many times within the test
        let mut cfg = PcmSsdConfig::small();
        cfg.pages_per_bank = 16;
        cfg.gap_interval = 4;
        let mut s = PcmSsd::new(cfg);
        let mut t = SimTime::ZERO;
        let n = 2_000u64;
        for _ in 0..n {
            let d = s.write_page(t, 0);
            t = d.done;
        }
        let max = s.max_slot_writes();
        assert!(
            max < n / 2,
            "start-gap should move the hot page: max={max} of {n}"
        );
    }

    #[test]
    fn op_counts_and_histograms() {
        let mut s = ssd();
        s.read_page(SimTime::ZERO, 0);
        s.write_page(SimTime::ZERO, 1);
        assert_eq!(s.op_counts(), (1, 1));
        assert_eq!(s.read_latency().count(), 1);
        assert_eq!(s.write_latency().count(), 1);
    }

    #[test]
    #[should_panic(expected = "page out of range")]
    fn out_of_range_read_panics() {
        let mut s = ssd();
        let total = s.total_pages();
        s.read_page(SimTime::ZERO, total);
    }
}
