//! # requiem-pcm — a phase-change memory model
//!
//! The paper (§2.4, §3) positions PCM as the technology that *changes the
//! nature of persistence*: byte-addressable, in-place updates, no erase, no
//! garbage collection — plugged **on the memory bus** and reached by CPU
//! loads/stores rather than I/O requests. Principle P1 of the paper's
//! vision routes *synchronous* persistence (log writes, buffer steals under
//! memory pressure) to exactly such a device.
//!
//! The paper is equally clear that PCM is not magic:
//!
//! * PCM writes are slower than reads and wear cells out (~10⁸ writes), so
//!   wear leveling is still needed — we implement **Start-Gap** wear
//!   leveling (Qureshi et al., MICRO 2009), the canonical low-overhead
//!   scheme.
//! * A PCM-based *SSD* (like Onyx, the paper's ref [1]) still faces
//!   parallelism, scheduling and error management: [`PcmSsd`] models that,
//!   and experiment E10 shows the complexity does not disappear.
//!
//! ## Components
//!
//! * [`PcmChip`] — cache-line-granular storage with per-line wear counts.
//! * [`StartGap`] — algebraic wear-leveling remapper (gap rotation).
//! * [`PcmDimm`] — the memory-bus path: load / store / persist-barrier
//!   timing, the substrate for the vision's synchronous persistence path.
//! * [`PcmSsd`] — a PCM storage array behind a PCIe-like interface with
//!   banks and channels (for the §2.4 "PCM SSDs stay complex" discussion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod dimm;
pub mod ssd;
pub mod timing;
pub mod wear;

pub use chip::PcmChip;
pub use dimm::{PcmDimm, WearSnapshot};
pub use ssd::PcmSsd;
pub use timing::PcmTiming;
pub use wear::StartGap;

/// Cache-line size in bytes — the PCM access granularity on the memory bus.
pub const LINE_BYTES: u32 = 64;
