//! The PCM chip: cache-line-granular storage with per-line wear.
//!
//! Contrast with flash ([`requiem_flash::Lun`]): **in-place updates, no
//! erase, byte addressability** — the properties the paper lists as
//! removing the need for copy-on-write and garbage collection. What
//! remains is write endurance, handled by [`crate::StartGap`] inside
//! higher-level devices.

use requiem_sim::time::SimDuration;

use crate::timing::PcmTiming;
use crate::LINE_BYTES;

/// Result of a PCM line access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcmAccess {
    /// Time the array is busy.
    pub duration: SimDuration,
    /// True if the accessed line has exceeded rated endurance (data is
    /// still returned — PCM fails progressively via stuck cells, which the
    /// on-chip error correction the paper mentions would mask until it
    /// can't; callers use this to retire regions).
    pub worn: bool,
}

/// A PCM array of `lines` 64-byte lines with data + wear tracking.
pub struct PcmChip {
    timing: PcmTiming,
    data: Vec<[u8; LINE_BYTES as usize]>,
    writes: Vec<u64>,
    total_reads: u64,
    total_writes: u64,
}

impl std::fmt::Debug for PcmChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmChip")
            .field("lines", &self.data.len())
            .field("reads", &self.total_reads)
            .field("writes", &self.total_writes)
            .finish()
    }
}

impl PcmChip {
    /// Create a zero-filled array of `lines` cache lines.
    pub fn new(lines: u64, timing: PcmTiming) -> Self {
        PcmChip {
            timing,
            data: vec![[0u8; LINE_BYTES as usize]; lines as usize],
            writes: vec![0; lines as usize],
            total_reads: 0,
            total_writes: 0,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.data.len() as u64
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.lines() * LINE_BYTES as u64
    }

    /// The timing model.
    pub fn timing(&self) -> &PcmTiming {
        &self.timing
    }

    /// Read one line.
    ///
    /// # Panics
    /// Panics if `line` is out of range.
    pub fn read_line(&mut self, line: u64) -> (PcmAccess, [u8; LINE_BYTES as usize]) {
        let idx = line as usize;
        self.total_reads += 1;
        (
            PcmAccess {
                duration: self.timing.read_line,
                worn: self.writes[idx] > self.timing.endurance_writes,
            },
            self.data[idx],
        )
    }

    /// Write one line **in place** (no erase needed — the PCM property the
    /// paper contrasts against flash C2/C3).
    ///
    /// # Panics
    /// Panics if `line` is out of range.
    pub fn write_line(&mut self, line: u64, bytes: &[u8; LINE_BYTES as usize]) -> PcmAccess {
        let idx = line as usize;
        self.data[idx] = *bytes;
        self.writes[idx] += 1;
        self.total_writes += 1;
        PcmAccess {
            duration: self.timing.write_line,
            worn: self.writes[idx] > self.timing.endurance_writes,
        }
    }

    /// Copy a line (used by Start-Gap gap moves).
    pub fn copy_line(&mut self, from: u64, to: u64) -> SimDuration {
        let bytes = self.data[from as usize];
        let r = self.timing.read_line;
        let w = self.write_line(to, &bytes).duration;
        r + w
    }

    /// Write count of one line (wear metric).
    pub fn line_writes(&self, line: u64) -> u64 {
        self.writes[line as usize]
    }

    /// Per-line write counts for every physical line (index = physical
    /// line number, including any spare the caller reserved).
    pub fn line_write_counts(&self) -> &[u64] {
        &self.writes
    }

    /// Maximum per-line write count.
    pub fn max_line_writes(&self) -> u64 {
        self.writes.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-line write count.
    pub fn mean_line_writes(&self) -> f64 {
        if self.writes.is_empty() {
            return 0.0;
        }
        self.writes.iter().map(|&w| w as f64).sum::<f64>() / self.writes.len() as f64
    }

    /// `(reads, writes)` performed.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.total_reads, self.total_writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> PcmChip {
        PcmChip::new(64, PcmTiming::gen1())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut c = chip();
        let mut line = [0u8; 64];
        line[0] = 0xDE;
        line[63] = 0xAD;
        c.write_line(7, &line);
        let (_, got) = c.read_line(7);
        assert_eq!(got, line);
    }

    #[test]
    fn in_place_update_no_erase_needed() {
        // the key contrast with flash C2: overwriting works directly
        let mut c = chip();
        c.write_line(3, &[1u8; 64]);
        c.write_line(3, &[2u8; 64]);
        let (_, got) = c.read_line(3);
        assert_eq!(got, [2u8; 64]);
        assert_eq!(c.line_writes(3), 2);
    }

    #[test]
    fn latencies_match_timing() {
        let mut c = chip();
        let w = c.write_line(0, &[0u8; 64]);
        assert_eq!(w.duration, PcmTiming::gen1().write_line);
        let (r, _) = c.read_line(0);
        assert_eq!(r.duration, PcmTiming::gen1().read_line);
    }

    #[test]
    fn wear_flag_raises_past_endurance() {
        let mut t = PcmTiming::gen1();
        t.endurance_writes = 5;
        let mut c = PcmChip::new(4, t);
        for _ in 0..5 {
            assert!(!c.write_line(0, &[0u8; 64]).worn);
        }
        assert!(c.write_line(0, &[0u8; 64]).worn);
        let (r, _) = c.read_line(0);
        assert!(r.worn);
    }

    #[test]
    fn copy_line_moves_data_and_costs_read_plus_write() {
        let mut c = chip();
        c.write_line(1, &[9u8; 64]);
        let d = c.copy_line(1, 2);
        assert_eq!(
            d,
            PcmTiming::gen1().read_line + PcmTiming::gen1().write_line
        );
        assert_eq!(c.read_line(2).1, [9u8; 64]);
    }

    #[test]
    fn wear_metrics() {
        let mut c = chip();
        c.write_line(0, &[0u8; 64]);
        c.write_line(0, &[0u8; 64]);
        c.write_line(1, &[0u8; 64]);
        assert_eq!(c.max_line_writes(), 2);
        assert!((c.mean_line_writes() - 3.0 / 64.0).abs() < 1e-12);
        assert_eq!(c.op_counts(), (0, 3));
    }
}
