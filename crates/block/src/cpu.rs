//! CPU cost model for the I/O submission and completion paths.
//!
//! Numbers follow published measurements of the Linux I/O path (Caulfield
//! et al. ASPLOS'12 — the paper's ref [7] — and the blk-mq work): a
//! legacy 2.6-era path spends several microseconds per I/O; the
//! streamlined path cuts that down to about a microsecond.

use requiem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-stage CPU costs of one I/O.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCosts {
    /// Syscall entry + buffer pinning + bio setup.
    pub submit: SimDuration,
    /// Work done while holding the request-queue lock (insert, merge
    /// check, dispatch). This is the contention window in single-queue
    /// mode.
    pub queue_lock: SimDuration,
    /// Driver doorbell / command ring write.
    pub doorbell: SimDuration,
    /// Hard interrupt entry/exit.
    pub interrupt: SimDuration,
    /// Context switch to resume the blocked issuer.
    pub context_switch: SimDuration,
    /// Completion-path bookkeeping (bio end, page unpin, wakeup).
    pub complete: SimDuration,
}

impl CpuCosts {
    /// The disk-era (pre-SSD) path: heavyweight, nobody cared — the
    /// device took 10 ms anyway.
    pub fn disk_era() -> Self {
        CpuCosts {
            submit: SimDuration::from_nanos(2_500),
            queue_lock: SimDuration::from_nanos(1_200),
            doorbell: SimDuration::from_nanos(400),
            interrupt: SimDuration::from_nanos(1_500),
            context_switch: SimDuration::from_nanos(2_000),
            complete: SimDuration::from_nanos(1_500),
        }
    }

    /// The streamlined SSD-era path (blk-mq-like).
    pub fn streamlined() -> Self {
        CpuCosts {
            submit: SimDuration::from_nanos(700),
            queue_lock: SimDuration::from_nanos(250),
            doorbell: SimDuration::from_nanos(150),
            interrupt: SimDuration::from_nanos(1_000),
            context_switch: SimDuration::from_nanos(1_300),
            complete: SimDuration::from_nanos(400),
        }
    }

    /// Total CPU time per I/O with interrupt completions.
    pub fn per_io_interrupt(&self) -> SimDuration {
        self.submit
            + self.queue_lock
            + self.doorbell
            + self.interrupt
            + self.context_switch
            + self.complete
    }

    /// CPU time per I/O on the submission side only (polling keeps the
    /// core busy for the device time as well, so "overhead" is submission
    /// + completion without interrupt/context switch).
    pub fn per_io_polling(&self) -> SimDuration {
        self.submit + self.queue_lock + self.doorbell + self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamlined_is_cheaper_everywhere() {
        let old = CpuCosts::disk_era();
        let new = CpuCosts::streamlined();
        assert!(new.submit < old.submit);
        assert!(new.queue_lock < old.queue_lock);
        assert!(new.per_io_interrupt() < old.per_io_interrupt());
    }

    #[test]
    fn polling_path_avoids_irq_and_switch() {
        let c = CpuCosts::streamlined();
        assert_eq!(
            c.per_io_interrupt() - c.per_io_polling(),
            c.interrupt + c.context_switch
        );
    }

    #[test]
    fn disk_era_is_several_microseconds() {
        let d = CpuCosts::disk_era().per_io_interrupt();
        assert!(d > SimDuration::from_micros(5) && d < SimDuration::from_micros(15));
    }
}
