//! A magnetic disk model — the device the block interface was built for.
//!
//! *"For the last thirty years, database systems have relied on magnetic
//! disks as secondary storage."* The disk's performance contract (huge
//! seek/rotation penalty, cheap sequential transfer) is what made the
//! block layer's design rational: spending CPU to sort requests
//! (elevator scheduling) pays for itself a thousandfold in saved seeks.
//! E9 contrasts this with SSDs, where the same machinery is overhead.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Histogram, Resource};
use serde::{Deserialize, Serialize};

/// Disk parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Addressable sectors (we use page-sized "sectors" of 4 KiB for
    /// comparability with the SSD experiments).
    pub sectors: u64,
    /// Minimum (track-to-track) seek.
    pub seek_min: SimDuration,
    /// Full-stroke seek.
    pub seek_full: SimDuration,
    /// Rotation period (7200 rpm → 8.33 ms).
    pub rotation: SimDuration,
    /// Sequential transfer rate, bytes per microsecond.
    pub transfer_bytes_per_us: u32,
    /// Sector (page) size in bytes.
    pub sector_bytes: u32,
}

impl DiskConfig {
    /// A 7200 rpm SATA disk of the paper's era.
    pub fn hdd_7200() -> Self {
        DiskConfig {
            sectors: 1 << 20, // 4 GiB at 4 KiB sectors
            seek_min: SimDuration::from_micros(500),
            seek_full: SimDuration::from_millis(16),
            rotation: SimDuration::from_micros(8_333),
            transfer_bytes_per_us: 150,
            sector_bytes: 4096,
        }
    }
}

/// Service order for a batch of requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeOrder {
    /// First-in, first-out (no scheduling).
    Fifo,
    /// Circular SCAN: serve in ascending sector order, then wrap.
    Cscan,
}

/// One spindle + head assembly with a deterministic mechanical model.
///
/// Rotation is modelled as half a revolution per random access (the
/// expectation) plus a deterministic sector-phase term, keeping runs
/// reproducible without an RNG.
pub struct Disk {
    cfg: DiskConfig,
    head: u64,
    arm: Resource,
    service_hist: Histogram,
    served: u64,
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("sectors", &self.cfg.sectors)
            .field("served", &self.served)
            .finish()
    }
}

impl Disk {
    /// New disk with the head parked at sector 0.
    pub fn new(cfg: DiskConfig) -> Self {
        Disk {
            cfg,
            head: 0,
            arm: Resource::new("disk-arm"),
            service_hist: Histogram::new(),
            served: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Mechanical service time to reach and transfer `sector` from the
    /// current head position.
    fn service_time(&self, sector: u64) -> SimDuration {
        let dist = self.head.abs_diff(sector);
        let seek = if dist <= 1 {
            // same or next sector: streaming, no head movement to pay
            SimDuration::ZERO
        } else {
            // seek ≈ min + (full − min) · sqrt(d / span): the classic
            // acceleration-limited seek curve
            let frac = (dist as f64 / self.cfg.sectors as f64).sqrt();
            self.cfg.seek_min + (self.cfg.seek_full - self.cfg.seek_min).mul_f64(frac)
        };
        // deterministic rotational delay: half a revolution on any seek,
        // zero when continuing sequentially
        let rot = if dist == 1 || dist == 0 {
            SimDuration::ZERO
        } else {
            self.cfg.rotation / 2
        };
        let transfer = SimDuration::from_nanos(
            (self.cfg.sector_bytes as u64 * 1_000).div_ceil(self.cfg.transfer_bytes_per_us as u64),
        );
        seek + rot + transfer
    }

    /// Serve one request FIFO; returns the completion instant.
    ///
    /// # Panics
    /// Panics if `sector` is out of range.
    pub fn serve(&mut self, now: SimTime, sector: u64) -> SimTime {
        assert!(sector < self.cfg.sectors, "sector out of range");
        let st = self.service_time(sector);
        let g = self.arm.reserve(now, st);
        self.head = sector;
        self.service_hist.record_duration(st);
        self.served += 1;
        g.end
    }

    /// Serve a batch of requests that are all pending at `now`, in the
    /// given order policy. Returns per-request completion times, in the
    /// *original* request order.
    pub fn serve_batch(
        &mut self,
        now: SimTime,
        sectors: &[u64],
        order: ServeOrder,
    ) -> Vec<SimTime> {
        let mut idx: Vec<usize> = (0..sectors.len()).collect();
        if order == ServeOrder::Cscan {
            // ascending from the current head position, then wrap
            let head = self.head;
            idx.sort_by_key(|&i| {
                let s = sectors[i];
                if s >= head {
                    (0, s)
                } else {
                    (1, s)
                }
            });
        }
        let mut done = vec![SimTime::ZERO; sectors.len()];
        for i in idx {
            done[i] = self.serve(now, sectors[i]);
        }
        done
    }

    /// Mean mechanical service time so far.
    pub fn mean_service(&self) -> SimDuration {
        SimDuration::from_nanos(self.service_hist.mean() as u64)
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// When the arm is next free.
    pub fn drain_time(&self) -> SimTime {
        self.arm.next_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskConfig::hdd_7200())
    }

    #[test]
    fn sequential_access_is_transfer_bound() {
        let mut d = disk();
        let t0 = d.serve(SimTime::ZERO, 0);
        let t1 = d.serve(t0, 1);
        // next sequential sector: no seek, no rotation — ~27µs transfer
        let dt = t1.since(t0);
        assert!(dt < SimDuration::from_micros(50), "sequential {dt}");
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut d = disk();
        let t0 = d.serve(SimTime::ZERO, 0);
        let t1 = d.serve(t0, 500_000);
        let dt = t1.since(t0);
        // half-stroke seek + half rotation ≈ 10+ ms
        assert!(dt > SimDuration::from_millis(5), "random {dt}");
    }

    #[test]
    fn random_vs_sequential_gap_is_orders_of_magnitude() {
        // the disk-era performance contract the paper says no longer holds
        let mut d = disk();
        let mut t = SimTime::ZERO;
        for s in 0..64 {
            t = d.serve(t, s);
        }
        let seq_mean = d.mean_service();
        let mut d = disk();
        let mut t = SimTime::ZERO;
        let mut s = 7u64;
        for _ in 0..64 {
            s = (s.wrapping_mul(999983)) % d.config().sectors;
            t = d.serve(t, s);
        }
        let rnd_mean = d.mean_service();
        assert!(
            rnd_mean.as_nanos() > 100 * seq_mean.as_nanos(),
            "seq {seq_mean} rnd {rnd_mean}"
        );
    }

    #[test]
    fn cscan_beats_fifo_on_random_batch() {
        let sectors: Vec<u64> = (0..32)
            .map(|i: u64| (i.wrapping_mul(654435761)) % (1 << 20))
            .collect();
        let mut fifo = disk();
        let f = fifo.serve_batch(SimTime::ZERO, &sectors, ServeOrder::Fifo);
        let mut cscan = disk();
        let c = cscan.serve_batch(SimTime::ZERO, &sectors, ServeOrder::Cscan);
        let f_last = f.iter().max().unwrap().as_nanos();
        let c_last = c.iter().max().unwrap().as_nanos();
        // rotation is not schedulable, so the elevator's win is bounded by
        // the seek share; require a clear (>=25%) improvement
        assert!(
            c_last * 4 < f_last * 3,
            "elevator should clearly beat FIFO: fifo {f_last} cscan {c_last}"
        );
    }

    #[test]
    fn batch_returns_original_order() {
        let mut d = disk();
        let sectors = vec![100u64, 5, 900];
        let done = d.serve_batch(SimTime::ZERO, &sectors, ServeOrder::Cscan);
        assert_eq!(done.len(), 3);
        // C-SCAN from head 0 serves 5, 100, 900; completions reflect that
        assert!(done[1] < done[0] && done[0] < done[2]);
    }

    #[test]
    #[should_panic(expected = "sector out of range")]
    fn out_of_range_panics() {
        disk().serve(SimTime::ZERO, u64::MAX);
    }
}
