//! The composed I/O stack: cores → queues → device → completions.
//!
//! Models the three block-layer design axes §2.2 names:
//!
//! * **queue structure** — one shared request queue (lock contention
//!   across cores) vs per-core queues (blk-mq);
//! * **completion mode** — interrupt (core freed during device time, pays
//!   IRQ + context switch) vs polling (core spins, no IRQ cost — the
//!   low-latency-networking technique P3 imports);
//! * **path cost** — disk-era vs streamlined CPU costs.
//!
//! Two host interfaces sit on top:
//!
//! * [`IoStack::submit`] — the serialized path: one command through the
//!   whole stack, completion observed before the next submit. This is
//!   the pre-queue-pair behaviour, preserved bit-for-bit.
//! * [`IoStack::submit_batch`] / [`IoStack::poll_completions`] — the
//!   queue-pair path: a batch of typed [`IoRequest`]s rings the doorbell
//!   once, up to the configured in-flight window of commands run on the
//!   device concurrently, and completions are reaped out of submission
//!   order from a per-core completion queue (interrupt coalescing: one
//!   IRQ + context switch per reap, not per command).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use requiem_sim::completion::{CompletionHeap, InflightWindow};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Histogram, Layer, Probe, Resource, ResourceBank};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendOp, CommandId, IoRequest, IoStatus, StorageBackend};
use crate::cpu::CpuCosts;

/// Request-queue structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueMode {
    /// One shared queue; every core serializes on its lock.
    Single,
    /// A queue per core (blk-mq): no cross-core contention.
    PerCore,
}

/// How completions reach the issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionMode {
    /// Device raises an interrupt; the core pays IRQ + context switch.
    Interrupt,
    /// The core polls: busy from doorbell to completion, no IRQ.
    Polling,
}

/// Default device-side in-flight window (queue depth) for the batch
/// path — NVMe-ish, deep enough to saturate a single channel.
pub const DEFAULT_INFLIGHT_WINDOW: usize = 16;

/// Stack configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Number of CPU cores submitting I/O.
    pub cores: u32,
    /// Queue structure.
    pub queue_mode: QueueMode,
    /// Completion mode.
    pub completion: CompletionMode,
    /// Per-stage CPU costs.
    pub cpu: CpuCosts,
}

impl StackConfig {
    /// Legacy single-queue, interrupt-driven, disk-era costs.
    pub fn legacy(cores: u32) -> Self {
        StackConfig {
            cores,
            queue_mode: QueueMode::Single,
            completion: CompletionMode::Interrupt,
            cpu: CpuCosts::disk_era(),
        }
    }

    /// Modern multi-queue, interrupt-driven, streamlined costs.
    pub fn blk_mq(cores: u32) -> Self {
        StackConfig {
            cores,
            queue_mode: QueueMode::PerCore,
            completion: CompletionMode::Interrupt,
            cpu: CpuCosts::streamlined(),
        }
    }

    /// Modern multi-queue with polling completions.
    pub fn polling(cores: u32) -> Self {
        StackConfig {
            completion: CompletionMode::Polling,
            ..Self::blk_mq(cores)
        }
    }
}

/// Completion of one I/O through the stack.
#[derive(Debug, Clone, Copy)]
pub struct StackCompletion {
    /// Host tag of the completed command.
    pub tag: CommandId,
    /// Instant the issuer observed completion.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Device-resident portion of the latency.
    pub device_time: SimDuration,
    /// CPU time charged to the issuing core.
    pub cpu_time: SimDuration,
    /// How the device fared: clean, recovered after retries, lost the
    /// data, or refused the command outright.
    pub status: IoStatus,
}

/// One command in flight between `submit_batch` and `poll_completions`:
/// the device has finished (or will finish) at `dev_done`, but the host
/// has not reaped it yet.
#[derive(Debug, Clone, Copy)]
struct Pending {
    tag: CommandId,
    probe_id: u64,
    submitted: SimTime,
    dev_done: SimTime,
    device_time: SimDuration,
    status: IoStatus,
}

/// Aggregated result of a stack run.
#[derive(Debug, Clone)]
pub struct StackReport {
    /// I/Os completed.
    pub ios: u64,
    /// I/Os per second of virtual time.
    pub iops: f64,
    /// Latency distribution.
    pub latency: Histogram,
    /// Mean share of end-to-end latency spent in software (1 − device/total).
    pub software_share: f64,
    /// Makespan of the run.
    pub makespan: SimDuration,
}

/// The composed stack over a backend.
pub struct IoStack<B: StorageBackend> {
    cfg: StackConfig,
    backend: B,
    cores: ResourceBank,
    queues: Vec<Resource>,
    probe: Probe,
    latency: Histogram,
    /// Accumulated device-side busy time across all completed I/Os.
    device_busy: SimDuration,
    /// Accumulated end-to-end latency across all completed I/Os.
    total_latency: SimDuration,
    ios: u64,
    /// Device-side in-flight windows for the queue-pair path, one per
    /// core: each submission context bounds its own outstanding
    /// commands, so shards on different cores throttle independently.
    windows: Vec<InflightWindow>,
    /// Per-core completion queues (queue-pair path).
    cqs: Vec<CompletionHeap<Pending>>,
    /// Auto-assigned host tags.
    next_tag: u64,
}

impl<B: StorageBackend> std::fmt::Debug for IoStack<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStack")
            .field("backend", &self.backend.label())
            .field("cores", &self.cfg.cores)
            .field("ios", &self.ios)
            .finish()
    }
}

impl<B: StorageBackend> IoStack<B> {
    /// Build a stack over `backend`.
    pub fn new(cfg: StackConfig, backend: B) -> Self {
        let nq = match cfg.queue_mode {
            QueueMode::Single => 1,
            QueueMode::PerCore => cfg.cores as usize,
        };
        let cqs = (0..cfg.cores as usize)
            .map(|_| CompletionHeap::new())
            .collect();
        let windows = (0..cfg.cores as usize)
            .map(|_| InflightWindow::new(DEFAULT_INFLIGHT_WINDOW))
            .collect();
        IoStack {
            cores: ResourceBank::new("core", cfg.cores as usize),
            queues: (0..nq).map(|i| Resource::new(format!("q{i}"))).collect(),
            cfg,
            backend,
            probe: Probe::disabled(),
            latency: Histogram::new(),
            device_busy: SimDuration::ZERO,
            total_latency: SimDuration::ZERO,
            ios: 0,
            windows,
            cqs,
            next_tag: 0,
        }
    }

    /// Set the device-side in-flight window (NVMe queue depth) used by
    /// the batch path. Call before submitting; defaults to
    /// [`DEFAULT_INFLIGHT_WINDOW`]. A window of 1 serializes the device
    /// exactly like [`IoStack::submit`].
    pub fn set_inflight_window(&mut self, depth: usize) {
        for w in self.windows.iter_mut() {
            *w = InflightWindow::new(depth);
        }
    }

    /// Set one core's in-flight window without touching the others —
    /// the sharded executor sizes each submission context to its own
    /// `concurrency + prefetch` population.
    pub fn set_core_inflight_window(&mut self, core: usize, depth: usize) {
        if let Some(w) = self.windows.get_mut(core) {
            *w = InflightWindow::new(depth);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Access the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. preconditioning).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Attach a cross-layer [`Probe`]: the stack opens one command per
    /// `submit` and emits `Block`-layer spans (submission-path CPU,
    /// queue-lock waits, doorbell, completion); the same probe is handed
    /// down to the backend so a self-reporting device (the SSD) fills in
    /// the device interval with its own controller/channel/flash spans.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.backend.attach_probe(probe.clone());
        self.probe = probe;
    }

    /// The attached probe (disabled by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Emit a wait span `[from, start)` (queueing on a software resource)
    /// followed by a busy span `[start, end)` of CPU-path overhead, into
    /// an already-open batch.
    fn batch_stage(
        batch: &mut requiem_sim::SpanBatch<'_>,
        res: &str,
        from: SimTime,
        start: SimTime,
        end: SimTime,
    ) {
        if start > from {
            batch.span(Layer::Block, Cause::Queue, res, from, start);
        }
        if end > start {
            batch.span(Layer::Block, Cause::Overhead, res, start, end);
        }
    }

    /// Emit the submit-path stage spans of one command — core slice,
    /// queue-lock slice, doorbell slice, and (batch path) SQ residency —
    /// through a single probe borrow instead of up to eight.
    #[allow(clippy::too_many_arguments)]
    fn span_submit_stages(
        &self,
        core_res: &str,
        q_res: &str,
        now: SimTime,
        g_submit: &requiem_sim::resource::Grant,
        g_lock: &requiem_sim::resource::Grant,
        g_bell: &requiem_sim::resource::Grant,
        admit: Option<SimTime>,
    ) {
        let Some(mut batch) = self.probe.batch() else {
            return;
        };
        Self::batch_stage(&mut batch, core_res, now, g_submit.start, g_submit.end);
        Self::batch_stage(&mut batch, q_res, g_submit.end, g_lock.start, g_lock.end);
        Self::batch_stage(&mut batch, core_res, g_lock.end, g_bell.start, g_bell.end);
        if let Some(admit) = admit {
            if admit > g_bell.end {
                batch.span(Layer::Block, Cause::Queue, "sq", g_bell.end, admit);
            }
        }
    }

    /// Assign the next host tag when the request carries none.
    fn assign_tag(&mut self, req: &IoRequest) -> CommandId {
        if req.tag.is_unassigned() {
            self.next_tag += 1;
            CommandId(self.next_tag)
        } else {
            req.tag
        }
    }

    /// Index of the request queue `core` uses.
    fn queue_of(&self, core: usize) -> usize {
        match self.cfg.queue_mode {
            QueueMode::Single => 0,
            QueueMode::PerCore => core,
        }
    }

    /// Submit one typed I/O from `core` at `now`, serialized: the caller
    /// observes the completion before it can submit again. This is the
    /// pre-queue-pair path, preserved bit-for-bit.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn submit(&mut self, now: SimTime, core: usize, req: IoRequest) -> StackCompletion {
        assert!(core < self.cfg.cores as usize, "core out of range");
        let tag = self.assign_tag(&req);
        let cpu = self.cfg.cpu.clone();
        let probing = self.probe.is_enabled();
        let scope = self.probe.open_command(req.op.as_str(), now);
        // 1. submission path on the core
        let g_submit = self.cores.get_mut(core).reserve(now, cpu.submit);
        // 2. request-queue lock (the contention point in single-queue mode)
        let q = self.queue_of(core);
        let g_lock = self.queues[q].reserve(g_submit.end, cpu.queue_lock);
        // 3. doorbell
        let g_bell = self.cores.get_mut(core).reserve(g_lock.end, cpu.doorbell);
        if probing {
            let core_res = format!("core{core}");
            let q_res = format!("q{q}");
            self.span_submit_stages(&core_res, &q_res, now, &g_submit, &g_lock, &g_bell, None);
        }
        // 4. device — a self-reporting backend decomposes this interval
        // itself (the probe joined the open command); an opaque one gets
        // the single block-interface span the paper complains about
        let dev_c = self.backend.submit(g_bell.end, req);
        let dev_done = dev_c.done;
        let device_time = dev_done.since(g_bell.end);
        if probing && !self.backend.self_reporting() && dev_done > g_bell.end {
            self.probe.span(
                Layer::Block,
                Cause::Transfer,
                self.backend.label(),
                g_bell.end,
                dev_done,
            );
        }
        // 5. completion
        let (done, cpu_time) = match self.cfg.completion {
            CompletionMode::Polling => {
                // core spins through device time, then completes
                let spin = dev_done.since(g_bell.end) + cpu.complete;
                let g = self.cores.get_mut(core).reserve(g_bell.end, spin);
                (g.end, cpu.per_io_polling() + device_time)
            }
            CompletionMode::Interrupt => {
                let g = self
                    .cores
                    .get_mut(core)
                    .reserve(dev_done, cpu.interrupt + cpu.context_switch + cpu.complete);
                (g.end, cpu.per_io_interrupt())
            }
        };
        if probing && done > dev_done {
            // interrupt + context switch + complete (or the polled
            // completion tail); core waits fold into the same interval
            self.probe
                .span(Layer::Block, Cause::Overhead, "irq", dev_done, done);
        }
        scope.close(done);
        let latency = done.since(now);
        self.latency.record_duration(latency);
        self.device_busy += device_time;
        self.total_latency += latency;
        self.ios += 1;
        StackCompletion {
            tag,
            done,
            latency,
            device_time,
            cpu_time,
            status: dev_c.status,
        }
    }

    /// Submit a batch of typed I/Os from `core` at `now` without waiting
    /// for any of them: the queue-pair path.
    ///
    /// The batch pays the submission-path CPU once **per command** but
    /// takes the request-queue lock and rings the doorbell once **per
    /// batch** — the blk-mq plugging optimisation. After the doorbell,
    /// each command waits in the submission queue until the device-side
    /// in-flight window admits it (at most `window` commands run on the
    /// device at once; see [`IoStack::set_inflight_window`]), then runs
    /// the device path. Completions accumulate in `core`'s completion
    /// queue; reap them with [`IoStack::poll_completions`].
    ///
    /// Returns the host tag of each submitted command, in order. Probe
    /// note: shared batch costs (lock, doorbell, IRQ) are attributed to
    /// *each* command they cover, so per-command span tiling holds;
    /// aggregate block-layer totals therefore count a shared interval
    /// once per covered command.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn submit_batch(
        &mut self,
        now: SimTime,
        core: usize,
        reqs: &[IoRequest],
    ) -> Vec<CommandId> {
        assert!(core < self.cfg.cores as usize, "core out of range");
        if reqs.is_empty() {
            return Vec::new();
        }
        let cpu = self.cfg.cpu.clone();
        let probing = self.probe.is_enabled();
        // 1. per-command submission path on the core (serial on the core)
        let g_submits: Vec<_> = reqs
            .iter()
            .map(|_| self.cores.get_mut(core).reserve(now, cpu.submit))
            .collect();
        let batch_ready = g_submits.last().expect("non-empty batch").end;
        // 2. one queue-lock acquisition for the whole batch
        let q = self.queue_of(core);
        let g_lock = self.queues[q].reserve(batch_ready, cpu.queue_lock);
        // 3. one doorbell for the whole batch
        let g_bell = self.cores.get_mut(core).reserve(g_lock.end, cpu.doorbell);
        let core_res = format!("core{core}");
        let q_res = format!("q{q}");
        let mut tags = Vec::with_capacity(reqs.len());
        for (req, g_submit) in reqs.iter().zip(&g_submits) {
            let tag = self.assign_tag(req);
            tags.push(tag);
            // Open this command's probe record for the submit path …
            let scope = self.probe.open_command(req.op.as_str(), now);
            let probe_id = scope.id();
            // 4. device-side in-flight window: SQ residency until a slot
            // (and any same-LBA predecessor) frees up.
            let admit = self.windows[core].admit(g_bell.end, req.lba);
            if probing {
                // Tile [now, admit) with this command's share of the
                // batch: its own core slice, the shared lock + doorbell,
                // then SQ residency — one probe borrow for all of it.
                self.span_submit_stages(
                    &core_res,
                    &q_res,
                    now,
                    g_submit,
                    &g_lock,
                    &g_bell,
                    Some(admit),
                );
            }
            // 5. device path at the admit instant
            let dev_c = self.backend.submit(admit, *req);
            let dev_done = dev_c.done;
            self.windows[core].commit(admit, req.lba, dev_done);
            let device_time = dev_done.since(admit);
            if probing && !self.backend.self_reporting() && dev_done > admit {
                self.probe.span(
                    Layer::Block,
                    Cause::Transfer,
                    self.backend.label(),
                    admit,
                    dev_done,
                );
            }
            // Leave the command open until the completion is reaped.
            debug_assert_eq!(scope.id(), probe_id);
            let probe_id = scope.detach();
            self.cqs[core].push(
                dev_done,
                Pending {
                    tag,
                    probe_id,
                    submitted: now,
                    dev_done,
                    device_time,
                    status: dev_c.status,
                },
            );
        }
        tags
    }

    /// Reap every completion ready on `core`'s completion queue at
    /// `now`, earliest device-finish first (generally **not** submission
    /// order). Interrupt mode pays one IRQ + context switch for the
    /// whole reap (interrupt coalescing) plus the per-command completion
    /// path; polling mode pays only the per-command completion path.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn poll_completions(&mut self, now: SimTime, core: usize) -> Vec<StackCompletion> {
        assert!(core < self.cfg.cores as usize, "core out of range");
        let cpu = self.cfg.cpu.clone();
        let probing = self.probe.is_enabled();
        let ready = self.cqs[core].drain_ready(now);
        if ready.is_empty() {
            return Vec::new();
        }
        // Interrupt coalescing: one IRQ + context switch per reap.
        let mut cursor = match self.cfg.completion {
            CompletionMode::Interrupt => {
                self.cores
                    .get_mut(core)
                    .reserve(now, cpu.interrupt + cpu.context_switch)
                    .end
            }
            CompletionMode::Polling => now,
        };
        let mut out = Vec::with_capacity(ready.len());
        for (_, p) in ready {
            let g = self.cores.get_mut(core).reserve(cursor, cpu.complete);
            cursor = g.end;
            let done = g.end;
            if probing && p.probe_id != 0 {
                let scope = self.probe.resume(p.probe_id);
                if let Some(mut batch) = self.probe.batch() {
                    // CQ residency (includes the shared IRQ interval — it
                    // is wait time from this command's point of view) …
                    if g.start > p.dev_done {
                        batch.span(Layer::Block, Cause::Queue, "cq", p.dev_done, g.start);
                    }
                    // … then this command's completion slice.
                    if done > g.start {
                        batch.span(Layer::Block, Cause::Overhead, "irq", g.start, done);
                    }
                }
                scope.close(done);
            }
            let latency = done.since(p.submitted);
            let cpu_time = match self.cfg.completion {
                CompletionMode::Interrupt => cpu.per_io_interrupt(),
                CompletionMode::Polling => cpu.per_io_polling(),
            };
            self.latency.record_duration(latency);
            self.device_busy += p.device_time;
            self.total_latency += latency;
            self.ios += 1;
            out.push(StackCompletion {
                tag: p.tag,
                done,
                latency,
                device_time: p.device_time,
                cpu_time,
                status: p.status,
            });
        }
        out
    }

    /// Instant the earliest pending completion on `core`'s completion
    /// queue becomes reapable (`None` when nothing is in flight).
    pub fn next_completion_time(&self, core: usize) -> Option<SimTime> {
        self.cqs[core].peek_done()
    }

    /// Commands submitted on `core` whose completions have not been
    /// reaped yet.
    pub fn in_flight(&self, core: usize) -> usize {
        self.cqs[core].len()
    }

    /// Run a closed loop with one outstanding I/O **per core**, all cores
    /// driving the shared device; `next_lba` maps (core, index) to an
    /// address. This is the multi-core scaling harness of E9.
    pub fn run_per_core_loop(
        &mut self,
        ops_per_core: u64,
        op: BackendOp,
        mut next_lba: impl FnMut(usize, u64) -> u64,
        start_at: SimTime,
    ) -> StackReport {
        let cores = self.cfg.cores as usize;
        let mut heap: BinaryHeap<Reverse<(SimTime, usize, u64)>> = BinaryHeap::new();
        for c in 0..cores {
            heap.push(Reverse((start_at, c, 0)));
        }
        let mut last_done = start_at;
        let before_ios = self.ios;
        let before_lat = self.latency.count();
        let _ = before_lat;
        let mut lat = Histogram::new();
        while let Some(Reverse((t, core, i))) = heap.pop() {
            if i >= ops_per_core {
                continue;
            }
            let lba = next_lba(core, i);
            let c = self.submit(t, core, IoRequest::new(op, lba));
            lat.record_duration(c.latency);
            last_done = last_done.max(c.done);
            heap.push(Reverse((c.done, core, i + 1)));
        }
        let ios = self.ios - before_ios;
        let makespan = last_done.since(start_at);
        let secs = makespan.as_secs_f64().max(1e-12);
        StackReport {
            ios,
            iops: ios as f64 / secs,
            latency: lat,
            software_share: self.software_share(),
            makespan,
        }
    }

    /// Mean fraction of end-to-end latency spent outside the device.
    pub fn software_share(&self) -> f64 {
        if self.total_latency.is_zero() {
            return 0.0;
        }
        1.0 - self.device_busy / self.total_latency
    }

    /// Total I/Os submitted.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Latency distribution.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, DiskConfig};
    use requiem_ssd::{Ssd, SsdConfig};

    fn ssd_stack(cfg: StackConfig) -> IoStack<Ssd> {
        IoStack::new(cfg, Ssd::new(SsdConfig::modern()))
    }

    #[test]
    fn software_share_tiny_on_disk_large_on_ssd() {
        // E9's core claim in miniature
        let mut disk_stack =
            IoStack::new(StackConfig::legacy(1), Disk::new(DiskConfig::hdd_7200()));
        let mut t = SimTime::ZERO;
        let mut s = 99u64;
        for _ in 0..32 {
            s = (s.wrapping_mul(999983)) % (1 << 20);
            t = disk_stack.submit(t, 0, IoRequest::read(s)).done;
        }
        let disk_share = disk_stack.software_share();

        let mut ssd_stack = ssd_stack(StackConfig::legacy(1));
        let mut t = SimTime::ZERO;
        for lba in 0..32u64 {
            t = ssd_stack.submit(t, 0, IoRequest::write(lba)).done;
        }
        let ssd_share = ssd_stack.software_share();
        assert!(disk_share < 0.01, "disk software share {disk_share}");
        assert!(ssd_share > 0.2, "ssd software share {ssd_share}");
    }

    #[test]
    fn polling_cuts_latency_for_buffered_writes() {
        let mut irq = ssd_stack(StackConfig::blk_mq(1));
        let mut poll = ssd_stack(StackConfig::polling(1));
        let a = irq.submit(SimTime::ZERO, 0, IoRequest::write(0));
        let b = poll.submit(SimTime::ZERO, 0, IoRequest::write(0));
        assert!(
            b.latency < a.latency,
            "polling {} should beat interrupt {}",
            b.latency,
            a.latency
        );
    }

    #[test]
    fn single_queue_contends_across_cores() {
        // same workload, same device: per-core queues must beat the shared
        // queue once the device is fast enough that the lock is the
        // bottleneck. Use an NVMe-class host link (so the link does not
        // hide the lock) and the heavyweight disk-era lock cost.
        let cores = 16;
        // an idealized fast device so the flash array itself is not the
        // bottleneck — we are measuring the software lock here
        let fast_dev = || crate::backend::NullDevice {
            latency: requiem_sim::time::SimDuration::from_micros(5),
            pages: 1 << 20,
        };
        let mk = |mode| StackConfig {
            queue_mode: mode,
            completion: CompletionMode::Interrupt,
            cores,
            cpu: CpuCosts::disk_era(),
        };
        let mut sq = IoStack::new(mk(QueueMode::Single), fast_dev());
        let r_sq = sq.run_per_core_loop(
            64,
            BackendOp::Write,
            |c, i| (c as u64) * 1024 + i,
            SimTime::ZERO,
        );
        let mut mq = IoStack::new(mk(QueueMode::PerCore), fast_dev());
        let r_mq = mq.run_per_core_loop(
            64,
            BackendOp::Write,
            |c, i| (c as u64) * 1024 + i,
            SimTime::ZERO,
        );
        assert!(
            r_mq.iops > r_sq.iops * 1.2,
            "MQ {} should clearly beat SQ {}",
            r_mq.iops,
            r_sq.iops
        );
    }

    #[test]
    fn per_core_loop_counts() {
        let mut st = ssd_stack(StackConfig::blk_mq(4));
        let r = st.run_per_core_loop(
            16,
            BackendOp::Write,
            |c, i| (c as u64) * 64 + i,
            SimTime::ZERO,
        );
        assert_eq!(r.ios, 64);
        assert_eq!(r.latency.count(), 64);
        assert!(r.iops > 0.0);
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn bad_core_panics() {
        let mut st = ssd_stack(StackConfig::blk_mq(2));
        st.submit(SimTime::ZERO, 5, IoRequest::read(0));
    }

    #[test]
    fn batch_path_completes_all_and_echoes_tags() {
        let mut st = ssd_stack(StackConfig::blk_mq(1));
        st.set_inflight_window(4);
        let reqs: Vec<IoRequest> = (0..8u64).map(IoRequest::write).collect();
        let tags = st.submit_batch(SimTime::ZERO, 0, &reqs);
        assert_eq!(tags.len(), 8);
        assert_eq!(st.in_flight(0), 8);
        // Nothing is reapable before the first device finish.
        assert!(st.poll_completions(SimTime::ZERO, 0).is_empty());
        let mut got = Vec::new();
        while st.in_flight(0) > 0 {
            let t = st.next_completion_time(0).unwrap();
            got.extend(st.poll_completions(t, 0));
        }
        assert_eq!(got.len(), 8);
        // Completions surface in device order (non-decreasing done) and
        // cover exactly the submitted tags.
        for w in got.windows(2) {
            assert!(w[0].done <= w[1].done);
        }
        let mut seen: Vec<CommandId> = got.iter().map(|c| c.tag).collect();
        seen.sort();
        let mut want = tags.clone();
        want.sort();
        assert_eq!(seen, want);
        assert_eq!(st.ios(), 8);
    }

    #[test]
    fn batch_beats_serialized_at_depth() {
        // Same 16 reads on the same device: the queue-pair path must
        // finish sooner than chaining on each completion.
        let precondition = |st: &mut IoStack<Ssd>| {
            let mut t = SimTime::ZERO;
            for lba in 0..16u64 {
                t = st
                    .backend_mut()
                    .write(t, requiem_ssd::Lpn(lba))
                    .unwrap()
                    .done;
            }
            t.max(st.backend().drain_time())
        };
        let mut serial = ssd_stack(StackConfig::blk_mq(1));
        let t0 = precondition(&mut serial);
        let mut t = t0;
        for lba in 0..16u64 {
            t = serial.submit(t, 0, IoRequest::read(lba)).done;
        }
        let serial_done = t;

        let mut batched = ssd_stack(StackConfig::blk_mq(1));
        let t0 = precondition(&mut batched);
        batched.set_inflight_window(16);
        let reqs: Vec<IoRequest> = (0..16u64).map(IoRequest::read).collect();
        batched.submit_batch(t0, 0, &reqs);
        let mut last = SimTime::ZERO;
        while batched.in_flight(0) > 0 {
            let t = batched.next_completion_time(0).unwrap();
            for c in batched.poll_completions(t, 0) {
                last = last.max(c.done);
            }
        }
        assert!(
            last < serial_done,
            "batched ({last}) should beat serialized ({serial_done})"
        );
    }
}
