//! The composed I/O stack: cores → queues → device → completions.
//!
//! Models the three block-layer design axes §2.2 names:
//!
//! * **queue structure** — one shared request queue (lock contention
//!   across cores) vs per-core queues (blk-mq);
//! * **completion mode** — interrupt (core freed during device time, pays
//!   IRQ + context switch) vs polling (core spins, no IRQ cost — the
//!   low-latency-networking technique P3 imports);
//! * **path cost** — disk-era vs streamlined CPU costs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Histogram, Layer, Probe, Resource, ResourceBank};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendOp, StorageBackend};
use crate::cpu::CpuCosts;

/// Request-queue structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueMode {
    /// One shared queue; every core serializes on its lock.
    Single,
    /// A queue per core (blk-mq): no cross-core contention.
    PerCore,
}

/// How completions reach the issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionMode {
    /// Device raises an interrupt; the core pays IRQ + context switch.
    Interrupt,
    /// The core polls: busy from doorbell to completion, no IRQ.
    Polling,
}

/// Stack configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Number of CPU cores submitting I/O.
    pub cores: u32,
    /// Queue structure.
    pub queue_mode: QueueMode,
    /// Completion mode.
    pub completion: CompletionMode,
    /// Per-stage CPU costs.
    pub cpu: CpuCosts,
}

impl StackConfig {
    /// Legacy single-queue, interrupt-driven, disk-era costs.
    pub fn legacy(cores: u32) -> Self {
        StackConfig {
            cores,
            queue_mode: QueueMode::Single,
            completion: CompletionMode::Interrupt,
            cpu: CpuCosts::disk_era(),
        }
    }

    /// Modern multi-queue, interrupt-driven, streamlined costs.
    pub fn blk_mq(cores: u32) -> Self {
        StackConfig {
            cores,
            queue_mode: QueueMode::PerCore,
            completion: CompletionMode::Interrupt,
            cpu: CpuCosts::streamlined(),
        }
    }

    /// Modern multi-queue with polling completions.
    pub fn polling(cores: u32) -> Self {
        StackConfig {
            completion: CompletionMode::Polling,
            ..Self::blk_mq(cores)
        }
    }
}

/// Completion of one I/O through the stack.
#[derive(Debug, Clone, Copy)]
pub struct StackCompletion {
    /// Instant the issuer observed completion.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Device-resident portion of the latency.
    pub device_time: SimDuration,
    /// CPU time charged to the issuing core.
    pub cpu_time: SimDuration,
}

/// Aggregated result of a stack run.
#[derive(Debug, Clone)]
pub struct StackReport {
    /// I/Os completed.
    pub ios: u64,
    /// I/Os per second of virtual time.
    pub iops: f64,
    /// Latency distribution.
    pub latency: Histogram,
    /// Mean share of end-to-end latency spent in software (1 − device/total).
    pub software_share: f64,
    /// Makespan of the run.
    pub makespan: SimDuration,
}

/// The composed stack over a backend.
pub struct IoStack<B: StorageBackend> {
    cfg: StackConfig,
    backend: B,
    cores: ResourceBank,
    queues: Vec<Resource>,
    probe: Probe,
    latency: Histogram,
    device_ns: u128,
    total_ns: u128,
    ios: u64,
}

impl<B: StorageBackend> std::fmt::Debug for IoStack<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStack")
            .field("backend", &self.backend.label())
            .field("cores", &self.cfg.cores)
            .field("ios", &self.ios)
            .finish()
    }
}

impl<B: StorageBackend> IoStack<B> {
    /// Build a stack over `backend`.
    pub fn new(cfg: StackConfig, backend: B) -> Self {
        let nq = match cfg.queue_mode {
            QueueMode::Single => 1,
            QueueMode::PerCore => cfg.cores as usize,
        };
        IoStack {
            cores: ResourceBank::new("core", cfg.cores as usize),
            queues: (0..nq).map(|i| Resource::new(format!("q{i}"))).collect(),
            cfg,
            backend,
            probe: Probe::disabled(),
            latency: Histogram::new(),
            device_ns: 0,
            total_ns: 0,
            ios: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Access the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. preconditioning).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Attach a cross-layer [`Probe`]: the stack opens one command per
    /// `submit` and emits `Block`-layer spans (submission-path CPU,
    /// queue-lock waits, doorbell, completion); the same probe is handed
    /// down to the backend so a self-reporting device (the SSD) fills in
    /// the device interval with its own controller/channel/flash spans.
    pub fn attach_probe(&mut self, probe: Probe) {
        self.backend.attach_probe(probe.clone());
        self.probe = probe;
    }

    /// The attached probe (disabled by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Emit a wait span `[from, start)` (queueing on a software resource)
    /// followed by a busy span `[start, end)` of CPU-path overhead.
    fn span_stage(&self, res: &str, from: SimTime, start: SimTime, end: SimTime) {
        if start > from {
            self.probe
                .span(Layer::Block, Cause::Queue, res, from, start);
        }
        if end > start {
            self.probe
                .span(Layer::Block, Cause::Overhead, res, start, end);
        }
    }

    /// Submit one I/O from `core` at `now`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn submit(
        &mut self,
        now: SimTime,
        core: usize,
        op: BackendOp,
        lba: u64,
    ) -> StackCompletion {
        assert!(core < self.cfg.cores as usize, "core out of range");
        let cpu = self.cfg.cpu.clone();
        let probing = self.probe.is_enabled();
        let scope = self.probe.open_command(
            match op {
                BackendOp::Read => "read",
                BackendOp::Write => "write",
            },
            now,
        );
        // 1. submission path on the core
        let g_submit = self.cores.get_mut(core).reserve(now, cpu.submit);
        // 2. request-queue lock (the contention point in single-queue mode)
        let q = match self.cfg.queue_mode {
            QueueMode::Single => 0,
            QueueMode::PerCore => core,
        };
        let g_lock = self.queues[q].reserve(g_submit.end, cpu.queue_lock);
        // 3. doorbell
        let g_bell = self.cores.get_mut(core).reserve(g_lock.end, cpu.doorbell);
        if probing {
            let core_res = format!("core{core}");
            let q_res = format!("q{q}");
            self.span_stage(&core_res, now, g_submit.start, g_submit.end);
            self.span_stage(&q_res, g_submit.end, g_lock.start, g_lock.end);
            self.span_stage(&core_res, g_lock.end, g_bell.start, g_bell.end);
        }
        // 4. device — a self-reporting backend decomposes this interval
        // itself (the probe joined the open command); an opaque one gets
        // the single block-interface span the paper complains about
        let dev_done = self.backend.submit(g_bell.end, op, lba);
        let device_time = dev_done.since(g_bell.end);
        if probing && !self.backend.self_reporting() && dev_done > g_bell.end {
            self.probe.span(
                Layer::Block,
                Cause::Transfer,
                self.backend.label(),
                g_bell.end,
                dev_done,
            );
        }
        // 5. completion
        let (done, cpu_time) = match self.cfg.completion {
            CompletionMode::Polling => {
                // core spins through device time, then completes
                let spin = dev_done.since(g_bell.end) + cpu.complete;
                let g = self.cores.get_mut(core).reserve(g_bell.end, spin);
                (g.end, cpu.per_io_polling() + device_time)
            }
            CompletionMode::Interrupt => {
                let g = self
                    .cores
                    .get_mut(core)
                    .reserve(dev_done, cpu.interrupt + cpu.context_switch + cpu.complete);
                (g.end, cpu.per_io_interrupt())
            }
        };
        if probing && done > dev_done {
            // interrupt + context switch + complete (or the polled
            // completion tail); core waits fold into the same interval
            self.probe
                .span(Layer::Block, Cause::Overhead, "irq", dev_done, done);
        }
        scope.close(done);
        let latency = done.since(now);
        self.latency.record_duration(latency);
        self.device_ns += device_time.as_nanos() as u128;
        self.total_ns += latency.as_nanos() as u128;
        self.ios += 1;
        StackCompletion {
            done,
            latency,
            device_time,
            cpu_time,
        }
    }

    /// Run a closed loop with one outstanding I/O **per core**, all cores
    /// driving the shared device; `next_lba` maps (core, index) to an
    /// address. This is the multi-core scaling harness of E9.
    pub fn run_per_core_loop(
        &mut self,
        ops_per_core: u64,
        op: BackendOp,
        mut next_lba: impl FnMut(usize, u64) -> u64,
        start_at: SimTime,
    ) -> StackReport {
        let cores = self.cfg.cores as usize;
        let mut heap: BinaryHeap<Reverse<(SimTime, usize, u64)>> = BinaryHeap::new();
        for c in 0..cores {
            heap.push(Reverse((start_at, c, 0)));
        }
        let mut last_done = start_at;
        let before_ios = self.ios;
        let before_lat = self.latency.count();
        let _ = before_lat;
        let mut lat = Histogram::new();
        while let Some(Reverse((t, core, i))) = heap.pop() {
            if i >= ops_per_core {
                continue;
            }
            let lba = next_lba(core, i);
            let c = self.submit(t, core, op, lba);
            lat.record_duration(c.latency);
            last_done = last_done.max(c.done);
            heap.push(Reverse((c.done, core, i + 1)));
        }
        let ios = self.ios - before_ios;
        let makespan = last_done.since(start_at);
        let secs = makespan.as_secs_f64().max(1e-12);
        StackReport {
            ios,
            iops: ios as f64 / secs,
            latency: lat,
            software_share: self.software_share(),
            makespan,
        }
    }

    /// Mean fraction of end-to-end latency spent outside the device.
    pub fn software_share(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        1.0 - (self.device_ns as f64 / self.total_ns as f64)
    }

    /// Total I/Os submitted.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Latency distribution.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, DiskConfig};
    use requiem_ssd::{Ssd, SsdConfig};

    fn ssd_stack(cfg: StackConfig) -> IoStack<Ssd> {
        IoStack::new(cfg, Ssd::new(SsdConfig::modern()))
    }

    #[test]
    fn software_share_tiny_on_disk_large_on_ssd() {
        // E9's core claim in miniature
        let mut disk_stack =
            IoStack::new(StackConfig::legacy(1), Disk::new(DiskConfig::hdd_7200()));
        let mut t = SimTime::ZERO;
        let mut s = 99u64;
        for _ in 0..32 {
            s = (s.wrapping_mul(999983)) % (1 << 20);
            t = disk_stack.submit(t, 0, BackendOp::Read, s).done;
        }
        let disk_share = disk_stack.software_share();

        let mut ssd_stack = ssd_stack(StackConfig::legacy(1));
        let mut t = SimTime::ZERO;
        for lba in 0..32u64 {
            t = ssd_stack.submit(t, 0, BackendOp::Write, lba).done;
        }
        let ssd_share = ssd_stack.software_share();
        assert!(disk_share < 0.01, "disk software share {disk_share}");
        assert!(ssd_share > 0.2, "ssd software share {ssd_share}");
    }

    #[test]
    fn polling_cuts_latency_for_buffered_writes() {
        let mut irq = ssd_stack(StackConfig::blk_mq(1));
        let mut poll = ssd_stack(StackConfig::polling(1));
        let a = irq.submit(SimTime::ZERO, 0, BackendOp::Write, 0);
        let b = poll.submit(SimTime::ZERO, 0, BackendOp::Write, 0);
        assert!(
            b.latency < a.latency,
            "polling {} should beat interrupt {}",
            b.latency,
            a.latency
        );
    }

    #[test]
    fn single_queue_contends_across_cores() {
        // same workload, same device: per-core queues must beat the shared
        // queue once the device is fast enough that the lock is the
        // bottleneck. Use an NVMe-class host link (so the link does not
        // hide the lock) and the heavyweight disk-era lock cost.
        let cores = 16;
        // an idealized fast device so the flash array itself is not the
        // bottleneck — we are measuring the software lock here
        let fast_dev = || crate::backend::NullDevice {
            latency: requiem_sim::time::SimDuration::from_micros(5),
            pages: 1 << 20,
        };
        let mk = |mode| StackConfig {
            queue_mode: mode,
            completion: CompletionMode::Interrupt,
            cores,
            cpu: CpuCosts::disk_era(),
        };
        let mut sq = IoStack::new(mk(QueueMode::Single), fast_dev());
        let r_sq = sq.run_per_core_loop(
            64,
            BackendOp::Write,
            |c, i| (c as u64) * 1024 + i,
            SimTime::ZERO,
        );
        let mut mq = IoStack::new(mk(QueueMode::PerCore), fast_dev());
        let r_mq = mq.run_per_core_loop(
            64,
            BackendOp::Write,
            |c, i| (c as u64) * 1024 + i,
            SimTime::ZERO,
        );
        assert!(
            r_mq.iops > r_sq.iops * 1.2,
            "MQ {} should clearly beat SQ {}",
            r_mq.iops,
            r_sq.iops
        );
    }

    #[test]
    fn per_core_loop_counts() {
        let mut st = ssd_stack(StackConfig::blk_mq(4));
        let r = st.run_per_core_loop(
            16,
            BackendOp::Write,
            |c, i| (c as u64) * 64 + i,
            SimTime::ZERO,
        );
        assert_eq!(r.ios, 64);
        assert_eq!(r.latency.count(), 64);
        assert!(r.iops > 0.0);
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn bad_core_panics() {
        let mut st = ssd_stack(StackConfig::blk_mq(2));
        st.submit(SimTime::ZERO, 5, BackendOp::Read, 0);
    }
}
