//! The storage-backend abstraction under the block layer.
//!
//! The whole point of the block device interface is that the stack above
//! it cannot tell a disk from an SSD from a PCM array. [`StorageBackend`]
//! captures that with a *typed* command vocabulary: the host hands the
//! device an [`IoRequest`] (operation, address, traffic class, tag) and
//! gets an [`IoCompletion`] back (tag echoed, completion instant, probe
//! span count). The request carries its identity with it, so the block
//! layer above can keep many commands in flight and reap their
//! completions out of submission order — the queue-pair model — while a
//! serialized caller simply reads `completion.done` and chains, exactly
//! like the old positional `submit(now, op, lba) -> SimTime` API did.
//! Experiment E9 exploits the shared abstraction to show how the *same*
//! software overhead is invisible on a disk and dominant on fast
//! devices; E11 drives it at queue depth to expose Figure 1's
//! read/write asymmetry.

use requiem_pcm::PcmSsd;
use requiem_sim::time::SimTime;
use requiem_sim::Probe;
use requiem_ssd::Ssd;

use crate::disk::Disk;

pub use requiem_sim::cmd::{CommandId, IoClass, IoCompletion, IoRequest};
pub use requiem_sim::IoStatus;

/// Operation kind at the block level.
///
/// This is the shared [`IoOp`](requiem_sim::cmd::IoOp) vocabulary from
/// `requiem-sim`; the alias keeps the block layer's historical
/// `BackendOp` name alive for call sites and tests.
pub use requiem_sim::cmd::IoOp as BackendOp;

/// Anything that can serve page-granular I/O with virtual-time completions.
pub trait StorageBackend {
    /// Submit one typed command at `now`; returns its completion.
    ///
    /// The completion echoes the request's `tag`/`op`/`lba`, records
    /// `submitted = now`, and reports how many probe spans were
    /// attributed to the command (0 for devices without internal
    /// structure). Submission instants must be non-decreasing.
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion;

    /// Addressable pages/sectors.
    fn capacity_pages(&self) -> u64;

    /// Short human-readable device name.
    fn label(&self) -> &'static str;

    /// Attach a cross-layer [`Probe`] so the device decomposes its part
    /// of each command into spans. Devices without internal structure
    /// (disks, null devices) ignore it: their whole service time is one
    /// opaque interval, which is exactly the paper's complaint.
    fn attach_probe(&mut self, probe: Probe) {
        let _ = probe;
    }

    /// Whether this device emits its own probe spans for the interval it
    /// services. When `false`, the block layer above covers the device
    /// interval with a single opaque span — the block-interface view.
    fn self_reporting(&self) -> bool {
        false
    }
}

/// Build the completion for a device that serves the whole command as
/// one opaque interval (no internal probe spans). Opaque devices have no
/// fault model, so the status is always [`IoStatus::Ok`].
fn opaque_completion(req: IoRequest, submitted: SimTime, done: SimTime) -> IoCompletion {
    IoCompletion {
        tag: req.tag,
        op: req.op,
        lba: req.lba,
        submitted,
        done,
        spans: 0,
        status: IoStatus::Ok,
    }
}

/// Build the completion for a command the device refused outright
/// (address out of range, worn-out device, protocol violation). Rejection
/// is instantaneous — the command never occupied device resources.
fn rejected_completion(req: IoRequest, submitted: SimTime) -> IoCompletion {
    IoCompletion {
        tag: req.tag,
        op: req.op,
        lba: req.lba,
        submitted,
        done: submitted,
        spans: 0,
        status: IoStatus::Rejected,
    }
}

impl StorageBackend for Disk {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        let done = match req.op {
            // reads and writes cost the same mechanically
            BackendOp::Read | BackendOp::Write => self.serve(now, req.lba),
            // disks have no trim: the command is a metadata no-op
            BackendOp::Trim => now,
        };
        opaque_completion(req, now, done)
    }

    fn capacity_pages(&self) -> u64 {
        self.config().sectors
    }

    fn label(&self) -> &'static str {
        "hdd-7200"
    }
}

impl StorageBackend for Ssd {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        // An `SsdError` (worn-out device, protocol violation) surfaces as
        // a `Rejected` completion instead of tearing the stack down: the
        // layer above decides whether to retry, re-route, or fail the
        // transaction — the whole point of the typed status channel.
        match self.io(now, req) {
            Ok(c) => c,
            Err(_) => rejected_completion(req, now),
        }
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity().exported_pages
    }

    fn label(&self) -> &'static str {
        "flash-ssd"
    }

    fn attach_probe(&mut self, probe: Probe) {
        Ssd::attach_probe(self, probe);
    }

    fn self_reporting(&self) -> bool {
        self.probe().is_enabled()
    }
}

impl StorageBackend for PcmSsd {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        let done = match req.op {
            BackendOp::Read => self.read_page(now, req.lba).done,
            BackendOp::Write => self.write_page(now, req.lba).done,
            // PCM overwrites in place: nothing to unmap.
            BackendOp::Trim => now,
        };
        opaque_completion(req, now, done)
    }

    fn capacity_pages(&self) -> u64 {
        self.total_pages()
    }

    fn label(&self) -> &'static str {
        "pcm-array"
    }
}

/// An idealized device: fixed latency, unlimited internal parallelism.
/// Useful for isolating *software* bottlenecks (E9's queue-contention
/// measurements) from device behaviour.
#[derive(Debug, Clone)]
pub struct NullDevice {
    /// Fixed service latency.
    pub latency: requiem_sim::time::SimDuration,
    /// Addressable pages.
    pub pages: u64,
}

impl StorageBackend for NullDevice {
    fn submit(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        assert!(req.lba < self.pages, "lba out of range");
        opaque_completion(req, now, now + self.latency)
    }

    fn capacity_pages(&self) -> u64 {
        self.pages
    }

    fn label(&self) -> &'static str {
        "null-device"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use requiem_pcm::ssd::PcmSsdConfig;
    use requiem_ssd::SsdConfig;

    #[test]
    fn disk_backend_serves() {
        let mut d = Disk::new(DiskConfig::hdd_7200());
        let c = d.submit(SimTime::ZERO, IoRequest::read(10));
        assert!(c.done > SimTime::ZERO);
        assert_eq!(c.op, BackendOp::Read);
        assert_eq!(c.lba, 10);
        assert_eq!(c.spans, 0);
        assert_eq!(d.capacity_pages(), 1 << 20);
        assert_eq!(d.label(), "hdd-7200");
    }

    #[test]
    fn ssd_backend_serves() {
        let mut s = Ssd::new(SsdConfig::modern());
        let w = s.submit(SimTime::ZERO, IoRequest::write(3));
        let r = s.submit(w.done, IoRequest::read(3));
        assert!(r.done > w.done);
        assert_eq!(s.label(), "flash-ssd");
    }

    #[test]
    fn pcm_backend_serves() {
        let mut p = PcmSsd::new(PcmSsdConfig::small());
        let w = p.submit(SimTime::ZERO, IoRequest::write(1));
        let r = p.submit(w.done, IoRequest::read(1));
        assert!(r.done > w.done);
        // trim is a metadata no-op on PCM
        let t = p.submit(r.done, IoRequest::trim(1));
        assert_eq!(t.done, r.done);
        assert_eq!(p.label(), "pcm-array");
        assert!(p.capacity_pages() > 0);
    }

    #[test]
    fn completions_echo_request_tags() {
        let mut n = NullDevice {
            latency: requiem_sim::time::SimDuration::from_micros(5),
            pages: 64,
        };
        let c = n.submit(SimTime::ZERO, IoRequest::write(7).tag(CommandId(42)));
        assert_eq!(c.tag, CommandId(42));
        assert_eq!(c.submitted, SimTime::ZERO);
        assert_eq!(c.latency(), requiem_sim::time::SimDuration::from_micros(5));
    }

    #[test]
    fn same_interface_different_latency_classes() {
        // the abstraction hides a 100x latency difference — §2's complaint
        let mut d = Disk::new(DiskConfig::hdd_7200());
        let mut s = Ssd::new(SsdConfig::modern());
        // random-ish single reads on each
        let t_disk = {
            d.submit(SimTime::ZERO, IoRequest::read(500_000));
            let a = d.submit(d.drain_time(), IoRequest::read(12_345)).done;
            let b = d.submit(a, IoRequest::read(900_000)).done;
            b.since(a)
        };
        let t_ssd = {
            let w = s.submit(SimTime::ZERO, IoRequest::write(0)).done;
            let a = s.submit(w, IoRequest::read(0)).done;
            a.since(w)
        };
        assert!(t_disk.as_nanos() > 20 * t_ssd.as_nanos());
    }
}
