//! The storage-backend abstraction under the block layer.
//!
//! The whole point of the block device interface is that the stack above
//! it cannot tell a disk from an SSD from a PCM array. [`StorageBackend`]
//! captures that: one `submit` entry point, a completion time back.
//! Experiment E9 exploits it to show how the *same* software overhead is
//! invisible on a disk and dominant on fast devices.

use requiem_sim::time::SimTime;
use requiem_sim::Probe;
use requiem_ssd::{Lpn, Ssd};

use crate::disk::Disk;

/// Operation kind at the block level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendOp {
    /// Read one logical page/sector.
    Read,
    /// Write one logical page/sector.
    Write,
}

/// Anything that can serve page-granular I/O with virtual-time completions.
pub trait StorageBackend {
    /// Submit one operation at `now`; returns the completion instant.
    fn submit(&mut self, now: SimTime, op: BackendOp, lba: u64) -> SimTime;

    /// Addressable pages/sectors.
    fn capacity_pages(&self) -> u64;

    /// Short human-readable device name.
    fn label(&self) -> &'static str;

    /// Attach a cross-layer [`Probe`] so the device decomposes its part
    /// of each command into spans. Devices without internal structure
    /// (disks, null devices) ignore it: their whole service time is one
    /// opaque interval, which is exactly the paper's complaint.
    fn attach_probe(&mut self, probe: Probe) {
        let _ = probe;
    }

    /// Whether this device emits its own probe spans for the interval it
    /// services. When `false`, the block layer above covers the device
    /// interval with a single opaque span — the block-interface view.
    fn self_reporting(&self) -> bool {
        false
    }
}

impl StorageBackend for Disk {
    fn submit(&mut self, now: SimTime, _op: BackendOp, lba: u64) -> SimTime {
        // reads and writes cost the same mechanically
        self.serve(now, lba)
    }

    fn capacity_pages(&self) -> u64 {
        self.config().sectors
    }

    fn label(&self) -> &'static str {
        "hdd-7200"
    }
}

impl StorageBackend for Ssd {
    fn submit(&mut self, now: SimTime, op: BackendOp, lba: u64) -> SimTime {
        match op {
            BackendOp::Read => self.read(now, Lpn(lba)).expect("ssd read failed").done,
            BackendOp::Write => self.write(now, Lpn(lba)).expect("ssd write failed").done,
        }
    }

    fn capacity_pages(&self) -> u64 {
        self.capacity().exported_pages
    }

    fn label(&self) -> &'static str {
        "flash-ssd"
    }

    fn attach_probe(&mut self, probe: Probe) {
        Ssd::attach_probe(self, probe);
    }

    fn self_reporting(&self) -> bool {
        self.probe().is_enabled()
    }
}

/// An idealized device: fixed latency, unlimited internal parallelism.
/// Useful for isolating *software* bottlenecks (E9's queue-contention
/// measurements) from device behaviour.
#[derive(Debug, Clone)]
pub struct NullDevice {
    /// Fixed service latency.
    pub latency: requiem_sim::time::SimDuration,
    /// Addressable pages.
    pub pages: u64,
}

impl StorageBackend for NullDevice {
    fn submit(&mut self, now: SimTime, _op: BackendOp, lba: u64) -> SimTime {
        assert!(lba < self.pages, "lba out of range");
        now + self.latency
    }

    fn capacity_pages(&self) -> u64 {
        self.pages
    }

    fn label(&self) -> &'static str {
        "null-device"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use requiem_ssd::SsdConfig;

    #[test]
    fn disk_backend_serves() {
        let mut d = Disk::new(DiskConfig::hdd_7200());
        let done = d.submit(SimTime::ZERO, BackendOp::Read, 10);
        assert!(done > SimTime::ZERO);
        assert_eq!(d.capacity_pages(), 1 << 20);
        assert_eq!(d.label(), "hdd-7200");
    }

    #[test]
    fn ssd_backend_serves() {
        let mut s = Ssd::new(SsdConfig::modern());
        let w = s.submit(SimTime::ZERO, BackendOp::Write, 3);
        let r = s.submit(w, BackendOp::Read, 3);
        assert!(r > w);
        assert_eq!(s.label(), "flash-ssd");
    }

    #[test]
    fn same_interface_different_latency_classes() {
        // the abstraction hides a 100x latency difference — §2's complaint
        let mut d = Disk::new(DiskConfig::hdd_7200());
        let mut s = Ssd::new(SsdConfig::modern());
        // random-ish single reads on each
        let t_disk = {
            d.submit(SimTime::ZERO, BackendOp::Read, 500_000);
            let a = d.submit(d.drain_time(), BackendOp::Read, 12_345);
            let b = d.submit(a, BackendOp::Read, 900_000);
            b.since(a)
        };
        let t_ssd = {
            let w = s.submit(SimTime::ZERO, BackendOp::Write, 0);
            let a = s.submit(w, BackendOp::Read, 0);
            a.since(w)
        };
        assert!(t_disk.as_nanos() > 20 * t_ssd.as_nanos());
    }
}
