//! # requiem-block — the OS block layer, modelled
//!
//! §2.2 of the paper describes the block layer as *"a simple memory
//! abstraction … a flat address space, quantized in logical blocks of
//! fixed size, on which I/O requests are submitted"*, and then lists the
//! work the Linux community had to do once SSDs arrived: *"CPU overhead
//! has been reduced — it was acceptable on disk to reduce seeks — lock
//! contention has been reduced, completions are dispatched on the core
//! that submitted the request, and currently the management of multiple IO
//! queues for each device is under implementation."*
//!
//! This crate models exactly those knobs so experiment E9 can measure
//! them:
//!
//! * [`cpu::CpuCosts`] — per-stage CPU costs of the submission and
//!   completion paths (syscall, queue handling, doorbell, IRQ, context
//!   switch), with disk-era and streamlined presets.
//! * [`stack::IoStack`] — cores × queues × completion-mode composition:
//!   single shared queue vs per-core queues (blk-mq), interrupt vs
//!   polling completions.
//! * [`disk.rs`](disk) — a magnetic disk backend (seek + rotation +
//!   transfer) with FIFO vs elevator (C-SCAN) service, the device whose
//!   10 ms latencies made block-layer overhead invisible — and made seek-
//!   reducing schedulers worth their CPU cost.
//! * [`backend::StorageBackend`] — the abstraction that lets the same
//!   stack drive a disk, a flash SSD, or a PCM SSD.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cpu;
pub mod disk;
pub mod stack;

pub use backend::{
    BackendOp, CommandId, IoClass, IoCompletion, IoRequest, NullDevice, StorageBackend,
};
pub use cpu::CpuCosts;
pub use disk::{Disk, DiskConfig, ServeOrder};
pub use stack::{
    CompletionMode, IoStack, QueueMode, StackCompletion, StackConfig, StackReport,
    DEFAULT_INFLIGHT_WINDOW,
};
