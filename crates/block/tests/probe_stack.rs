//! The observability bus across the software/device boundary: one probe
//! attached at the top of the I/O stack joins the block layer's CPU-path
//! spans with the SSD controller's internal spans under a single command
//! id — the decomposition the block device interface denies.

use requiem_block::{IoRequest, IoStack, NullDevice, StackConfig};
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Layer, Probe, SpanEvent};
use requiem_ssd::{Ssd, SsdConfig};

fn assert_tiles(probe: &Probe, id: u64) -> Vec<SpanEvent> {
    let cmds = probe.commands_ref();
    let rec = cmds.iter().find(|c| c.id == id).expect("command recorded");
    let done = rec.done.expect("command closed");
    let spans = probe.command_spans(id);
    let mut cursor = rec.submit;
    for s in &spans {
        assert_eq!(
            s.start, cursor,
            "gap/overlap before {:?}/{:?} in cmd {id}",
            s.layer, s.cause
        );
        cursor = s.end;
    }
    assert_eq!(cursor, done, "spans do not reach completion");
    spans
}

#[test]
fn stack_and_ssd_spans_join_into_one_command() {
    let mut stack = IoStack::new(StackConfig::blk_mq(1), Ssd::new(SsdConfig::modern()));
    let probe = Probe::recording();
    stack.attach_probe(probe.clone());

    let w = stack.submit(SimTime::ZERO, 0, IoRequest::write(42));
    let r = stack.submit(w.done, 0, IoRequest::read(42));

    let cmds = probe.commands_ref();
    assert_eq!(cmds.len(), 2, "one command per submit, joined not nested");
    assert_eq!(cmds[0].kind, "write");
    assert_eq!(cmds[1].kind, "read");
    assert_eq!(cmds[0].done, Some(w.done));
    assert_eq!(cmds[1].done, Some(r.done));

    for (id, c) in [(cmds[0].id, &w), (cmds[1].id, &r)] {
        let spans = assert_tiles(&probe, id);
        let total: SimDuration = spans
            .iter()
            .map(SpanEvent::duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, c.latency, "span sum != stack end-to-end latency");
        // both software (Block) and device (Controller/…) layers present
        assert!(spans.iter().any(|s| s.layer == Layer::Block));
        assert!(spans.iter().any(|s| s.layer == Layer::Controller));
    }
}

#[test]
fn opaque_backend_collapses_device_time_into_one_span() {
    // a device that does not self-report gets exactly one opaque span for
    // its whole service interval — the block-interface view of the world
    let dev = NullDevice {
        latency: SimDuration::from_micros(50),
        pages: 1024,
    };
    let mut stack = IoStack::new(StackConfig::blk_mq(1), dev);
    let probe = Probe::recording();
    stack.attach_probe(probe.clone());
    let c = stack.submit(SimTime::ZERO, 0, IoRequest::read(5));
    let cmds = probe.commands_ref();
    assert_eq!(cmds.len(), 1);
    let spans = assert_tiles(&probe, cmds[0].id);
    let total: SimDuration = spans
        .iter()
        .map(SpanEvent::duration)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert_eq!(total, c.latency);
    let opaque: Vec<&SpanEvent> = spans
        .iter()
        .filter(|s| s.layer == Layer::Block && s.cause == Cause::Transfer)
        .collect();
    assert_eq!(opaque.len(), 1, "exactly one opaque device span");
    assert_eq!(opaque[0].duration(), SimDuration::from_micros(50));
    assert_eq!(opaque[0].resource.as_deref(), Some("null-device"));
}

#[test]
fn polling_and_interrupt_spans_both_tile() {
    for cfg in [StackConfig::blk_mq(1), StackConfig::polling(1)] {
        let mut stack = IoStack::new(cfg, Ssd::new(SsdConfig::modern()));
        let probe = Probe::recording();
        stack.attach_probe(probe.clone());
        let w = stack.submit(SimTime::ZERO, 0, IoRequest::write(1));
        let cmds = probe.commands_ref();
        let spans = assert_tiles(&probe, cmds[0].id);
        let total: SimDuration = spans
            .iter()
            .map(SpanEvent::duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, w.latency);
    }
}

#[test]
fn batch_path_spans_tile_per_command_out_of_order() {
    // The queue-pair path: 8 writes batched at once, completions reaped
    // out of submission order — every command's spans must still tile
    // its [submit, done) exactly, covering SQ wait, device interval, CQ
    // wait, and the completion slice.
    for cfg in [StackConfig::blk_mq(1), StackConfig::polling(1)] {
        let mut stack = IoStack::new(cfg, Ssd::new(SsdConfig::modern()));
        let probe = Probe::recording();
        stack.attach_probe(probe.clone());
        stack.set_inflight_window(4);
        let reqs: Vec<IoRequest> = (0..8u64).map(IoRequest::write).collect();
        let tags = stack.submit_batch(SimTime::ZERO, 0, &reqs);
        let mut comps = Vec::new();
        while stack.in_flight(0) > 0 {
            let t = stack.next_completion_time(0).unwrap();
            comps.extend(stack.poll_completions(t, 0));
        }
        assert_eq!(comps.len(), tags.len());
        let cmds = probe.commands_ref();
        assert_eq!(cmds.len(), tags.len(), "one probe command per request");
        for c in cmds.iter() {
            let spans = assert_tiles(&probe, c.id);
            let done = c.done.expect("closed");
            let total: SimDuration = spans
                .iter()
                .map(SpanEvent::duration)
                .fold(SimDuration::ZERO, |a, b| a + b);
            assert_eq!(total, done.since(c.submit), "span sum != latency");
            // the device layers joined the same command id
            assert!(spans.iter().any(|s| s.layer == Layer::Block));
            assert!(spans.iter().any(|s| s.layer == Layer::Controller));
        }
        // the stack's reported latencies agree with the probe records
        for comp in &comps {
            let rec = cmds
                .iter()
                .find(|c| c.done == Some(comp.done))
                .expect("matching record");
            assert_eq!(comp.latency, comp.done.since(rec.submit));
        }
    }
}
