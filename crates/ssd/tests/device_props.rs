//! Property-based tests: the device must keep its mapping, block
//! directory, and flash state mutually consistent under arbitrary
//! workloads, for every FTL.

use proptest::prelude::*;
use requiem_sim::time::SimTime;
use requiem_ssd::{BufferConfig, FtlKind, Lpn, Served, Ssd, SsdConfig};
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum HostOp {
    Write(u64),
    Read(u64),
    Trim(u64),
}

fn ops(space: u64) -> impl Strategy<Value = Vec<HostOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..space).prop_map(HostOp::Write),
            2 => (0..space).prop_map(HostOp::Read),
            1 => (0..space).prop_map(HostOp::Trim),
        ],
        1..200,
    )
}

fn small_cfg(ftl: FtlKind) -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    cfg.ftl = ftl;
    cfg.buffer = BufferConfig { capacity_pages: 8 };
    cfg
}

/// Drive the device and a trivial shadow model (set of written lpns);
/// check read servedness matches the shadow at every step.
fn check_ftl(ftl: FtlKind, ops: &[HostOp]) -> Result<(), TestCaseError> {
    let mut ssd = Ssd::new(small_cfg(ftl));
    let space = 256u64.min(ssd.capacity().exported_pages);
    let mut written: HashSet<u64> = HashSet::new();
    let mut t = SimTime::ZERO;
    for op in ops {
        match op {
            HostOp::Write(lpn) => {
                let lpn = lpn % space;
                let c = ssd.write(t, Lpn(lpn)).expect("write failed");
                prop_assert!(c.done >= t);
                t = c.done;
                written.insert(lpn);
            }
            HostOp::Read(lpn) => {
                let lpn = lpn % space;
                let c = ssd.read(t, Lpn(lpn)).expect("read failed");
                prop_assert!(c.done >= t);
                t = c.done;
                if written.contains(&lpn) {
                    prop_assert!(
                        matches!(c.served, Served::Flash | Served::Buffer),
                        "written lpn {lpn} served {:?}",
                        c.served
                    );
                } else {
                    prop_assert_eq!(c.served, Served::Unmapped, "unwritten lpn {}", lpn);
                }
            }
            HostOp::Trim(lpn) => {
                let lpn = lpn % space;
                let c = ssd.trim(t, Lpn(lpn)).expect("trim failed");
                t = c.done;
                written.remove(&lpn);
            }
        }
    }
    // final sweep: every shadow-written lpn must still be readable
    for &lpn in &written {
        let c = ssd.read(t, Lpn(lpn)).expect("final read failed");
        t = c.done;
        prop_assert!(
            matches!(c.served, Served::Flash | Served::Buffer),
            "lpn {lpn} lost"
        );
    }
    // metrics sanity: host counters match what we issued
    let m = ssd.metrics();
    prop_assert_eq!(
        m.host_writes + m.host_reads + m.host_trims,
        ops.len() as u64 + written.len() as u64
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn page_map_consistency(ops in ops(256)) {
        check_ftl(FtlKind::PageMap, &ops)?;
    }

    #[test]
    fn dftl_consistency(ops in ops(256)) {
        check_ftl(FtlKind::Dftl { cached_entries: 32 }, &ops)?;
    }

    #[test]
    fn block_map_consistency(ops in ops(256)) {
        check_ftl(FtlKind::BlockMap, &ops)?;
    }

    #[test]
    fn hybrid_consistency(ops in ops(256)) {
        check_ftl(FtlKind::Hybrid { log_blocks: 4 }, &ops)?;
    }

    /// Write amplification is never below 1 once any write happened, for
    /// any FTL and any workload.
    #[test]
    fn wa_at_least_one(ops in ops(128)) {
        for ftl in [FtlKind::PageMap, FtlKind::BlockMap, FtlKind::Hybrid { log_blocks: 4 }] {
            let mut ssd = Ssd::new(small_cfg(ftl));
            let mut t = SimTime::ZERO;
            let mut wrote = false;
            for op in &ops {
                if let HostOp::Write(lpn) = op {
                    let c = ssd.write(t, Lpn(lpn % 128)).unwrap();
                    t = c.done;
                    wrote = true;
                }
            }
            if wrote {
                prop_assert!(ssd.metrics().write_amplification() >= 1.0 - 1e-9);
            }
        }
    }
}
