//! Behavioural tests of the page-mapped device — the "modern SSD" whose
//! behaviour debunks the paper's myths.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_ssd::{BufferConfig, Lpn, Placement, Served, Ssd, SsdConfig, SsdError};

fn modern_unbuffered() -> SsdConfig {
    SsdConfig {
        buffer: BufferConfig { capacity_pages: 0 },
        ..SsdConfig::modern()
    }
}

/// Write everything once, sequentially, in closed loop; returns last done.
fn fill(ssd: &mut Ssd, pages: u64) -> SimTime {
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    t
}

#[test]
fn write_then_read_round_trip() {
    let mut ssd = Ssd::new(modern_unbuffered());
    let w = ssd.write(SimTime::ZERO, Lpn(42)).unwrap();
    assert_eq!(w.served, Served::Flash);
    let r = ssd.read(w.done, Lpn(42)).unwrap();
    assert_eq!(r.served, Served::Flash);
    assert!(r.latency > SimDuration::ZERO);
    let m = ssd.metrics();
    assert_eq!(m.host_writes, 1);
    assert_eq!(m.host_reads, 1);
    assert_eq!(m.flash_programs.host, 1);
    assert_eq!(m.flash_reads.host, 1);
}

#[test]
fn unwritten_page_reads_unmapped() {
    let mut ssd = Ssd::new(modern_unbuffered());
    let r = ssd.read(SimTime::ZERO, Lpn(7)).unwrap();
    assert_eq!(r.served, Served::Unmapped);
    assert_eq!(ssd.metrics().unmapped_reads, 1);
}

#[test]
fn out_of_range_lpn_rejected() {
    let mut ssd = Ssd::new(modern_unbuffered());
    let exported = ssd.capacity().exported_pages;
    let err = ssd.write(SimTime::ZERO, Lpn(exported)).unwrap_err();
    assert!(matches!(err, SsdError::LpnOutOfRange { .. }));
    let err = ssd.read(SimTime::ZERO, Lpn(exported + 5)).unwrap_err();
    assert!(matches!(err, SsdError::LpnOutOfRange { .. }));
}

#[test]
fn buffered_write_completes_before_flash_program() {
    let mut buffered = Ssd::new(SsdConfig::modern());
    let mut unbuffered = Ssd::new(modern_unbuffered());
    let wb = buffered.write(SimTime::ZERO, Lpn(0)).unwrap();
    let wu = unbuffered.write(SimTime::ZERO, Lpn(0)).unwrap();
    assert_eq!(wb.served, Served::Buffer);
    // §2.3.2: the write completes as soon as it hits the cache — far below
    // the flash program latency the unbuffered device pays
    assert!(
        wb.latency.as_nanos() * 10 < wu.latency.as_nanos(),
        "buffered {} vs unbuffered {}",
        wb.latency,
        wu.latency
    );
}

#[test]
fn read_of_in_flight_buffered_write_hits_buffer() {
    let mut ssd = Ssd::new(SsdConfig::modern());
    let w = ssd.write(SimTime::ZERO, Lpn(3)).unwrap();
    // immediately after the (buffered) completion, the flash program is
    // still in flight — the read must be served from RAM
    let r = ssd.read(w.done, Lpn(3)).unwrap();
    assert_eq!(r.served, Served::Buffer);
    assert_eq!(ssd.metrics().buffer_read_hits, 1);
}

#[test]
fn overwrites_trigger_gc_and_bounded_write_amplification() {
    // small device, fill it several times over; GC must keep it alive and
    // WA must stay sane for a sequential pattern
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for round in 0..4 {
        for lpn in 0..pages {
            let c = ssd
                .write(t, Lpn(lpn))
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            t = c.done;
        }
    }
    let m = ssd.metrics();
    assert_eq!(m.host_writes, 4 * pages);
    assert!(m.gc_runs > 0, "GC must have run on an over-filled device");
    let wa = m.write_amplification();
    assert!(wa >= 1.0, "WA below 1 is impossible: {wa}");
    assert!(wa < 3.0, "sequential overwrite WA should be modest: {wa}");
}

#[test]
fn trim_invalidates_and_makes_gc_cheaper() {
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = fill(&mut ssd, pages);
    // trim everything: subsequent reads are unmapped
    for lpn in 0..pages {
        let c = ssd.trim(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    let r = ssd.read(t, Lpn(0)).unwrap();
    assert_eq!(r.served, Served::Unmapped);
    assert_eq!(ssd.metrics().host_trims, pages);
}

#[test]
fn wear_spreads_across_blocks_with_dynamic_wl() {
    let mut cfg = modern_unbuffered();
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 1;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    // hammer a small working set — without WL only a few blocks would wear
    for round in 0..20 {
        for lpn in 0..pages / 4 {
            let c = ssd.write(t, Lpn(lpn)).unwrap();
            t = c.done;
            let _ = round;
        }
    }
    let (_min, max, mean) = ssd.wear_spread();
    assert!(max > 0);
    // dynamic wear leveling keeps the hottest block within a small factor
    // of the mean wear
    assert!(
        (max as f64) < mean * 6.0 + 8.0,
        "wear skew too high: max={max} mean={mean:.2}"
    );
}

#[test]
fn static_by_lpn_placement_concentrates_on_one_lun() {
    let mut cfg = modern_unbuffered();
    cfg.placement = Placement::StaticByLpn;
    let nluns = cfg.total_luns() as u64;
    let mut ssd = Ssd::new(cfg);
    let mut t = SimTime::ZERO;
    // every write to lpn ≡ 0 (mod nluns) lands on LUN 0
    for i in 0..32 {
        let c = ssd.write(t, Lpn(i * nluns)).unwrap();
        t = c.done;
    }
    let horizon = ssd.drain_time();
    let utils = ssd.lun_utilization(horizon);
    let busy: Vec<usize> = utils
        .iter()
        .enumerate()
        .filter(|(_, &u)| u > 0.0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(busy, vec![0], "only LUN 0 should have been used: {utils:?}");
}

#[test]
fn least_loaded_placement_stripes_across_luns() {
    let mut ssd = Ssd::new(modern_unbuffered());
    let nluns = ssd.config().total_luns() as usize;
    // issue a burst of concurrent writes at t=0 (open loop)
    for i in 0..nluns as u64 {
        ssd.write(SimTime::ZERO, Lpn(i)).unwrap();
    }
    let horizon = ssd.drain_time();
    let utils = ssd.lun_utilization(horizon);
    let busy = utils.iter().filter(|&&u| u > 0.0).count();
    assert!(
        busy >= nluns / 2,
        "expected striping across most LUNs, got {busy}/{nluns}"
    );
}

#[test]
fn dftl_costs_translation_traffic_on_random_io() {
    // tiny CMT + random lookups over a space far larger than the cache
    let mut cfg = SsdConfig::modern_dftl(64);
    cfg.buffer.capacity_pages = 0;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    // scatter writes
    let mut lpn = 1u64;
    for _ in 0..512 {
        lpn = lpn
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            % pages;
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    let (hits, misses, _) = ssd.dftl_stats().unwrap();
    assert!(misses > 0, "random IO must miss a 64-entry CMT");
    assert!(hits + misses >= 512);
    let m = ssd.metrics();
    assert!(
        m.flash_reads.translation > 0,
        "CMT misses must cost translation reads"
    );
}

#[test]
fn dftl_sequential_io_mostly_hits_cache() {
    let mut cfg = SsdConfig::modern_dftl(1024);
    cfg.buffer.capacity_pages = 0;
    let mut ssd = Ssd::new(cfg);
    let mut t = SimTime::ZERO;
    for lpn in 0..512u64 {
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    // second pass re-reads the same range: all hits
    let before = ssd.dftl_stats().unwrap();
    for lpn in 0..512u64 {
        let c = ssd.read(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    let after = ssd.dftl_stats().unwrap();
    assert_eq!(after.1, before.1, "re-reads should not add CMT misses");
}

#[test]
fn completion_times_are_causally_ordered() {
    let mut ssd = Ssd::new(SsdConfig::modern());
    let mut t = SimTime::ZERO;
    let mut last_done = SimTime::ZERO;
    for lpn in 0..64u64 {
        let c = ssd.write(t, Lpn(lpn % 8)).unwrap();
        assert!(c.done >= t, "completion before submission");
        last_done = last_done.max(c.done);
        t += SimDuration::from_micros(1);
    }
    assert!(ssd.drain_time() >= last_done);
}

#[test]
fn trace_records_chip_and_channel_spans() {
    let mut ssd = Ssd::new(modern_unbuffered());
    ssd.enable_trace();
    let w = ssd.write(SimTime::ZERO, Lpn(0)).unwrap();
    ssd.read(w.done, Lpn(0)).unwrap();
    let trace = ssd.take_trace().unwrap();
    let lanes: Vec<&str> = trace.spans().iter().map(|s| s.lane.as_str()).collect();
    assert!(lanes.iter().any(|l| l.starts_with("chip")));
    assert!(lanes.iter().any(|l| l.starts_with("chan")));
    let glyphs: Vec<char> = trace.spans().iter().map(|s| s.glyph).collect();
    assert!(glyphs.contains(&'P'));
    assert!(glyphs.contains(&'R'));
    assert!(glyphs.contains(&'t'));
}
