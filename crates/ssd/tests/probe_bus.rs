//! Integration tests of the cross-layer observability bus at the device
//! boundary: every host command decomposes into per-layer spans that
//! tile its `[submit, done)` interval exactly, GC interference shows up
//! as `GcStall` time blamed on the stalled command (the paper's myth 3),
//! and the whole decomposition is deterministic.

use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Layer, Probe, SpanEvent};
use requiem_ssd::{BufferConfig, Lpn, Served, Ssd, SsdConfig};

/// A small single-LUN, write-through device: every command takes the
/// flash path and all traffic (host + GC) contends on one chip.
fn one_lun() -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 1;
    cfg.flash.geometry = requiem_flash::Geometry::new(1, 16, 8, 4096);
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.op_ratio = 0.30;
    cfg
}

/// Assert the spans attributed to command `id` tile `[submit, done)`
/// contiguously (no gap, no overlap) and return them.
fn assert_tiles(probe: &Probe, id: u64) -> Vec<SpanEvent> {
    let cmds = probe.commands_ref();
    let rec = cmds.iter().find(|c| c.id == id).expect("command recorded");
    let done = rec.done.expect("command closed");
    let spans = probe.command_spans(id);
    assert!(!spans.is_empty(), "command {id} has no spans");
    let mut cursor = rec.submit;
    for s in &spans {
        assert_eq!(
            s.start, cursor,
            "gap/overlap before {:?}/{:?} span at {} (cursor {cursor}) in cmd {id}",
            s.layer, s.cause, s.start
        );
        cursor = s.end;
    }
    assert_eq!(cursor, done, "spans do not reach the completion instant");
    let total: SimDuration = spans
        .iter()
        .map(SpanEvent::duration)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert_eq!(
        total,
        done.since(rec.submit),
        "span durations must sum to end-to-end latency of cmd {id}"
    );
    spans
}

#[test]
fn write_and_read_spans_tile_completion_latency() {
    let mut ssd = Ssd::new(one_lun());
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());

    let w = ssd.write(SimTime::ZERO, Lpn(7)).expect("write");
    assert_eq!(w.served, Served::Flash);
    let r = ssd.read(w.done, Lpn(7)).expect("read");
    assert_eq!(r.served, Served::Flash);

    let cmds = probe.commands_ref();
    assert_eq!(cmds.len(), 2);
    let (wid, rid) = (cmds[0].id, cmds[1].id);
    assert_eq!(cmds[0].kind, "write");
    assert_eq!(cmds[1].kind, "read");

    // every span sequence tiles [submit, done) — the latency a block
    // interface reports as one opaque number is fully decomposed
    let wspans = assert_tiles(&probe, wid);
    let rspans = assert_tiles(&probe, rid);

    // the write crosses host link → controller → channel → flash cell
    let has = |v: &[SpanEvent], l: Layer, c: Cause| v.iter().any(|s| s.layer == l && s.cause == c);
    assert!(has(&wspans, Layer::HostLink, Cause::Transfer));
    assert!(has(&wspans, Layer::Controller, Cause::Overhead));
    assert!(has(&wspans, Layer::Channel, Cause::Transfer));
    assert!(has(&wspans, Layer::Flash, Cause::CellProgram));
    // the read additionally pays command cycles and the data transfer out
    assert!(has(&rspans, Layer::Controller, Cause::Overhead));
    assert!(has(&rspans, Layer::Channel, Cause::Command));
    assert!(has(&rspans, Layer::Flash, Cause::CellRead));
    assert!(has(&rspans, Layer::HostLink, Cause::Transfer));
}

#[test]
fn myth3_read_stalled_behind_gc_erase_is_blamed_as_gc_stall() {
    // Myth 3 ("SSDs are fast"): a host read arriving while the controller
    // garbage-collects waits for milliseconds behind an erase. The probe
    // must *attribute* that wait: the read command carries GcStall spans
    // totalling at least one tBERS.
    let mut ssd = Ssd::new(one_lun());
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());
    let erase = ssd.config().flash.timing.erase;
    let pages = ssd.capacity().exported_pages;

    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    // overwrite until a write triggers a collection, then immediately
    // submit a read at the same instant: its chip is occupied by the
    // collection's relocations and erase
    let mut x = 7u64;
    let mut stalled_read = None;
    for _ in 0..20 * pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let before = ssd.metrics().gc_runs;
        let w = ssd.write(t, Lpn(x % pages)).expect("churn");
        if ssd.metrics().gc_runs > before {
            let r = ssd.read(t, Lpn((x + 1) % pages)).expect("read under gc");
            assert_eq!(r.served, Served::Flash);
            stalled_read = Some(probe.commands_ref().last().unwrap().id);
            break;
        }
        t = w.done;
    }
    let rid = stalled_read.expect("churn never triggered GC");
    let spans = assert_tiles(&probe, rid);
    let gc_stall: SimDuration = spans
        .iter()
        .filter(|s| s.cause == Cause::GcStall)
        .map(SpanEvent::duration)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert!(
        gc_stall >= erase,
        "read behind a collection must be blamed >= tBERS of GcStall \
         (got {gc_stall}, tBERS {erase})"
    );
}

#[test]
fn span_decomposition_is_deterministic() {
    // same seed, same workload, fresh device: identical span streams
    let run = || {
        let mut ssd = Ssd::new(one_lun());
        let probe = Probe::recording();
        ssd.attach_probe(probe.clone());
        let mut t = SimTime::ZERO;
        let pages = ssd.capacity().exported_pages;
        let mut x = 3u64;
        for i in 0..3 * pages {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t = ssd.write(t, Lpn(x % pages)).expect("write").done;
            if i % 4 == 0 {
                t = ssd.read(t, Lpn(x % pages)).expect("read").done;
            }
        }
        (probe.summary(), probe.events(), probe.commands())
    };
    let (s1, e1, c1) = run();
    let (s2, e2, c2) = run();
    assert_eq!(s1, s2, "aggregate summaries diverged");
    assert_eq!(c1, c2, "command records diverged");
    assert_eq!(e1.len(), e2.len(), "event counts diverged");
    assert_eq!(e1, e2, "span streams diverged");
}

#[test]
fn background_gc_work_is_not_charged_to_commands() {
    // GC cell time (reads/programs/erases with cmd: None) reaches host
    // commands only as stall blame; the direct spans stay background
    let mut ssd = Ssd::new(one_lun());
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let mut x = 11u64;
    for _ in 0..10 * pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        t = ssd.write(t, Lpn(x % pages)).expect("churn").done;
    }
    assert!(ssd.metrics().gc_runs > 0, "churn must trigger GC");
    let erases: Vec<SpanEvent> = probe
        .events_ref()
        .iter()
        .filter(|e| e.cause == Cause::CellErase)
        .cloned()
        .collect();
    assert!(!erases.is_empty(), "GC must have erased blocks");
    assert!(
        erases.iter().all(|e| e.cmd.is_none()),
        "erase cell time must never sit on a host command's critical path"
    );
    // but its interference is visible where it belongs: stall blame
    let stall = probe.summary().cause_total(Cause::GcStall);
    assert!(
        stall > SimDuration::ZERO,
        "sustained churn on one chip must blame some GcStall time"
    );
}
