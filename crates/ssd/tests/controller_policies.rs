//! Behavioural tests of the pluggable controller policies: GC policy
//! selection (greedy vs. cost-benefit), the typed GC re-entrancy gate,
//! and policy injection through the `set_*_policy` hooks.

use requiem_sim::time::SimTime;
use requiem_ssd::{
    BufferConfig, GcPolicyKind, Lpn, Served, Ssd, SsdConfig, SsdError, WriteThrough,
};

/// A tiny two-LUN device with little spare area and a zero low-water
/// mark: collections start only when a LUN's free pool is already empty,
/// so the collection's own frontier allocation finds nothing and attempts
/// to re-enter GC — the exact recursion the gate must block (the inner
/// allocation then spills to the other LUN).
fn tiny(policy: GcPolicyKind) -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 2;
    cfg.flash.geometry = requiem_flash::Geometry::new(1, 16, 8, 4096);
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.op_ratio = 0.30;
    cfg.gc.free_block_threshold = 0;
    cfg.gc.policy = policy;
    cfg
}

/// Same tiny array with the default low-water mark: GC runs early and
/// victims still hold live pages, so policy choice (which victim?) shows
/// up in relocation traffic.
fn tiny_headroom(policy: GcPolicyKind) -> SsdConfig {
    let mut cfg = tiny(policy);
    cfg.gc.free_block_threshold = 3;
    cfg
}

/// Fill every page, then overwrite the working set repeatedly; returns
/// (final time, writes done).
fn churn(ssd: &mut Ssd, rounds: u64) -> (SimTime, u64) {
    let pages = ssd.capacity().exported_pages;
    let working_set = pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..working_set {
        match ssd.write(t, Lpn(lpn)) {
            Ok(c) => t = c.done,
            Err(SsdError::DeviceFull { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut x = 13u64;
    let mut wrote = 0u64;
    for _ in 0..rounds * working_set {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        match ssd.write(t, Lpn(x % working_set)) {
            Ok(c) => {
                t = c.done;
                wrote += 1;
            }
            Err(SsdError::DeviceFull { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    (t, wrote)
}

#[test]
fn greedy_gc_runs_and_gate_blocks_reentry() {
    let mut ssd = Ssd::new(tiny(GcPolicyKind::Greedy));
    assert_eq!(ssd.gc_policy_name(), "greedy");
    let (mut t, wrote) = churn(&mut ssd, 30);
    let m = ssd.metrics();
    assert!(m.gc_runs > 0, "churn must trigger GC (wrote {wrote})");
    assert!(
        m.gc_reentries_blocked > 0,
        "zero-headroom churn must hit the re-entrancy gate at least once \
         (gc_runs {}, wrote {wrote})",
        m.gc_runs
    );
    // the gate blocked re-entry rather than recursing: the device is still
    // consistent — every page of the working set reads back from flash
    let pages = ssd.capacity().exported_pages;
    for lpn in 0..pages {
        let r = ssd.read(t, Lpn(lpn)).expect("read");
        t = r.done;
        assert_eq!(r.served, Served::Flash, "lpn {lpn} lost under GC churn");
    }
}

#[test]
fn cost_benefit_gc_is_selectable_and_exercised() {
    let mut ssd = Ssd::new(tiny_headroom(GcPolicyKind::CostBenefit));
    assert_eq!(ssd.gc_policy_name(), "cost-benefit");
    let (mut t, wrote) = churn(&mut ssd, 30);
    let m = ssd.metrics();
    assert!(
        m.gc_runs > 0,
        "cost-benefit churn must trigger GC (wrote {wrote})"
    );
    assert!(m.gc_pages_moved > 0, "collections must relocate live pages");
    let pages = ssd.capacity().exported_pages;
    for lpn in 0..pages {
        let r = ssd.read(t, Lpn(lpn)).expect("read");
        t = r.done;
        assert_eq!(r.served, Served::Flash, "lpn {lpn} lost under GC churn");
    }
}

#[test]
fn gc_policies_disagree_on_victims() {
    // same workload, different policy ⇒ different GC decisions somewhere:
    // the policy is really consulted, not a config no-op
    let mut greedy = Ssd::new(tiny_headroom(GcPolicyKind::Greedy));
    let mut cb = Ssd::new(tiny_headroom(GcPolicyKind::CostBenefit));
    churn(&mut greedy, 30);
    churn(&mut cb, 30);
    let (g, c) = (greedy.metrics(), cb.metrics());
    assert!(g.gc_runs > 0 && c.gc_runs > 0);
    assert!(
        g.gc_pages_moved != c.gc_pages_moved || g.flash_erases.gc != c.flash_erases.gc,
        "greedy and cost-benefit GC produced identical traffic \
         (moved {} vs {}, erases {} vs {}) — policy not plugged in?",
        g.gc_pages_moved,
        c.gc_pages_moved,
        g.flash_erases.gc,
        c.flash_erases.gc
    );
}

#[test]
fn custom_buffer_policy_can_be_injected() {
    // a buffered config downgraded to write-through via the injection hook
    let mut ssd = Ssd::new(SsdConfig::modern());
    assert_eq!(ssd.buffer_policy_name(), "battery-backed");
    ssd.set_buffer_policy(Box::new(WriteThrough));
    assert_eq!(ssd.buffer_policy_name(), "write-through");
    let w = ssd.write(SimTime::ZERO, Lpn(1)).unwrap();
    // write-through acknowledges only at flash-program completion
    assert_eq!(w.served, Served::Flash);
    let r = ssd.read(w.done, Lpn(1)).unwrap();
    assert_eq!(r.served, Served::Flash, "no RAM residency without a buffer");
}
