//! End-of-life behaviour: accelerated-aging tests that drive blocks past
//! rated endurance and check that the controller's error handling —
//! erase-failure retirement, program-failure salvage, ECC recovery — keeps
//! the device correct while capacity shrinks.

use requiem_sim::time::SimTime;
use requiem_ssd::{BufferConfig, Lpn, Served, Ssd, SsdConfig, SsdError};

/// A tiny device whose blocks wear out after ~30 P/E cycles.
fn short_lived() -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    cfg.flash.geometry = requiem_flash::Geometry::new(1, 16, 8, 4096);
    cfg.flash.endurance_override = Some(30);
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.op_ratio = 0.25;
    cfg
}

#[test]
fn device_retires_blocks_and_keeps_data_correct_past_endurance() {
    let mut ssd = Ssd::new(short_lived());
    let pages = ssd.capacity().exported_pages;
    let working_set = pages / 2;
    let mut t = SimTime::ZERO;
    // fill the working set
    for lpn in 0..working_set {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    // churn far past rated endurance (30 cycles); stop on DeviceFull
    let mut x = 7u64;
    let mut wrote = 0u64;
    let mut full = false;
    for _ in 0..200 * pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        match ssd.write(t, Lpn(x % working_set)) {
            Ok(c) => {
                t = c.done;
                wrote += 1;
            }
            Err(SsdError::DeviceFull { .. }) => {
                full = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let m = ssd.metrics();
    assert!(
        m.blocks_retired > 0,
        "churn past endurance must retire blocks (wrote {wrote})"
    );
    // whatever survives must still be readable (from flash, not unmapped)
    if !full {
        for lpn in 0..working_set {
            let r = ssd.read(t, Lpn(lpn)).expect("read");
            t = r.done;
            assert_eq!(r.served, Served::Flash, "lpn {lpn} lost after wear-out");
        }
    }
    let (_, max_ec, _) = ssd.wear_spread();
    assert!(
        max_ec > 30,
        "blocks should have been cycled past rated endurance (max {max_ec})"
    );
}

#[test]
fn worn_device_reports_uncorrectable_reads_but_recovers() {
    // wear raises RBER exponentially; with a weak ECC the device must see
    // uncorrectable reads and recover via (modelled) redundancy
    let mut cfg = short_lived();
    // drastically undersized ECC: reads start failing around 80% of rated
    // wear, well before blocks retire
    cfg.flash.ecc = requiem_flash::EccConfig {
        correctable_per_1k: 2,
        scheme: requiem_flash::ecc::EccScheme::Bch,
    };
    cfg.flash.endurance_override = Some(10);
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let working_set = pages / 2;
    let mut t = SimTime::ZERO;
    for lpn in 0..working_set {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let mut x = 3u64;
    for _ in 0..40 * pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        match ssd.write(t, Lpn(x % working_set)) {
            Ok(c) => t = c.done,
            Err(SsdError::DeviceFull { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        // interleave reads so the worn blocks actually get read
        match ssd.read(t, Lpn(x % working_set)) {
            Ok(c) => t = c.done,
            Err(e) => panic!("read error: {e}"),
        }
    }
    let m = ssd.metrics();
    assert!(
        m.uncorrectable_reads > 0,
        "a worn device with weak ECC must hit uncorrectable reads"
    );
    // and the API never surfaced them as failures — the controller's job
    assert!(m.host_reads > 0);
}

#[test]
fn static_wear_leveling_narrows_the_erase_spread() {
    // hot/cold split: half the LBAs are written once and never touched
    // (cold), the other half churn. Without static WL the cold blocks
    // freeze at low erase counts; with it they re-enter circulation.
    let spread = |static_threshold: u32| -> (u32, u32) {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 1;
        cfg.flash.geometry = requiem_flash::Geometry::new(1, 32, 8, 4096);
        cfg.buffer = BufferConfig { capacity_pages: 0 };
        cfg.op_ratio = 0.25;
        cfg.wl.static_threshold = static_threshold;
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let mut t = SimTime::ZERO;
        for lpn in 0..pages {
            t = ssd.write(t, Lpn(lpn)).expect("fill").done;
        }
        // churn only the second half
        let hot_base = pages / 2;
        let mut x = 9u64;
        for _ in 0..30 * pages {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t = ssd
                .write(t, Lpn(hot_base + x % (pages - hot_base)))
                .expect("churn")
                .done;
        }
        let (min, max, _) = ssd.wear_spread();
        (min, max)
    };
    let (min_off, max_off) = spread(0);
    let (min_on, max_on) = spread(8);
    assert!(
        max_on - min_on < max_off - min_off,
        "static WL should narrow the spread: off ({min_off},{max_off}) on ({min_on},{max_on})"
    );
    assert!(
        min_on > min_off,
        "cold blocks must re-enter circulation: min {min_off} -> {min_on}"
    );
}

#[test]
fn read_disturb_scrubbing_caps_error_accumulation() {
    // a read-hot block accumulates disturb; with a weak ECC, uncorrectable
    // reads appear unless the controller scrubs
    let run = |scrub_after: u64| -> (u64, u64) {
        // TLC (disturb budget 100k reads/block) with a weak ECC: disturb
        // alone pushes reads past correctability within ~800k reads
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 1;
        cfg.flash = requiem_flash::FlashSpec::tlc_small();
        cfg.flash.geometry = requiem_flash::Geometry::new(1, 16, 8, 4096);
        cfg.flash.ecc = requiem_flash::EccConfig {
            correctable_per_1k: 2,
            scheme: requiem_flash::ecc::EccScheme::Bch,
        };
        cfg.buffer = BufferConfig { capacity_pages: 0 };
        cfg.op_ratio = 0.25;
        cfg.scrub_after_reads = scrub_after;
        let mut ssd = Ssd::new(cfg);
        let mut t = SimTime::ZERO;
        // write a handful of pages, then hammer them with reads
        for lpn in 0..8u64 {
            t = ssd.write(t, Lpn(lpn)).expect("fill").done;
        }
        for i in 0..1_200_000u64 {
            let r = ssd.read(t, Lpn(i % 8)).expect("read");
            t = r.done;
        }
        (ssd.metrics().uncorrectable_reads, ssd.metrics().scrubs)
    };
    let (errs_off, scrubs_off) = run(0);
    let (errs_on, scrubs_on) = run(100_000);
    assert_eq!(scrubs_off, 0);
    assert!(scrubs_on > 0, "scrubbing must have triggered");
    assert!(
        errs_off > 10 * errs_on.max(1),
        "scrubbing should cap disturb errors: off {errs_off} on {errs_on}"
    );
}

#[test]
fn scrubbed_data_remains_readable() {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.scrub_after_reads = 1_000;
    let mut ssd = Ssd::new(cfg);
    let mut t = SimTime::ZERO;
    for lpn in 0..32u64 {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    for i in 0..20_000u64 {
        let r = ssd.read(t, Lpn(i % 32)).expect("read");
        t = r.done;
        assert_eq!(r.served, Served::Flash, "read {i} lost data");
    }
    assert!(ssd.metrics().scrubs > 0);
}
