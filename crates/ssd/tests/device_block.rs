//! Behavioural tests of the block-mapped and hybrid (BAST) devices — the
//! pre-2009 FTLs for which the paper's myth 2 was actually true.

use requiem_sim::time::SimTime;
use requiem_ssd::{Lpn, Served, Ssd, SsdConfig};

fn seq_write(ssd: &mut Ssd, from: u64, n: u64) -> SimTime {
    let mut t = SimTime::ZERO;
    for lpn in from..from + n {
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    t
}

#[test]
fn block_ftl_sequential_writes_are_appends() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    seq_write(&mut ssd, 0, 2 * ppb);
    let m = ssd.metrics();
    assert_eq!(m.host_writes, 2 * ppb);
    // pure appends: one program per host write, no merges
    assert_eq!(m.flash_programs.total(), 2 * ppb);
    assert_eq!(m.merges_full, 0);
    assert!((m.write_amplification() - 1.0).abs() < 1e-9);
}

#[test]
fn block_ftl_rewrite_opens_replacement_then_merges_on_switch() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    // fill logical blocks 0 and 1
    let t = seq_write(&mut ssd, 0, 2 * ppb);
    let before = ssd.metrics().flash_programs.total();
    // rewrite page 0 of block 0 → opens a replacement block (cheap: one
    // program, no merge yet)
    let c = ssd.write(t, Lpn(0)).unwrap();
    assert_eq!(ssd.metrics().flash_programs.total() - before, 1);
    assert_eq!(ssd.metrics().merges_full, 0);
    // now rewrite inside logical block 1 → the open replacement for block
    // 0 must be finalized: copy the 15 remaining pages + erase = merge
    ssd.write(c.done, Lpn(ppb)).unwrap();
    let m = ssd.metrics();
    assert_eq!(m.merges_full, 1);
    let delta = m.flash_programs.total() - before;
    // host wrote 2 pages; the finalization copied ~ppb-1 pages
    assert!(
        delta >= ppb,
        "merge should copy most of block 0: {delta} programs"
    );
    assert_eq!(m.flash_erases.total(), 1);
}

#[test]
fn block_ftl_sequential_overwrite_is_cheap_via_replacement() {
    // the historical asymmetry: a full in-order rewrite of a block is a
    // "switch" (no copies), while random rewrites thrash merges
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    let t = seq_write(&mut ssd, 0, 2 * ppb);
    let before = ssd.metrics().flash_programs.total();
    // rewrite all of block 0 in order, then touch block 1 to finalize
    let mut t = t;
    for lpn in 0..ppb {
        t = ssd.write(t, Lpn(lpn)).unwrap().done;
    }
    t = ssd.write(t, Lpn(ppb)).unwrap().done;
    let _ = t;
    let m = ssd.metrics();
    let delta = m.flash_programs.total() - before;
    // ppb rewrites + 1 write to block 1 + zero merge copies
    assert_eq!(delta, ppb + 1, "in-order rewrite must not copy");
    assert_eq!(m.merges_switch, 1, "finalization should be a switch merge");
}

#[test]
fn block_ftl_random_writes_have_huge_write_amplification() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    // fill 4 logical blocks, then rewrite random pages within them
    let mut t = seq_write(&mut ssd, 0, 4 * ppb);
    let mut lpn = 7u64;
    for _ in 0..32 {
        lpn = (lpn * 1103515245 + 12345) % (4 * ppb);
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    let m = ssd.metrics();
    // myth 2, pre-2009: WA explodes under random rewrites
    assert!(
        m.write_amplification() > 4.0,
        "expected catastrophic WA, got {}",
        m.write_amplification()
    );
    assert!(m.merges_full >= 16);
}

#[test]
fn block_ftl_data_integrity_after_merges() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    let mut t = seq_write(&mut ssd, 0, ppb);
    // rewrite a few pages (each forces a merge), then read everything back
    for lpn in [0u64, 3, 7, 3] {
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    for lpn in 0..ppb {
        let r = ssd.read(t, Lpn(lpn)).unwrap();
        t = r.done;
        assert_eq!(r.served, Served::Flash, "lpn {lpn} lost after merge");
    }
}

#[test]
fn hybrid_sequential_rewrite_uses_switch_merge() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_hybrid());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    // fill logical block 0, then rewrite it fully, in order → the log
    // block fills perfectly in order and becomes the data block
    let mut t = seq_write(&mut ssd, 0, ppb);
    for lpn in 0..ppb {
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    // force the merge by writing the block a third time (first write of
    // the third round needs log space for block 0 again)
    let c = ssd.write(t, Lpn(0)).unwrap();
    t = c.done;
    let m = ssd.metrics();
    assert!(
        m.merges_switch >= 1,
        "in-order rewrite should switch-merge (switch={}, full={})",
        m.merges_switch,
        m.merges_full
    );
    // and data must survive
    for lpn in 1..ppb {
        let r = ssd.read(t, Lpn(lpn)).unwrap();
        t = r.done;
        assert_eq!(r.served, Served::Flash, "lpn {lpn} lost");
    }
}

#[test]
fn hybrid_random_writes_thrash_log_pool_into_full_merges() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_hybrid());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    // fill 32 logical blocks; the log pool holds only 8
    let mut t = seq_write(&mut ssd, 0, 32 * ppb);
    let mut lpn = 13u64;
    for _ in 0..128 {
        lpn = lpn
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            % (32 * ppb);
        let c = ssd.write(t, Lpn(lpn)).unwrap();
        t = c.done;
    }
    let m = ssd.metrics();
    assert!(
        m.merges_full > 0,
        "log-pool thrashing must force full merges"
    );
    assert!(
        m.write_amplification() > 1.5,
        "hybrid random WA should be clearly above 1: {}",
        m.write_amplification()
    );
}

#[test]
fn hybrid_vs_block_sequential_equivalent() {
    // sequential workloads should be cheap on both legacy FTLs
    for cfg in [
        SsdConfig::circa_2009_block(),
        SsdConfig::circa_2009_hybrid(),
    ] {
        let mut ssd = Ssd::new(cfg);
        let ppb = ssd.config().flash.geometry.pages_per_block as u64;
        seq_write(&mut ssd, 0, 8 * ppb);
        let wa = ssd.metrics().write_amplification();
        assert!((wa - 1.0).abs() < 0.05, "sequential WA should be ~1: {wa}");
    }
}

#[test]
fn hybrid_reads_see_newest_version_in_log() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_hybrid());
    let ppb = ssd.config().flash.geometry.pages_per_block as u64;
    let mut t = seq_write(&mut ssd, 0, ppb);
    // rewrite lpn 5 twice — latest version lives in the log block
    for _ in 0..2 {
        let c = ssd.write(t, Lpn(5)).unwrap();
        t = c.done;
    }
    let r = ssd.read(t, Lpn(5)).unwrap();
    assert_eq!(r.served, Served::Flash);
    // no way to observe payload through the block interface — but the
    // device's internal consistency asserts (debug) and metrics do:
    let m = ssd.metrics();
    assert_eq!(m.host_reads, 1);
}

#[test]
fn trim_works_on_legacy_ftls() {
    for cfg in [
        SsdConfig::circa_2009_block(),
        SsdConfig::circa_2009_hybrid(),
    ] {
        let mut ssd = Ssd::new(cfg);
        let mut t = seq_write(&mut ssd, 0, 8);
        let c = ssd.trim(t, Lpn(3)).unwrap();
        t = c.done;
        let r = ssd.read(t, Lpn(3)).unwrap();
        assert_eq!(r.served, Served::Unmapped);
        let r = ssd.read(r.done, Lpn(4)).unwrap();
        assert_eq!(r.served, Served::Flash);
    }
}
