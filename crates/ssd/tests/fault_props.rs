//! Property tests for deterministic fault injection: a faulty run is a
//! *function of its seed* — replaying the same [`FaultPlan`] over the
//! same workload reproduces every completion instant, every status, and
//! every recovery counter bit-for-bit; a zero-fault plan is
//! indistinguishable from no plan at all; and the probe bus's span
//! tiling invariant survives the recovery ladder's extra occupancy.

use proptest::prelude::*;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, FaultPlan, IoStatus, Probe, SpanEvent};
use requiem_ssd::{BufferConfig, Lpn, Ssd, SsdConfig};

#[derive(Debug, Clone)]
enum HostOp {
    Write(u64),
    Read(u64),
    Trim(u64),
}

fn ops() -> impl Strategy<Value = Vec<HostOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..128u64).prop_map(HostOp::Write),
            3 => (0..128u64).prop_map(HostOp::Read),
            1 => (0..128u64).prop_map(HostOp::Trim),
        ],
        1..120,
    )
}

/// A small two-LUN write-through device carrying `plan`.
fn small_cfg(plan: FaultPlan) -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.fault = plan;
    cfg
}

/// Drive `ops` and fold every observable into a replayable trace string:
/// completion instants, statuses, serving layer, and (at the end) the
/// full metrics including the recovery pipeline counters.
fn trace(cfg: SsdConfig, ops: &[HostOp]) -> Vec<String> {
    let mut ssd = Ssd::new(cfg);
    let space = 128u64.min(ssd.capacity().exported_pages);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(ops.len() + 1);
    for op in ops {
        let line = match op {
            HostOp::Write(lpn) => match ssd.write(t, Lpn(lpn % space)) {
                Ok(c) => {
                    t = c.done;
                    format!(
                        "w {} {:?} {:?} {:?}",
                        lpn % space,
                        c.done,
                        c.served,
                        c.status
                    )
                }
                Err(e) => format!("w {} err {e}", lpn % space),
            },
            HostOp::Read(lpn) => match ssd.read(t, Lpn(lpn % space)) {
                Ok(c) => {
                    t = c.done;
                    format!(
                        "r {} {:?} {:?} {:?}",
                        lpn % space,
                        c.done,
                        c.served,
                        c.status
                    )
                }
                Err(e) => format!("r {} err {e}", lpn % space),
            },
            HostOp::Trim(lpn) => match ssd.trim(t, Lpn(lpn % space)) {
                Ok(c) => {
                    t = c.done;
                    format!("t {} {:?} {:?}", lpn % space, c.done, c.status)
                }
                Err(e) => format!("t {} err {e}", lpn % space),
            },
        };
        out.push(line);
    }
    out.push(format!("drain {:?}", ssd.drain_time()));
    out.push(format!("metrics {:?}", ssd.metrics()));
    out
}

proptest! {
    /// A seeded fault plan replays bit-identically: same seed, same
    /// workload → same completions, statuses, and recovery counters.
    #[test]
    fn fault_injected_runs_replay_bit_identically(
        seed in 0u64..1_000,
        mult_idx in 0usize..3,
        program_fails in 0u32..4,
        erase_fails in 0u32..3,
        hiccups in 0u32..3,
        ops in ops(),
    ) {
        let mult = [5.0e4, 1.0e5, 3.0e5][mult_idx];
        let plan = FaultPlan::seeded(seed, 2, 2, mult, program_fails, erase_fails, hiccups, 4096);
        let a = trace(small_cfg(plan.clone()), &ops);
        let b = trace(small_cfg(plan), &ops);
        prop_assert_eq!(a, b, "two runs of one plan diverged");
    }

    /// A seeded plan with unit multiplier and zero scheduled faults is
    /// byte-identical to [`FaultPlan::none`] — the identity plan really
    /// is the identity, schedules and all.
    #[test]
    fn zero_fault_plan_is_the_identity(seed in 0u64..1_000, ops in ops()) {
        let empty = FaultPlan::seeded(seed, 2, 2, 1.0, 0, 0, 0, 4096);
        prop_assert!(empty.is_none(), "zero-count seeded plan must be none");
        let a = trace(small_cfg(empty), &ops);
        let b = trace(small_cfg(FaultPlan::none()), &ops);
        prop_assert_eq!(a, b, "zero-fault plan changed behaviour");
    }
}

/// Assert the spans attributed to command `id` tile `[submit, done)`
/// contiguously (no gap, no overlap) and return them.
fn assert_tiles(probe: &Probe, id: u64) -> Vec<SpanEvent> {
    let cmds = probe.commands_ref();
    let rec = cmds.iter().find(|c| c.id == id).expect("command recorded");
    let done = rec.done.expect("command closed");
    let spans = probe.command_spans(id);
    assert!(!spans.is_empty(), "command {id} has no spans");
    let mut cursor = rec.submit;
    for s in &spans {
        assert_eq!(
            s.start, cursor,
            "gap/overlap before {:?}/{:?} span at {} (cursor {cursor}) in cmd {id}",
            s.layer, s.cause, s.start
        );
        cursor = s.end;
    }
    assert_eq!(cursor, done, "spans do not reach the completion instant");
    let total: SimDuration = spans
        .iter()
        .map(SpanEvent::duration)
        .fold(SimDuration::ZERO, |a, b| a + b);
    assert_eq!(
        total,
        done.since(rec.submit),
        "span durations must sum to end-to-end latency of cmd {id}"
    );
    spans
}

/// With RBER elevated into the retry band, recovered reads still tile
/// their `[submit, done)` interval exactly — the ladder's rungs are
/// attributed, not smeared.
#[test]
fn recovered_reads_tile_their_latency() {
    let mut cfg = small_cfg(FaultPlan::uniform_rber(1.0e5));
    cfg.shape.channels = 1; // single LUN: stage 3 impossible, but 1→2 engage
    cfg.shape.chips_per_channel = 1;
    let mut ssd = Ssd::new(cfg);
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());

    let mut t = SimTime::ZERO;
    for lpn in 0..16u64 {
        t = ssd.write(t, Lpn(lpn)).expect("write").done;
    }
    let mut recovered = 0u64;
    for lpn in 0..16u64 {
        let c = ssd.read(t, Lpn(lpn)).expect("read");
        t = c.done;
        let id = probe.commands_ref().last().expect("recorded").id;
        let spans = assert_tiles(&probe, id);
        if matches!(c.status, IoStatus::RecoveredAfterRetry { .. }) {
            recovered += 1;
            assert!(
                spans.iter().any(|s| s.cause == Cause::Recovery),
                "recovered read must carry Recovery spans"
            );
        }
    }
    assert!(recovered > 0, "RBER 1e5x must force recoveries");
    assert!(ssd.metrics().recovery.retry_recovered > 0);
}

/// Even reads that exhaust the whole ladder (peerless device, extreme
/// RBER → `Unrecoverable`) must tile — failure is a first-class,
/// fully-attributed outcome, not an accounting hole.
#[test]
fn unrecoverable_reads_tile_their_latency() {
    let mut cfg = small_cfg(FaultPlan::uniform_rber(1.0e7));
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 1;
    let mut ssd = Ssd::new(cfg);
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());

    let mut t = SimTime::ZERO;
    for lpn in 0..8u64 {
        t = ssd.write(t, Lpn(lpn)).expect("write").done;
    }
    let mut unrecoverable = 0u64;
    for lpn in 0..8u64 {
        let c = ssd.read(t, Lpn(lpn)).expect("read");
        t = c.done;
        let id = probe.commands_ref().last().expect("recorded").id;
        assert_tiles(&probe, id);
        if c.status == IoStatus::Unrecoverable {
            unrecoverable += 1;
        }
    }
    assert!(unrecoverable > 0, "extreme RBER with no peers must exhaust");
    assert_eq!(
        ssd.metrics().recovery.parity_rebuilds,
        0,
        "no peers to read"
    );
    let statuses = probe.summary().statuses;
    assert_eq!(statuses.get("unrecoverable"), Some(&unrecoverable));
}
