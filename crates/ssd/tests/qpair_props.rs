//! Property tests for the queue-pair engine: random mixed workloads at
//! queue depths up to 16 must preserve the three invariants the typed
//! command API promises:
//!
//! 1. commands against the **same LBA** complete in submission order
//!    (the in-flight window's hazard guard);
//! 2. every probe command's spans **tile** its `[submit, done)` exactly —
//!    out-of-order completion must not break the observability bus;
//! 3. the whole run is **deterministic**: same seed, same workload, same
//!    completions, byte for byte.

use proptest::prelude::*;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Probe;
use requiem_ssd::{IoRequest, Lpn, QueuePair, Ssd, SsdConfig};

const SPACE: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum HostOp {
    Read(u64),
    Write(u64),
}

impl HostOp {
    fn request(self) -> IoRequest {
        match self {
            HostOp::Read(l) => IoRequest::read(l % SPACE),
            HostOp::Write(l) => IoRequest::write(l % SPACE),
        }
    }
}

fn workload() -> impl Strategy<Value = Vec<HostOp>> {
    proptest::collection::vec(
        prop_oneof![
            1 => (0..SPACE).prop_map(HostOp::Read),
            1 => (0..SPACE).prop_map(HostOp::Write),
        ],
        1..120,
    )
}

fn device() -> Ssd {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 1;
    cfg.shape.chips_per_channel = 4;
    cfg.shape.luns_per_chip = 1;
    cfg.buffer.capacity_pages = 0;
    Ssd::new(cfg)
}

/// `(tag, lba, kind, submitted, done)` for every completion, in CQ pop
/// order — the run's observable behaviour, fingerprintable.
type Trace = Vec<(u64, u64, bool, u64, u64)>;

/// Drive `ops` through a queue pair at depth `qd` closed-loop; returns
/// the completion trace in pop order plus the recording probe.
fn run(qd: usize, ops: &[HostOp]) -> (Trace, Probe, SimTime) {
    let mut ssd = device();
    // precondition every LBA so reads always hit mapped pages
    let mut t = SimTime::ZERO;
    for lba in 0..SPACE {
        t = ssd.write(t, Lpn(lba)).expect("precondition").done;
    }
    let start = ssd.drain_time().max(t);
    let probe = Probe::recording();
    ssd.attach_probe(probe.clone());

    let mut qp = QueuePair::new(qd);
    let mut trace: Trace = Vec::new();
    let mut in_flight = 0usize;
    for op in ops {
        let now = if in_flight >= qd {
            let c = qp.pop().expect("at depth, completions pending");
            in_flight -= 1;
            trace.push((
                c.tag.0,
                c.lba,
                c.op == requiem_ssd::IoOp::Read,
                c.submitted.as_nanos(),
                c.done.as_nanos(),
            ));
            c.done
        } else {
            start
        };
        qp.submit(&mut ssd, now, op.request()).expect("submit");
        in_flight += 1;
    }
    while let Some(c) = qp.pop() {
        trace.push((
            c.tag.0,
            c.lba,
            c.op == requiem_ssd::IoOp::Read,
            c.submitted.as_nanos(),
            c.done.as_nanos(),
        ));
    }
    let drain = ssd.drain_time();
    (trace, probe, drain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_lba_completes_in_submission_order(qd in 1usize..17, ops in workload()) {
        let (trace, _probe, _drain) = run(qd, &ops);
        prop_assert_eq!(trace.len(), ops.len());
        // tags are assigned in submission order; within one LBA the pop
        // order must preserve it
        let mut last_tag: std::collections::HashMap<u64, u64> = Default::default();
        for (tag, lba, _read, _sub, _done) in &trace {
            if let Some(prev) = last_tag.insert(*lba, *tag) {
                prop_assert!(
                    prev < *tag,
                    "lba {} completed tag {} after tag {}",
                    lba, tag, prev
                );
            }
        }
        // and dones must be non-decreasing per LBA in submission order
        let mut by_tag: Vec<&(u64, u64, bool, u64, u64)> = trace.iter().collect();
        by_tag.sort_by_key(|e| e.0);
        let mut last_done: std::collections::HashMap<u64, u64> = Default::default();
        for (_, lba, _, _, done) in by_tag {
            if let Some(prev) = last_done.insert(*lba, *done) {
                prop_assert!(prev <= *done, "lba {} done regressed", lba);
            }
        }
    }

    #[test]
    fn spans_tile_every_command(qd in 1usize..17, ops in workload()) {
        let (trace, probe, _drain) = run(qd, &ops);
        let cmds = probe.commands_ref();
        prop_assert_eq!(cmds.len(), trace.len(), "one probe command per request");
        for rec in cmds.iter() {
            let done = rec.done.expect("command closed");
            let spans = probe.command_spans(rec.id);
            let mut cursor = rec.submit;
            let mut total = SimDuration::ZERO;
            for s in &spans {
                prop_assert_eq!(
                    s.start, cursor,
                    "gap/overlap before {:?}/{:?} in probe cmd {}",
                    s.layer, s.cause, rec.id
                );
                cursor = s.end;
                total += s.duration();
            }
            prop_assert_eq!(cursor, done, "spans do not reach completion");
            prop_assert_eq!(
                total,
                done.since(rec.submit),
                "span sum != end-to-end latency"
            );
        }
    }

    #[test]
    fn same_seed_runs_are_byte_identical(qd in 1usize..17, ops in workload()) {
        let (a, _pa, da) = run(qd, &ops);
        let (b, _pb, db) = run(qd, &ops);
        prop_assert_eq!(a, b, "completion traces diverged");
        prop_assert_eq!(da, db, "drain times diverged");
    }
}
