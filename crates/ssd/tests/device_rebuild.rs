//! Power-loss mapping rebuild: the page-FTL boot scan (the startup cost
//! that motivated DFTL) must reconstruct the exact pre-crash mapping from
//! out-of-band metadata, newest write winning.

use requiem_sim::time::SimTime;
use requiem_ssd::{BufferConfig, Lpn, Served, Ssd, SsdConfig};

fn device() -> Ssd {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    cfg.buffer = BufferConfig { capacity_pages: 32 };
    Ssd::new(cfg)
}

#[test]
fn rebuild_reconstructs_the_exact_mapping() {
    let mut ssd = device();
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    // scattered writes including overwrites (duplicates on flash!)
    let mut x = 11u64;
    for _ in 0..pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        t = ssd.write(t, Lpn(x % (pages / 2))).expect("write").done;
    }
    let before = ssd.debug_mapping().expect("page map");
    let t = ssd.drain_time();
    let report = ssd.power_loss_rebuild(t).expect("rebuild");
    let after = ssd.debug_mapping().expect("page map");
    assert_eq!(before, after, "rebuilt mapping must match the lost one");
    assert!(report.pages_scanned > 0);
    assert!(report.duration > requiem_sim::time::SimDuration::ZERO);
    // device remains fully usable
    let mut t = report.ready;
    for lpn in 0..pages / 2 {
        let r = ssd.read(t, Lpn(lpn)).expect("read");
        t = r.done;
        if before[lpn as usize].is_some() {
            assert_eq!(r.served, Served::Flash, "lpn {lpn}");
        } else {
            assert_eq!(r.served, Served::Unmapped, "lpn {lpn}");
        }
    }
    // and writable (free lists were rebuilt sanely)
    for lpn in 0..64u64 {
        t = ssd.write(t, Lpn(lpn)).expect("post-rebuild write").done;
    }
}

#[test]
fn rebuild_survives_gc_history() {
    // after heavy churn + GC, flash holds many stale copies; the seq
    // numbers must still pick every winner correctly
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 1;
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let mut x = 3u64;
    for _ in 0..2 * pages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        t = ssd.write(t, Lpn(x % pages)).expect("churn").done;
    }
    assert!(ssd.metrics().gc_runs > 0);
    let before = ssd.debug_mapping().expect("page map");
    let report = ssd.power_loss_rebuild(ssd.drain_time()).expect("rebuild");
    assert_eq!(ssd.debug_mapping().expect("page map"), before);
    assert!(report.pages_scanned >= pages, "scan must cover live data");
}

#[test]
fn rebuild_time_scales_with_capacity() {
    // the DFTL motivation: boot scan grows with raw capacity
    let scan = |chips: u32| -> u64 {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = chips;
        cfg.buffer = BufferConfig { capacity_pages: 0 };
        let mut ssd = Ssd::new(cfg);
        let pages = ssd.capacity().exported_pages;
        let mut t = SimTime::ZERO;
        for lpn in 0..pages {
            t = ssd.write(t, Lpn(lpn)).expect("fill").done;
        }
        ssd.power_loss_rebuild(ssd.drain_time())
            .expect("rebuild")
            .duration
            .as_nanos()
    };
    let small = scan(1);
    let large = scan(4);
    // scan parallelizes across LUNs but each LUN holds the same share, so
    // duration stays roughly flat per-LUN; with 1 channel the *channel*
    // is idle (OOB reads skip transfers) — duration tracks per-LUN pages
    assert!(small > 0 && large > 0);
    // a same-size-per-lun device: duration within 2x either way
    assert!(
        large < small * 2 && small < large * 2,
        "small {small} large {large}"
    );
}

#[test]
fn rebuild_unsupported_for_legacy_ftls() {
    let mut ssd = Ssd::new(SsdConfig::circa_2009_block());
    let mut t = SimTime::ZERO;
    t = ssd.write(t, Lpn(0)).expect("write").done;
    assert!(ssd.power_loss_rebuild(ssd.drain_time().max(t)).is_err());
}
