//! The block directory: free lists, valid-page accounting, write frontiers.
//!
//! This is the controller-side bookkeeping behind the paper's Figure 2
//! "shared internal data structures": which blocks are free, which pages
//! are live (and for which LPN — mirroring the out-of-band metadata real
//! FTLs store), where each LUN's current write frontier is, and per-block
//! erase counts for wear-aware allocation.
//!
//! Host and GC writes use **separate active blocks** per LUN so garbage
//! collection always has a landing block even when the host stream is
//! starved for space.

use requiem_flash::{Geometry, PageAddr};
use serde::{Deserialize, Serialize};

use crate::addr::{Lpn, LunId, PhysPage};
use crate::config::GcPolicyKind;

/// Lifecycle state of a physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockUse {
    /// Erased and on the free list.
    Free,
    /// Currently an active write frontier.
    Open,
    /// Fully programmed.
    Full,
    /// Retired (wear-out or factory bad).
    Bad,
}

/// Which write stream is asking for space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Host writes (buffer flushes).
    Host,
    /// Garbage-collection relocations.
    Gc,
}

/// Controller-side bookkeeping for one physical block.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// Lifecycle state.
    pub state: BlockUse,
    /// Number of live pages.
    pub valid: u32,
    /// Per-page back-pointer: which LPN's data lives there (None = invalid
    /// or unwritten). Mirrors OOB metadata.
    pub backptrs: Vec<Option<Lpn>>,
    /// Erase count (C4 wear, mirrored from the chip).
    pub erase_count: u32,
    /// Monotonic stamp of when the block was last opened (cost-benefit age).
    pub opened_seq: u64,
}

struct LunDir {
    blocks: Vec<BlockInfo>,
    free: Vec<u32>,
    /// Indices of Full blocks — the GC candidate set. Kept in lockstep
    /// with the `state` transitions so victim picking walks candidates
    /// only instead of scanning every block; a `BTreeSet` iterates in
    /// index order, preserving the full scan's tie-breaks exactly.
    full: std::collections::BTreeSet<u32>,
    active_host: Option<(u32, u32)>, // (block index, next page)
    active_gc: Option<(u32, u32)>,
}

/// Directory over all LUNs of the device.
pub struct BlockDirectory {
    geom: Geometry,
    luns: Vec<LunDir>,
    seq: u64,
}

impl BlockDirectory {
    /// Create a directory for `luns` LUNs of identical geometry; every
    /// block starts free.
    pub fn new(luns: u32, geom: Geometry) -> Self {
        let per_lun = (0..luns)
            .map(|_| LunDir {
                blocks: (0..geom.total_blocks())
                    .map(|_| BlockInfo {
                        state: BlockUse::Free,
                        valid: 0,
                        backptrs: vec![None; geom.pages_per_block as usize],
                        erase_count: 0,
                        opened_seq: 0,
                    })
                    .collect(),
                free: (0..geom.total_blocks()).collect(),
                full: std::collections::BTreeSet::new(),
                active_host: None,
                active_gc: None,
            })
            .collect();
        BlockDirectory {
            geom,
            luns: per_lun,
            seq: 0,
        }
    }

    /// The geometry the directory was built with.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    fn lun(&self, l: LunId) -> &LunDir {
        &self.luns[l.0 as usize]
    }

    fn lun_mut(&mut self, l: LunId) -> &mut LunDir {
        &mut self.luns[l.0 as usize]
    }

    /// Number of free blocks in a LUN (active blocks not counted).
    pub fn free_blocks(&self, l: LunId) -> u32 {
        self.lun(l).free.len() as u32
    }

    /// Info for a block.
    pub fn block_info(&self, l: LunId, block_idx: u32) -> &BlockInfo {
        &self.lun(l).blocks[block_idx as usize]
    }

    /// Whether a LUN still has any usable space at all.
    pub fn exhausted(&self, l: LunId) -> bool {
        let d = self.lun(l);
        d.free.is_empty() && d.active_host.is_none() && d.active_gc.is_none()
    }

    /// Pop the free block with the lowest erase count (dynamic wear
    /// leveling) or simply the next one if `wear_aware` is false.
    fn pop_free(&mut self, l: LunId, wear_aware: bool) -> Option<u32> {
        let d = self.lun_mut(l);
        if d.free.is_empty() {
            return None;
        }
        let pos = if wear_aware {
            let mut best = 0usize;
            let mut best_ec = u32::MAX;
            for (i, &b) in d.free.iter().enumerate() {
                let ec = d.blocks[b as usize].erase_count;
                if ec < best_ec {
                    best_ec = ec;
                    best = i;
                }
            }
            best
        } else {
            d.free.len() - 1
        };
        Some(d.free.swap_remove(pos))
    }

    /// Allocate the next physical page on a LUN for the given stream,
    /// opening a fresh block from the free list when the frontier is full.
    ///
    /// Returns `None` when the LUN has no free block to open (caller must
    /// garbage-collect first). `newly_opened` reports whether a new block
    /// was opened (the device may want to log it).
    pub fn next_page(&mut self, l: LunId, stream: Stream, wear_aware: bool) -> Option<NextPage> {
        let ppb = self.geom.pages_per_block;
        // take current frontier
        let frontier = {
            let d = self.lun_mut(l);
            match stream {
                Stream::Host => d.active_host,
                Stream::Gc => d.active_gc,
            }
        };
        let (block_idx, page, opened) = match frontier {
            Some((b, p)) if p < ppb => (b, p, false),
            other => {
                // frontier missing or full: close it and open a new block
                if let Some((b, _)) = other {
                    let d = self.lun_mut(l);
                    d.blocks[b as usize].state = BlockUse::Full;
                    d.full.insert(b);
                }
                let nb = self.pop_free(l, wear_aware)?;
                self.seq += 1;
                let seq = self.seq;
                let d = self.lun_mut(l);
                d.blocks[nb as usize].state = BlockUse::Open;
                d.blocks[nb as usize].opened_seq = seq;
                (nb, 0, true)
            }
        };
        // advance frontier
        {
            let d = self.lun_mut(l);
            let slot = match stream {
                Stream::Host => &mut d.active_host,
                Stream::Gc => &mut d.active_gc,
            };
            *slot = Some((block_idx, page + 1));
            if page + 1 >= ppb {
                d.blocks[block_idx as usize].state = BlockUse::Full;
                d.full.insert(block_idx);
            }
        }
        let addr = self.geom.addr(requiem_flash::Ppn(
            block_idx as u64 * ppb as u64 + page as u64,
        ));
        Some(NextPage {
            phys: PhysPage { lun: l, addr },
            newly_opened: opened,
        })
    }

    /// Record that `phys` now holds live data for `lpn`.
    pub fn mark_valid(&mut self, phys: PhysPage, lpn: Lpn) {
        let geom = self.geom.clone();
        let bidx = geom.block_index(geom.block_of(phys.addr)) as usize;
        let d = self.lun_mut(phys.lun);
        let info = &mut d.blocks[bidx];
        debug_assert!(
            info.backptrs[phys.addr.page as usize].is_none(),
            "double mark_valid on {:?}",
            phys
        );
        info.backptrs[phys.addr.page as usize] = Some(lpn);
        info.valid += 1;
    }

    /// Record that `phys` no longer holds live data (overwrite or trim).
    pub fn invalidate(&mut self, phys: PhysPage) {
        let geom = self.geom.clone();
        let bidx = geom.block_index(geom.block_of(phys.addr)) as usize;
        let d = self.lun_mut(phys.lun);
        let info = &mut d.blocks[bidx];
        debug_assert!(
            info.backptrs[phys.addr.page as usize].is_some(),
            "invalidate of already-invalid page {:?}",
            phys
        );
        info.backptrs[phys.addr.page as usize] = None;
        info.valid = info.valid.saturating_sub(1);
    }

    /// Invalidate `phys` only if it currently holds live data for `lpn`.
    /// Returns whether an invalidation happened. Used by the hybrid FTL,
    /// whose log-block `latest[]` pointers can outlive a trim.
    pub fn invalidate_checked(&mut self, phys: PhysPage, lpn: Lpn) -> bool {
        let geom = self.geom.clone();
        let bidx = geom.block_index(geom.block_of(phys.addr)) as usize;
        let d = self.lun_mut(phys.lun);
        let info = &mut d.blocks[bidx];
        if info.backptrs[phys.addr.page as usize] == Some(lpn) {
            info.backptrs[phys.addr.page as usize] = None;
            info.valid = info.valid.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Live pages of a block, in page order, with the LPN each holds.
    pub fn live_pages(&self, l: LunId, block_idx: u32) -> Vec<(PageAddr, Lpn)> {
        let info = &self.lun(l).blocks[block_idx as usize];
        let baddr = self.geom.block_from_index(block_idx);
        info.backptrs
            .iter()
            .enumerate()
            .filter_map(|(p, lpn)| {
                lpn.map(|lpn| {
                    (
                        PageAddr {
                            plane: baddr.plane,
                            block: baddr.block,
                            page: p as u32,
                        },
                        lpn,
                    )
                })
            })
            .collect()
    }

    /// Return an erased block to the free pool, bumping its erase count.
    pub fn recycle(&mut self, l: LunId, block_idx: u32) {
        let d = self.lun_mut(l);
        let info = &mut d.blocks[block_idx as usize];
        debug_assert!(info.valid == 0, "recycling block with live pages");
        debug_assert!(info.state != BlockUse::Bad);
        info.state = BlockUse::Free;
        info.erase_count += 1;
        info.backptrs.iter_mut().for_each(|b| *b = None);
        d.full.remove(&block_idx);
        d.free.push(block_idx);
        // clear a frontier that pointed at this block (possible for merges)
        if let Some((b, _)) = d.active_host {
            if b == block_idx {
                d.active_host = None;
            }
        }
        if let Some((b, _)) = d.active_gc {
            if b == block_idx {
                d.active_gc = None;
            }
        }
    }

    /// Retire a block (wear-out). Any frontier pointing at it is cleared.
    pub fn retire(&mut self, l: LunId, block_idx: u32) {
        let d = self.lun_mut(l);
        d.blocks[block_idx as usize].state = BlockUse::Bad;
        d.full.remove(&block_idx);
        d.free.retain(|&b| b != block_idx);
        if let Some((b, _)) = d.active_host {
            if b == block_idx {
                d.active_host = None;
            }
        }
        if let Some((b, _)) = d.active_gc {
            if b == block_idx {
                d.active_gc = None;
            }
        }
    }

    /// Rebuild support: set a block's erase count from chip-held state.
    pub fn set_erase_count(&mut self, l: LunId, block_idx: u32, count: u32) {
        self.lun_mut(l).blocks[block_idx as usize].erase_count = count;
    }

    /// Rebuild support: mark a block as occupied (Full) and remove it from
    /// the free list — used when a boot scan finds programmed pages in it.
    pub fn claim_full(&mut self, l: LunId, block_idx: u32) {
        let d = self.lun_mut(l);
        d.blocks[block_idx as usize].state = BlockUse::Full;
        d.full.insert(block_idx);
        d.free.retain(|&b| b != block_idx);
    }

    /// Allocate a whole free block (block-mapped and hybrid FTLs manage
    /// their own write points). The block is marked [`BlockUse::Open`].
    pub fn alloc_block(&mut self, l: LunId, wear_aware: bool) -> Option<u32> {
        let b = self.pop_free(l, wear_aware)?;
        self.seq += 1;
        let seq = self.seq;
        let d = self.lun_mut(l);
        d.blocks[b as usize].state = BlockUse::Open;
        d.blocks[b as usize].opened_seq = seq;
        Some(b)
    }

    /// Pick a GC victim among Full blocks of a LUN. Active frontiers are
    /// never victims. Returns the block index.
    pub fn pick_victim(&self, l: LunId, policy: GcPolicyKind) -> Option<u32> {
        let d = self.lun(l);
        let ppb = self.geom.pages_per_block as f64;
        let mut best: Option<(u32, f64)> = None;
        // walk the Full-block index (ascending block order, so ties keep
        // the lowest index exactly as the old whole-LUN scan did)
        for &i in &d.full {
            let info = &d.blocks[i as usize];
            debug_assert_eq!(info.state, BlockUse::Full, "stale full-set entry");
            // a full block with every page valid yields nothing (greedy);
            // cost-benefit may still skip it via u=1 guard
            let score = match policy {
                GcPolicyKind::Greedy => -(info.valid as f64),
                GcPolicyKind::CostBenefit => {
                    let u = info.valid as f64 / ppb;
                    if u >= 1.0 {
                        f64::NEG_INFINITY
                    } else {
                        let age = (self.seq - info.opened_seq) as f64 + 1.0;
                        age * (1.0 - u) / (2.0 * u.max(1.0 / (2.0 * ppb)))
                    }
                }
            };
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((i, score)),
            }
        }
        // never pick a fully-valid block under greedy either: it frees no
        // space and erases forever
        best.and_then(|(i, _)| {
            if d.blocks[i as usize].valid >= self.geom.pages_per_block {
                None
            } else {
                Some(i)
            }
        })
    }

    /// Total valid pages on a LUN.
    pub fn lun_valid_pages(&self, l: LunId) -> u64 {
        self.lun(l).blocks.iter().map(|b| b.valid as u64).sum()
    }

    /// `(min, max, mean)` erase counts across all blocks of all LUNs.
    pub fn erase_count_spread(&self) -> (u32, u32, f64) {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for d in &self.luns {
            for b in &d.blocks {
                if b.state == BlockUse::Bad {
                    continue;
                }
                min = min.min(b.erase_count);
                max = max.max(b.erase_count);
                sum += b.erase_count as u64;
                n += 1;
            }
        }
        if n == 0 {
            (0, 0, 0.0)
        } else {
            (min, max, sum as f64 / n as f64)
        }
    }

    /// The coldest Full block of a LUN (lowest erase count) — static wear
    /// leveling migration source.
    pub fn coldest_full_block(&self, l: LunId) -> Option<u32> {
        let d = self.lun(l);
        // ascending full-set order keeps the lowest-index tie-break of
        // the whole-LUN scan this replaced
        d.full
            .iter()
            .min_by_key(|&&i| d.blocks[i as usize].erase_count)
            .copied()
    }

    /// Current monotonic sequence stamp.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Result of [`BlockDirectory::next_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextPage {
    /// The allocated physical page.
    pub phys: PhysPage,
    /// Whether a fresh block was opened for it.
    pub newly_opened: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> BlockDirectory {
        BlockDirectory::new(2, Geometry::new(1, 8, 4, 4096))
    }

    #[test]
    fn allocation_is_sequential_within_block() {
        let mut d = dir();
        let l = LunId(0);
        let a = d.next_page(l, Stream::Host, true).unwrap();
        let b = d.next_page(l, Stream::Host, true).unwrap();
        assert_eq!(a.phys.addr.block, b.phys.addr.block);
        assert_eq!(a.phys.addr.page, 0);
        assert_eq!(b.phys.addr.page, 1);
        assert!(a.newly_opened);
        assert!(!b.newly_opened);
    }

    #[test]
    fn full_frontier_opens_new_block() {
        let mut d = dir();
        let l = LunId(0);
        let mut blocks_seen = std::collections::BTreeSet::new();
        for _ in 0..8 {
            // 2 blocks worth (4 pages per block)
            let n = d.next_page(l, Stream::Host, true).unwrap();
            blocks_seen.insert(n.phys.addr.block);
        }
        assert_eq!(blocks_seen.len(), 2);
        assert_eq!(d.free_blocks(l), 6);
    }

    #[test]
    fn host_and_gc_streams_use_distinct_blocks() {
        let mut d = dir();
        let l = LunId(0);
        let h = d.next_page(l, Stream::Host, true).unwrap();
        let g = d.next_page(l, Stream::Gc, true).unwrap();
        assert_ne!(h.phys.addr.block, g.phys.addr.block);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut d = dir();
        let l = LunId(0);
        for _ in 0..32 {
            d.next_page(l, Stream::Host, true).unwrap();
        }
        assert!(d.next_page(l, Stream::Host, true).is_none());
    }

    #[test]
    fn valid_accounting_roundtrip() {
        let mut d = dir();
        let l = LunId(0);
        let n = d.next_page(l, Stream::Host, true).unwrap();
        d.mark_valid(n.phys, Lpn(7));
        let bidx = 0u32;
        assert_eq!(d.block_info(l, bidx).valid, 1);
        let live = d.live_pages(l, bidx);
        assert_eq!(live, vec![(n.phys.addr, Lpn(7))]);
        d.invalidate(n.phys);
        assert_eq!(d.block_info(l, bidx).valid, 0);
        assert!(d.live_pages(l, bidx).is_empty());
    }

    #[test]
    fn greedy_victim_prefers_fewest_valid() {
        let mut d = dir();
        let l = LunId(0);
        // fill two blocks: block A with 4 valid, block B with 1 valid
        let mut pages = Vec::new();
        for i in 0..8 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
            pages.push(n.phys);
        }
        // invalidate 3 pages of the second block
        for p in &pages[4..7] {
            d.invalidate(*p);
        }
        let victim = d.pick_victim(l, GcPolicyKind::Greedy).unwrap();
        // geometry has 1 plane, so block index == block coordinate
        assert_eq!(victim, pages[4].addr.block);
    }

    #[test]
    fn fully_valid_only_means_no_victim() {
        let mut d = dir();
        let l = LunId(0);
        for i in 0..4 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
        }
        // one full block, all valid → nothing worth collecting
        assert_eq!(d.pick_victim(l, GcPolicyKind::Greedy), None);
    }

    #[test]
    fn cost_benefit_prefers_older_when_equally_empty() {
        let mut d = dir();
        let l = LunId(0);
        let mut pages = Vec::new();
        for i in 0..8 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
            pages.push(n.phys);
        }
        // both blocks now Full; invalidate 2 pages in each (same utilization)
        d.invalidate(pages[0]);
        d.invalidate(pages[1]);
        d.invalidate(pages[4]);
        d.invalidate(pages[5]);
        // block 0 was opened earlier (older) → cost-benefit picks it
        assert_eq!(d.pick_victim(l, GcPolicyKind::CostBenefit), Some(0));
    }

    #[test]
    fn recycle_returns_block_to_free_pool_and_counts_wear() {
        let mut d = dir();
        let l = LunId(0);
        for i in 0..4 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
        }
        for i in 0..4 {
            d.invalidate(PhysPage {
                lun: l,
                addr: d.geometry().page_addr(0, 0, i),
            });
        }
        assert_eq!(d.free_blocks(l), 7);
        d.recycle(l, 0);
        assert_eq!(d.free_blocks(l), 8);
        assert_eq!(d.block_info(l, 0).erase_count, 1);
        assert_eq!(d.block_info(l, 0).state, BlockUse::Free);
    }

    #[test]
    fn wear_aware_allocation_prefers_low_erase_count() {
        let mut d = dir();
        let l = LunId(0);
        // cycle block through the free list with extra wear
        for i in 0..4 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
        }
        for i in 0..4 {
            d.invalidate(PhysPage {
                lun: l,
                addr: d.geometry().page_addr(0, 0, i),
            });
        }
        d.recycle(l, 0); // block 0 now has erase_count 1
        let n = d.next_page(l, Stream::Gc, true).unwrap();
        // must pick one of the fresh blocks, not block 0
        assert_ne!(n.phys.addr.block, 0);
    }

    #[test]
    fn retire_removes_from_free_pool() {
        let mut d = dir();
        let l = LunId(1);
        d.retire(l, 3);
        assert_eq!(d.free_blocks(l), 7);
        assert_eq!(d.block_info(l, 3).state, BlockUse::Bad);
        let (_, _, _) = d.erase_count_spread(); // bad blocks excluded
    }

    #[test]
    fn erase_spread_tracks_min_max() {
        let mut d = dir();
        let l = LunId(0);
        for i in 0..4 {
            let n = d.next_page(l, Stream::Host, true).unwrap();
            d.mark_valid(n.phys, Lpn(i));
        }
        for i in 0..4 {
            d.invalidate(PhysPage {
                lun: l,
                addr: d.geometry().page_addr(0, 0, i),
            });
        }
        d.recycle(l, 0);
        let (min, max, mean) = d.erase_count_spread();
        assert_eq!(min, 0);
        assert_eq!(max, 1);
        assert!(mean > 0.0 && mean < 1.0);
    }
}
