//! SSD configuration: array shape, FTL scheme, buffer, GC, placement.
//!
//! Presets reconstruct the device generations the paper contrasts:
//!
//! * [`SsdConfig::circa_2009_block`] — the pre-2009 device for which
//!   *"random writes are extremely costly"* was actually true: block-mapped
//!   FTL, slow bus, no write buffer.
//! * [`SsdConfig::circa_2009_hybrid`] — the same hardware with a BAST-style
//!   hybrid log-block FTL (slightly better, still collapses under random
//!   writes).
//! * [`SsdConfig::modern`] — the c. 2012 high-end device of §2.3: page
//!   mapping, battery-backed write-back buffer, many channels, dynamic
//!   striping. The device for which the myths are *false*.
//! * [`SsdConfig::modern_dftl`] — page mapping through a limited mapping
//!   cache (DFTL, the paper's ref [10]).

use requiem_flash::FlashSpec;
use requiem_sim::time::SimDuration;
use requiem_sim::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::addr::ArrayShape;
use crate::channel::ChannelTiming;

/// Which flash translation layer the controller runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtlKind {
    /// Full page-level mapping (mapping RAM ∝ pages).
    PageMap,
    /// Block-level mapping: page offset fixed within the mapped block;
    /// non-append writes force a full block merge.
    BlockMap,
    /// BAST-style hybrid: block mapping plus `log_blocks` per-logical-block
    /// log blocks; log exhaustion forces merges.
    Hybrid {
        /// Number of log blocks the controller can dedicate.
        log_blocks: u32,
    },
    /// DFTL (Gupta et al., ASPLOS'09 — the paper's ref [10]): page mapping
    /// with a cached mapping table of `cached_entries` entries; misses and
    /// dirty evictions cost flash operations on translation pages.
    Dftl {
        /// Entries held in the cached mapping table.
        cached_entries: usize,
    },
}

/// How the controller places incoming writes across LUNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Pick the LUN that can start soonest (dynamic, channel-aware).
    /// This is what lets *"a controller fully benefit from SSD parallelism
    /// when flushing the buffer regardless of the write pattern"* (§2.3.2).
    LeastLoaded,
    /// Rotate LUNs in channel-interleaved order.
    RoundRobin,
    /// Static: LUN determined by `lpn mod total_luns`. Concentrated
    /// address patterns then concentrate on one LUN (myth 3's read-
    /// parallelism hazard).
    StaticByLpn,
}

/// Garbage-collection victim selection policy (which
/// [`GcPolicy`](crate::controller::GcPolicy) implementation the
/// controller instantiates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicyKind {
    /// Fewest valid pages first.
    Greedy,
    /// Cost-benefit (age × (1−u) / 2u) — favours old, cold blocks.
    CostBenefit,
}

/// GC tuning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Run GC on a LUN when its free-block count sinks to this threshold.
    pub free_block_threshold: u32,
    /// Victim selection policy.
    pub policy: GcPolicyKind,
    /// Use on-die copyback for same-LUN moves (no channel transfer).
    pub copyback: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            free_block_threshold: 3,
            policy: GcPolicyKind::Greedy,
            copyback: true,
        }
    }
}

/// Wear-leveling tuning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WlConfig {
    /// Dynamic WL: allocate the free block with the lowest erase count.
    pub dynamic: bool,
    /// Static WL: when (max − min) erase count exceeds this, migrate the
    /// coldest block into the most-worn free block. `0` disables.
    pub static_threshold: u32,
}

impl Default for WlConfig {
    fn default() -> Self {
        WlConfig {
            dynamic: true,
            static_threshold: 0,
        }
    }
}

/// Write-back buffer (the "safe RAM buffer with batteries" of §2.3.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Capacity in pages. `0` disables the buffer (writes complete only
    /// when the flash program finishes).
    pub capacity_pages: u32,
}

/// Full device configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Array shape.
    pub shape: ArrayShape,
    /// Per-LUN flash specification.
    pub flash: FlashSpec,
    /// Channel bus timing.
    pub channel: ChannelTiming,
    /// Host interface throughput, bytes per microsecond (e.g. SATA-3 ≈ 550).
    pub host_link_bytes_per_us: u32,
    /// Fixed controller processing overhead per host command.
    pub controller_overhead: SimDuration,
    /// FTL scheme.
    pub ftl: FtlKind,
    /// Write placement policy.
    pub placement: Placement,
    /// Over-provisioning ratio (raw capacity held back from the LBA space).
    pub op_ratio: f64,
    /// Write buffer.
    pub buffer: BufferConfig,
    /// Garbage collection.
    pub gc: GcConfig,
    /// Wear leveling.
    pub wl: WlConfig,
    /// RNG seed for device-internal randomness (error injection).
    pub seed: u64,
    /// Read-disturb scrub threshold: relocate a block once it has absorbed
    /// this many reads since its last erase (`0` disables). Real
    /// controllers scrub around a fraction of the cell technology's
    /// disturb budget.
    pub scrub_after_reads: u64,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] (the
    /// default) injects nothing and is bit-exact: simulation output is
    /// byte-identical to a fault-oblivious build.
    #[serde(default)]
    pub fault: FaultPlan,
}

impl SsdConfig {
    /// The modern (c. 2012) page-mapped device with a write-back buffer:
    /// 8 channels × 4 chips × 1 LUN, ONFI-3 bus, dynamic placement.
    pub fn modern() -> Self {
        SsdConfig {
            shape: ArrayShape {
                channels: 8,
                chips_per_channel: 4,
                luns_per_chip: 1,
            },
            flash: FlashSpec::mlc_small(),
            channel: ChannelTiming::onfi3(),
            host_link_bytes_per_us: 550, // SATA-3
            controller_overhead: SimDuration::from_micros(3),
            ftl: FtlKind::PageMap,
            placement: Placement::LeastLoaded,
            op_ratio: 0.125,
            buffer: BufferConfig {
                capacity_pages: 256,
            },
            gc: GcConfig::default(),
            wl: WlConfig::default(),
            seed: 0xD15C,
            scrub_after_reads: 0,
            fault: FaultPlan::none(),
        }
    }

    /// The pre-2009 block-mapped device: 2 channels × 2 chips, ONFI-2 bus,
    /// no buffer, static placement.
    pub fn circa_2009_block() -> Self {
        SsdConfig {
            shape: ArrayShape {
                channels: 2,
                chips_per_channel: 2,
                luns_per_chip: 1,
            },
            flash: FlashSpec::mlc_small(),
            channel: ChannelTiming::onfi2(),
            host_link_bytes_per_us: 250, // SATA-2
            controller_overhead: SimDuration::from_micros(20),
            ftl: FtlKind::BlockMap,
            placement: Placement::StaticByLpn,
            op_ratio: 0.07,
            buffer: BufferConfig { capacity_pages: 0 },
            gc: GcConfig::default(),
            wl: WlConfig::default(),
            seed: 0x2009,
            scrub_after_reads: 0,
            fault: FaultPlan::none(),
        }
    }

    /// The pre-2009 hardware with a BAST-style hybrid FTL.
    pub fn circa_2009_hybrid() -> Self {
        SsdConfig {
            ftl: FtlKind::Hybrid { log_blocks: 8 },
            ..Self::circa_2009_block()
        }
    }

    /// The modern device with DFTL instead of a full in-RAM page map.
    pub fn modern_dftl(cached_entries: usize) -> Self {
        SsdConfig {
            ftl: FtlKind::Dftl { cached_entries },
            ..Self::modern()
        }
    }

    /// Total LUNs.
    pub fn total_luns(&self) -> u32 {
        self.shape.total_luns()
    }

    /// Host-link transfer time for one page.
    pub fn host_link_time(&self) -> SimDuration {
        let bytes = self.flash.geometry.page_size;
        SimDuration::from_nanos((bytes as u64 * 1_000).div_ceil(self.host_link_bytes_per_us as u64))
    }

    /// Mapping-table RAM the FTL needs, in bytes (8 B per entry), the
    /// resource DFTL exists to economize (experiment E8).
    pub fn mapping_table_bytes(&self) -> u64 {
        let total_pages = self.total_luns() as u64 * self.flash.geometry.total_pages();
        match &self.ftl {
            FtlKind::PageMap => total_pages * 8,
            FtlKind::BlockMap => (total_pages / self.flash.geometry.pages_per_block as u64) * 8,
            FtlKind::Hybrid { log_blocks } => {
                (total_pages / self.flash.geometry.pages_per_block as u64) * 8
                    + *log_blocks as u64 * self.flash.geometry.pages_per_block as u64 * 8
            }
            FtlKind::Dftl { cached_entries } => *cached_entries as u64 * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let old = SsdConfig::circa_2009_block();
        let new = SsdConfig::modern();
        assert_eq!(old.ftl, FtlKind::BlockMap);
        assert_eq!(new.ftl, FtlKind::PageMap);
        assert_eq!(old.buffer.capacity_pages, 0);
        assert!(new.buffer.capacity_pages > 0);
        assert!(new.total_luns() > old.total_luns());
    }

    #[test]
    fn host_link_time_scales_with_page() {
        let cfg = SsdConfig::modern();
        // 4096 B at 550 B/µs ≈ 7.45 µs
        let t = cfg.host_link_time();
        assert!(t > SimDuration::from_micros(7) && t < SimDuration::from_micros(8));
    }

    #[test]
    fn mapping_ram_ordering() {
        // page map needs the most RAM, block map ~128x less (pages/block),
        // dftl bounded by its cache size
        let page = SsdConfig::modern().mapping_table_bytes();
        let block = SsdConfig::circa_2009_block();
        // compare at equal shape: rebuild block-map config on modern shape
        let block = SsdConfig {
            ftl: block.ftl,
            ..SsdConfig::modern()
        }
        .mapping_table_bytes();
        let dftl = SsdConfig::modern_dftl(1024).mapping_table_bytes();
        assert!(block < page);
        assert_eq!(dftl, 8 * 1024);
    }

    #[test]
    fn hybrid_preset_keeps_2009_hardware() {
        let h = SsdConfig::circa_2009_hybrid();
        assert_eq!(h.shape, SsdConfig::circa_2009_block().shape);
        assert!(matches!(h.ftl, FtlKind::Hybrid { log_blocks: 8 }));
    }
}
