//! Channel (bus) timing.
//!
//! A channel carries commands and page data between the controller and the
//! chips wired to it. §2.2: operations on distinct LUNs proceed in
//! parallel, **but their transfers contend for the shared channel** — the
//! effect Figure 1 visualizes and myth 3 leans on (*"reads tend to be
//! channel-bound while writes tend to be chip-bound, and channel
//! parallelism is much more limited than chip parallelism"*).

use requiem_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Timing model of one flash channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelTiming {
    /// Command/address cycle overhead per operation.
    pub command: SimDuration,
    /// Bus throughput in bytes per microsecond (MB/s numerically).
    pub bytes_per_us: u32,
}

impl ChannelTiming {
    /// ONFI-2-class bus (c. 2009): 40 MB/s. A 4 KiB page takes ~100 µs —
    /// comparable to tR, which is what makes Figure 1's read case so
    /// visibly channel-bound.
    pub fn onfi2() -> Self {
        ChannelTiming {
            command: SimDuration::from_nanos(200),
            bytes_per_us: 40,
        }
    }

    /// ONFI-3-class bus (c. 2012): 400 MB/s. A 4 KiB page takes ~10 µs.
    pub fn onfi3() -> Self {
        ChannelTiming {
            command: SimDuration::from_nanos(200),
            bytes_per_us: 400,
        }
    }

    /// Transfer time for `bytes` of page data (excluding command overhead).
    pub fn transfer(&self, bytes: u32) -> SimDuration {
        // ns = bytes * 1000 / bytes_per_us
        SimDuration::from_nanos((bytes as u64 * 1_000).div_ceil(self.bytes_per_us as u64))
    }

    /// Command + data-in time for a write of `bytes`.
    pub fn write_bus_time(&self, bytes: u32) -> SimDuration {
        self.command + self.transfer(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onfi2_page_transfer_is_about_100us() {
        let t = ChannelTiming::onfi2().transfer(4096);
        assert_eq!(t, SimDuration::from_nanos(102_400));
    }

    #[test]
    fn onfi3_is_10x_faster() {
        let slow = ChannelTiming::onfi2().transfer(4096);
        let fast = ChannelTiming::onfi3().transfer(4096);
        assert_eq!(slow.as_nanos(), fast.as_nanos() * 10);
    }

    #[test]
    fn write_bus_time_includes_command() {
        let ct = ChannelTiming::onfi3();
        assert_eq!(ct.write_bus_time(4096), ct.command + ct.transfer(4096));
    }

    #[test]
    fn transfer_rounds_up() {
        let ct = ChannelTiming {
            command: SimDuration::ZERO,
            bytes_per_us: 3,
        };
        // 4 bytes at 3 B/µs = 1333.33..ns → 1334
        assert_eq!(ct.transfer(4), SimDuration::from_nanos(1334));
    }
}
