//! Device-level addressing: logical pages, global LUN ids, physical pages.
//!
//! The SSD exposes a flat logical-page-number space ([`Lpn`]) and maps it
//! onto physical pages ([`PhysPage`]) spread over a
//! `channels × chips-per-channel × luns-per-chip` array — the structure of
//! the paper's Figure 2 ("flash memory array").

use requiem_flash::{Geometry, PageAddr};
use serde::{Deserialize, Serialize};

/// A logical page number in the device's exported address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lpn(pub u64);

/// A global LUN index across the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LunId(pub u32);

/// A physical page: which LUN, and where inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysPage {
    /// Global LUN.
    pub lun: LunId,
    /// Page within the LUN.
    pub addr: PageAddr,
}

/// A physical block: which LUN, and which block inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysBlock {
    /// Global LUN.
    pub lun: LunId,
    /// Block within the LUN.
    pub addr: requiem_flash::BlockAddr,
}

/// The device-level array shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayShape {
    /// Independent channels.
    pub channels: u32,
    /// Chips per channel.
    pub chips_per_channel: u32,
    /// LUNs (dies) per chip.
    pub luns_per_chip: u32,
}

impl ArrayShape {
    /// Total LUNs in the device.
    pub fn total_luns(&self) -> u32 {
        self.channels * self.chips_per_channel * self.luns_per_chip
    }

    /// The channel a LUN is wired to.
    pub fn channel_of(&self, lun: LunId) -> u32 {
        lun.0 / (self.chips_per_channel * self.luns_per_chip)
    }

    /// The chip (global index) a LUN belongs to.
    pub fn chip_of(&self, lun: LunId) -> u32 {
        lun.0 / self.luns_per_chip
    }

    /// LUNs in channel-interleaved order: lun 0 → chan 0, lun 1 → chan 1, …
    /// Useful for striping writes across channels before chips.
    pub fn interleaved_lun(&self, i: u32) -> LunId {
        let per_chan = self.chips_per_channel * self.luns_per_chip;
        let chan = i % self.channels;
        let within = (i / self.channels) % per_chan;
        LunId(chan * per_chan + within)
    }
}

/// Capacity accounting for a device: raw vs exported (over-provisioned).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capacity {
    /// Raw physical pages across all LUNs.
    pub raw_pages: u64,
    /// Exported logical pages (LBA space).
    pub exported_pages: u64,
    /// Over-provisioning ratio actually applied.
    pub op_ratio: f64,
}

impl Capacity {
    /// Derive capacity from shape, per-LUN geometry and requested OP ratio.
    pub fn derive(shape: &ArrayShape, geom: &Geometry, op_ratio: f64) -> Self {
        assert!(
            (0.0..0.9).contains(&op_ratio),
            "over-provisioning ratio must be in [0, 0.9)"
        );
        let raw = shape.total_luns() as u64 * geom.total_pages();
        let exported = ((raw as f64) * (1.0 - op_ratio)).floor() as u64;
        Capacity {
            raw_pages: raw,
            exported_pages: exported,
            op_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ArrayShape {
        ArrayShape {
            channels: 4,
            chips_per_channel: 2,
            luns_per_chip: 2,
        }
    }

    #[test]
    fn totals_and_channel_mapping() {
        let s = shape();
        assert_eq!(s.total_luns(), 16);
        // luns 0..3 on channel 0, 4..7 on channel 1, ...
        assert_eq!(s.channel_of(LunId(0)), 0);
        assert_eq!(s.channel_of(LunId(3)), 0);
        assert_eq!(s.channel_of(LunId(4)), 1);
        assert_eq!(s.channel_of(LunId(15)), 3);
        assert_eq!(s.chip_of(LunId(0)), 0);
        assert_eq!(s.chip_of(LunId(2)), 1);
    }

    #[test]
    fn interleaved_luns_rotate_channels() {
        let s = shape();
        let chans: Vec<u32> = (0..8).map(|i| s.channel_of(s.interleaved_lun(i))).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // and successive rounds hit different luns within a channel
        assert_ne!(s.interleaved_lun(0), s.interleaved_lun(4));
    }

    #[test]
    fn interleaved_lun_covers_all() {
        let s = shape();
        let mut seen: Vec<u32> = (0..s.total_luns())
            .map(|i| s.interleaved_lun(i).0)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_applies_over_provisioning() {
        let g = Geometry::new(1, 10, 10, 4096); // 100 pages per lun
        let c = Capacity::derive(&shape(), &g, 0.25);
        assert_eq!(c.raw_pages, 1600);
        assert_eq!(c.exported_pages, 1200);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn silly_op_ratio_rejected() {
        let g = Geometry::new(1, 10, 10, 4096);
        Capacity::derive(&shape(), &g, 0.95);
    }
}
