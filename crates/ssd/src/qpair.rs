//! NVMe-style queue pair over the SSD: an in-flight window that admits
//! up to QD commands into the controller, and a completion queue drained
//! out of order.
//!
//! The serialized host API (`read`/`write`/`trim` returning a single
//! [`Completion`](crate::Completion)) forces the caller to chain on
//! each completion, so the device's internal parallelism — multiple
//! chips behind one channel — is only reachable from inside the
//! controller. [`QueuePair`] is the asynchronous front door: the host
//! [`submit`](QueuePair::submit)s typed [`IoRequest`]s tagged with a
//! [`CommandId`], the window admits each command at the earliest
//! instant the device has a free slot (NVMe "fetch the SQ in order,
//! complete whenever"), and completions surface through
//! [`poll`](QueuePair::poll) / [`pop`](QueuePair::pop) in *device*
//! order.
//!
//! ## Timing model
//!
//! A command arriving at `now` is **admitted** at
//! `admit = max(now, previous admit, window-free instant, same-LBA
//! predecessor done)` and then dispatched through the existing
//! synchronous controller path at `admit`. The wait `[now, admit)` is
//! the submission-queue residency and is attributed to the command as a
//! `Queue`-cause span on resource `"sq"`, so the probe's span-tiling
//! invariant (span sum == end-to-end latency) keeps holding per command
//! even when completions reorder. At queue depth 1 the window is always
//! empty, `admit == now`, and every instant — and therefore every byte
//! of probe output — is identical to the serialized path.
//!
//! ## Ordering guarantees
//!
//! * Admissions are monotone (SQ fetched in order).
//! * Two commands to the **same LBA** complete in submission order: the
//!   second is not admitted until the first's completion instant, and
//!   the completion heap breaks `done` ties in submission order.
//! * Commands to different LBAs complete in whatever order the device
//!   finishes them — the whole point of queue depth.

use requiem_sim::cmd::{CommandId, IoCompletion, IoOp, IoRequest};
use requiem_sim::completion::{CompletionHeap, InflightWindow};
use requiem_sim::probe::{Cause, Layer};
use requiem_sim::time::SimTime;

use crate::addr::Lpn;
use crate::device::{Completion, Ssd, SsdError};

impl Ssd {
    /// Serve one typed host command synchronously.
    ///
    /// This is the typed twin of `read`/`write`/`trim`: same timing,
    /// same metrics, same probe spans — it only swaps the positional
    /// arguments for an [`IoRequest`] and the bare
    /// [`Completion`](crate::Completion) for an [`IoCompletion`] that
    /// echoes the request's tag. Serialized callers (the block-layer
    /// single-submit path, the DB backends) use this; queue-depth
    /// callers go through [`QueuePair`].
    pub fn io(&mut self, now: SimTime, req: IoRequest) -> Result<IoCompletion, SsdError> {
        let scope = self.probe().open_command(req.op.as_str(), now);
        let id = scope.id();
        let c = match self.dispatch(now, req) {
            Ok(c) => c,
            Err(e) => {
                // the command never completed: drop its record and
                // reopen the bus before surfacing the error
                scope.abort();
                return Err(e);
            }
        };
        scope.close(c.done);
        Ok(IoCompletion {
            tag: req.tag,
            op: req.op,
            lba: req.lba,
            submitted: now,
            done: c.done,
            status: c.status,
            spans: self.probe().command_span_count(id),
        })
    }

    /// Dispatch a typed request through the synchronous controller path.
    fn dispatch(&mut self, at: SimTime, req: IoRequest) -> Result<Completion, SsdError> {
        match req.op {
            IoOp::Read => self.read(at, Lpn(req.lba)),
            IoOp::Write => self.write(at, Lpn(req.lba)),
            IoOp::Trim => self.trim(at, Lpn(req.lba)),
        }
    }
}

/// An asynchronous submission/completion queue pair over an [`Ssd`].
///
/// The pair holds no reference to the device; each
/// [`submit`](QueuePair::submit) borrows it, so one device can sit
/// behind several pairs (per-core SQs) without aliasing trouble.
#[derive(Debug)]
pub struct QueuePair {
    window: InflightWindow,
    cq: CompletionHeap<IoCompletion>,
    next_tag: u64,
}

impl QueuePair {
    /// A queue pair whose in-flight window admits up to `depth`
    /// commands at once (min 1; 1 reproduces the serialized path
    /// bit-for-bit).
    pub fn new(depth: usize) -> Self {
        QueuePair {
            window: InflightWindow::new(depth),
            cq: CompletionHeap::new(),
            next_tag: 0,
        }
    }

    /// Configured window depth.
    pub fn depth(&self) -> usize {
        self.window.depth()
    }

    /// Completions waiting in the completion queue.
    pub fn pending(&self) -> usize {
        self.cq.len()
    }

    /// Submit one command at `now`; returns the host tag (the request's
    /// own tag, or the next auto-assigned tag when unassigned).
    ///
    /// Submission instants must be non-decreasing across calls — the SQ
    /// is a queue, not a time machine.
    pub fn submit(
        &mut self,
        ssd: &mut Ssd,
        now: SimTime,
        req: IoRequest,
    ) -> Result<CommandId, SsdError> {
        let tag = if req.tag.is_unassigned() {
            self.next_tag += 1;
            CommandId(self.next_tag)
        } else {
            req.tag
        };
        let admit = self.window.admit(now, req.lba);
        let probe = ssd.probe().clone();
        let scope = probe.open_command(req.op.as_str(), now);
        let id = scope.id();
        if admit > now {
            // SQ residency: waiting for a window slot (or a same-LBA
            // predecessor). Charged as host-visible queueing.
            probe.span(Layer::Block, Cause::Queue, "sq", now, admit);
        }
        let c = match ssd.dispatch(admit, req) {
            Ok(c) => c,
            Err(e) => {
                // abort the probe command explicitly: the record is
                // discarded and the bus reopens for the next submit
                scope.abort();
                return Err(e);
            }
        };
        self.window.commit(admit, req.lba, c.done);
        scope.close(c.done);
        self.cq.push(
            c.done,
            IoCompletion {
                tag,
                op: req.op,
                lba: req.lba,
                submitted: now,
                done: c.done,
                status: c.status,
                spans: probe.command_span_count(id),
            },
        );
        Ok(tag)
    }

    /// Drain every completion ready at `now`, earliest-done first.
    pub fn poll(&mut self, now: SimTime) -> Vec<IoCompletion> {
        self.cq
            .drain_ready(now)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    }

    /// Pop the earliest completion regardless of the clock (closed-loop
    /// drivers advance time *to* the completion they pop).
    pub fn pop(&mut self) -> Option<IoCompletion> {
        self.cq.pop().map(|(_, c)| c)
    }

    /// Completion instant of the earliest pending completion.
    pub fn next_done(&self) -> Option<SimTime> {
        self.cq.peek_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use requiem_sim::probe::Probe;

    fn small_ssd() -> Ssd {
        let mut cfg = SsdConfig::modern();
        cfg.shape.channels = 1;
        cfg.shape.chips_per_channel = 4;
        cfg.shape.luns_per_chip = 1;
        Ssd::new(cfg)
    }

    #[test]
    fn typed_io_matches_positional_api() {
        let mut a = small_ssd();
        let mut b = small_ssd();
        let t = SimTime::ZERO;
        let ca = a.write(t, Lpn(3)).unwrap();
        let cb = b.io(t, IoRequest::write(3)).unwrap();
        assert_eq!(ca.done, cb.done);
        assert_eq!(ca.latency, cb.latency());
        let ra = a.read(ca.done, Lpn(3)).unwrap();
        let rb = b.io(cb.done, IoRequest::read(3)).unwrap();
        assert_eq!(ra.done, rb.done);
        let ta = a.trim(ra.done, Lpn(3)).unwrap();
        let tb = b.io(rb.done, IoRequest::trim(3)).unwrap();
        assert_eq!(ta.done, tb.done);
    }

    #[test]
    fn qd1_matches_serialized_path() {
        let mut a = small_ssd();
        let mut b = small_ssd();
        let mut qp = QueuePair::new(1);
        let mut t = SimTime::ZERO;
        for lba in [5u64, 9, 5, 13] {
            let ca = a.write(t, Lpn(lba)).unwrap();
            qp.submit(&mut b, t, IoRequest::write(lba)).unwrap();
            let cb = qp.pop().unwrap();
            assert_eq!(ca.done, cb.done);
            assert_eq!(cb.submitted, t);
            t = ca.done;
        }
    }

    /// Device with LBAs 0..4 preconditioned; returns (device, drain time).
    fn preconditioned() -> (Ssd, SimTime) {
        let mut d = small_ssd();
        let mut t = SimTime::ZERO;
        for lba in 0..4u64 {
            t = d.write(t, Lpn(lba)).unwrap().done;
        }
        let drained = t.max(d.drain_time());
        (d, drained)
    }

    #[test]
    fn queue_depth_overlaps_reads() {
        // 4 chips behind 1 channel: reads of different LBAs overlap
        // their cell reads, so QD4 finishes sooner than serialized.
        let (mut serial_dev, t) = preconditioned();
        let mut now = t;
        for lba in 0..4u64 {
            now = serial_dev.read(now, Lpn(lba)).unwrap().done;
        }
        let serial_done = now;

        let (mut dev, t) = preconditioned();
        let mut qp = QueuePair::new(4);
        for lba in 0..4u64 {
            qp.submit(&mut dev, t, IoRequest::read(lba)).unwrap();
        }
        let mut last = SimTime::ZERO;
        while let Some(c) = qp.pop() {
            last = last.max(c.done);
        }
        assert!(
            last < serial_done,
            "QD4 reads ({last}) should beat serialized ({serial_done})"
        );
    }

    #[test]
    fn same_lba_completes_in_submission_order() {
        let mut dev = small_ssd();
        let mut qp = QueuePair::new(8);
        let t = SimTime::ZERO;
        let a = qp.submit(&mut dev, t, IoRequest::write(7)).unwrap();
        let b = qp.submit(&mut dev, t, IoRequest::write(7)).unwrap();
        let c1 = qp.pop().unwrap();
        let c2 = qp.pop().unwrap();
        assert_eq!(c1.tag, a);
        assert_eq!(c2.tag, b);
        assert!(c1.done <= c2.done);
    }

    #[test]
    fn spans_tile_latency_under_queue_depth() {
        let probe = Probe::recording();
        let mut dev = small_ssd();
        dev.attach_probe(probe.clone());
        let mut qp = QueuePair::new(4);
        let t = SimTime::ZERO;
        let mut tags = Vec::new();
        for lba in 0..6u64 {
            tags.push(qp.submit(&mut dev, t, IoRequest::write(lba)).unwrap());
        }
        let comps: Vec<IoCompletion> = std::iter::from_fn(|| qp.pop()).collect();
        assert_eq!(comps.len(), tags.len());
        // Every command's retained spans tile [submitted, done) exactly.
        let records = probe.commands_ref();
        for rec in records.iter() {
            let done = rec.done.expect("command closed");
            let spans = probe.command_spans(rec.id);
            assert!(!spans.is_empty());
            let mut cursor = rec.submit;
            let mut sum = requiem_sim::time::SimDuration::ZERO;
            for s in &spans {
                assert!(s.start >= cursor, "span overlap in cmd {}", rec.id);
                cursor = s.end;
                sum += s.duration();
            }
            assert_eq!(
                sum,
                done.since(rec.submit),
                "span sum != latency for cmd {}",
                rec.id
            );
            assert_eq!(rec.spans as usize, spans.len());
        }
    }
}
