//! The battery-backed write-back buffer.
//!
//! §2.3.2: *"high-end SSDs now include safe RAM buffers (with batteries),
//! which are designed for buffering write operations. Such SSDs provide a
//! form of write-back mechanism where a write I/O request completes as
//! soon as it hits the cache."*
//!
//! The buffer has `capacity` page slots. A write acquires a slot (waiting
//! if all slots are mid-flush), completes immediately — the data is safe in
//! battery-backed RAM — and the flash program proceeds behind the
//! completion. Reads of still-buffered pages are served from RAM.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use requiem_sim::time::SimTime;

/// Write-back buffer occupancy and residency tracking (timeline model:
/// a slot is "busy" until its page's flash flush finishes).
#[derive(Debug)]
pub struct WriteBuffer {
    capacity: usize,
    /// Flush-completion times of occupied slots.
    slots: BinaryHeap<Reverse<SimTime>>,
    /// lpn → flush completion time (page readable from RAM until then).
    /// BTreeMap so the bounded-growth sweep in [`commit`](Self::commit)
    /// visits entries in a deterministic order.
    resident: BTreeMap<u64, SimTime>,
    read_hits: u64,
    stalls: u64,
}

impl WriteBuffer {
    /// Create a buffer with `capacity` page slots (0 = disabled; callers
    /// should bypass a disabled buffer).
    pub fn new(capacity: usize) -> Self {
        WriteBuffer {
            capacity,
            slots: BinaryHeap::with_capacity(capacity + 1),
            resident: BTreeMap::new(),
            read_hits: 0,
            stalls: 0,
        }
    }

    /// Whether the buffer exists at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Acquire a slot at or after `now`. Returns the time the slot is
    /// available — `now` if the buffer has room, otherwise the earliest
    /// flush completion (the write stalls until the flash drains a page:
    /// the regime where buffered writes degrade to flash speed).
    pub fn acquire(&mut self, now: SimTime) -> SimTime {
        debug_assert!(self.enabled());
        // release slots whose flush already finished
        while let Some(&Reverse(t)) = self.slots.peek() {
            if t <= now {
                self.slots.pop();
            } else {
                break;
            }
        }
        if self.slots.len() < self.capacity {
            now
        } else {
            self.stalls += 1;
            let Reverse(t) = self.slots.pop().expect("buffer non-empty when full");
            t
        }
    }

    /// Commit a page into the acquired slot: its flush finishes at `done`.
    pub fn commit(&mut self, lpn: u64, done: SimTime) {
        self.slots.push(Reverse(done));
        self.resident.insert(lpn, done);
        // bound residency-map growth
        if self.resident.len() > self.capacity * 8 + 64 {
            let horizon = done;
            self.resident.retain(|_, &mut t| t > horizon);
        }
    }

    /// True if a read of `lpn` at `now` can be served from buffer RAM.
    pub fn read_hit(&mut self, lpn: u64, now: SimTime) -> bool {
        match self.resident.get(&lpn) {
            Some(&t) if t > now => {
                self.read_hits += 1;
                true
            }
            Some(_) => {
                self.resident.remove(&lpn);
                false
            }
            None => false,
        }
    }

    /// Discard residency for `lpn` (trim).
    pub fn discard(&mut self, lpn: u64) {
        self.resident.remove(&lpn);
    }

    /// Number of reads served from the buffer.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }

    /// Number of writes that had to wait for a slot.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_immediate_with_room() {
        let mut b = WriteBuffer::new(2);
        assert_eq!(b.acquire(SimTime::from_micros(5)), SimTime::from_micros(5));
        assert_eq!(b.stalls(), 0);
    }

    #[test]
    fn full_buffer_stalls_until_earliest_flush() {
        let mut b = WriteBuffer::new(2);
        b.commit(1, SimTime::from_micros(100));
        b.commit(2, SimTime::from_micros(50));
        // both slots busy at t=0 → wait for the earliest (50µs)
        let t = b.acquire(SimTime::ZERO);
        assert_eq!(t, SimTime::from_micros(50));
        assert_eq!(b.stalls(), 1);
    }

    #[test]
    fn finished_flushes_free_slots() {
        let mut b = WriteBuffer::new(1);
        b.commit(1, SimTime::from_micros(10));
        // at t=20µs the slot has drained
        assert_eq!(
            b.acquire(SimTime::from_micros(20)),
            SimTime::from_micros(20)
        );
        assert_eq!(b.stalls(), 0);
    }

    #[test]
    fn read_hits_while_flushing_only() {
        let mut b = WriteBuffer::new(2);
        b.commit(7, SimTime::from_micros(100));
        assert!(b.read_hit(7, SimTime::from_micros(50)));
        assert!(!b.read_hit(7, SimTime::from_micros(150)));
        assert!(!b.read_hit(8, SimTime::ZERO));
        assert_eq!(b.read_hits(), 1);
    }

    #[test]
    fn discard_removes_residency() {
        let mut b = WriteBuffer::new(2);
        b.commit(7, SimTime::from_micros(100));
        b.discard(7);
        assert!(!b.read_hit(7, SimTime::ZERO));
    }

    #[test]
    fn residency_map_stays_bounded() {
        let mut b = WriteBuffer::new(2);
        for i in 0..10_000u64 {
            let t = b.acquire(SimTime::from_nanos(i));
            b.commit(i, t + requiem_sim::time::MICROSECOND);
        }
        assert!(b.resident.len() <= 2 * 8 + 64 + 1);
    }
}
