//! Device metrics: the observable truth behind the myths.
//!
//! Every flash operation is attributed to a *cause* (host, garbage
//! collection, wear leveling, FTL merge, translation traffic) so
//! experiments can decompose write amplification and latency the way the
//! paper's §2.3 argument requires.

use requiem_sim::time::SimDuration;
use requiem_sim::Histogram;

/// Why a flash operation happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCause {
    /// Directly serving a host command.
    Host,
    /// Garbage-collection relocation.
    Gc,
    /// Wear-leveling migration.
    WearLevel,
    /// Block/hybrid-FTL merge traffic.
    Merge,
    /// DFTL translation-page traffic.
    Translation,
    /// Error-recovery traffic (read-retry rungs, ECC escalation senses,
    /// parity-rebuild stripe reads, post-rebuild relocations).
    Recovery,
}

/// Counters for one operation type, split by cause.
#[derive(Debug, Clone, Default)]
pub struct CauseCounts {
    /// Host-caused.
    pub host: u64,
    /// GC-caused.
    pub gc: u64,
    /// Wear-leveling-caused.
    pub wear_level: u64,
    /// Merge-caused.
    pub merge: u64,
    /// Translation-caused.
    pub translation: u64,
    /// Recovery-caused.
    pub recovery: u64,
}

impl CauseCounts {
    /// Add one for `cause`.
    pub fn bump(&mut self, cause: OpCause) {
        match cause {
            OpCause::Host => self.host += 1,
            OpCause::Gc => self.gc += 1,
            OpCause::WearLevel => self.wear_level += 1,
            OpCause::Merge => self.merge += 1,
            OpCause::Translation => self.translation += 1,
            OpCause::Recovery => self.recovery += 1,
        }
    }

    /// Sum over all causes.
    pub fn total(&self) -> u64 {
        self.host + self.gc + self.wear_level + self.merge + self.translation + self.recovery
    }

    /// Everything except `host` (the overhead traffic).
    pub fn overhead(&self) -> u64 {
        self.total() - self.host
    }
}

/// Error-recovery pipeline accounting: how often each escalation stage
/// ran and what it salvaged. Zero-fault runs leave every field at zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryMetrics {
    /// Read-retry rungs issued (re-senses at shifted read voltages).
    pub retry_attempts: u64,
    /// Reads recovered by the retry ladder alone.
    pub retry_recovered: u64,
    /// Soft-decision ECC escalations attempted after the ladder ran dry.
    pub ecc_escalations: u64,
    /// Reads recovered by ECC escalation.
    pub ecc_recovered: u64,
    /// Stripe parity rebuilds attempted (the last resort).
    pub parity_rebuilds: u64,
    /// Peer-LUN page reads issued by parity rebuilds.
    pub rebuild_page_reads: u64,
    /// Pages relocated off a suspect block after a parity rebuild.
    pub rebuild_relocations: u64,
    /// Program failures salvaged into a fresh block by `append_page`.
    pub program_salvages: u64,
    /// Blocks retired because an erase failed.
    pub erase_retirements: u64,
    /// Reads that exhausted the whole pipeline (data lost).
    pub unrecoverable: u64,
    /// Total device time spent inside the recovery pipeline (beyond the
    /// initial failed sense).
    pub recovery_time: SimDuration,
}

/// Full device metrics.
#[derive(Debug, Default)]
pub struct SsdMetrics {
    /// Host read commands served.
    pub host_reads: u64,
    /// Host write commands served.
    pub host_writes: u64,
    /// Host trim commands served.
    pub host_trims: u64,
    /// Host reads of never-written pages.
    pub unmapped_reads: u64,
    /// Host reads served from the write buffer.
    pub buffer_read_hits: u64,

    /// Flash page reads by cause.
    pub flash_reads: CauseCounts,
    /// Flash page programs by cause.
    pub flash_programs: CauseCounts,
    /// Flash block erases by cause.
    pub flash_erases: CauseCounts,

    /// GC invocations.
    pub gc_runs: u64,
    /// GC triggers suppressed by the re-entrancy gate (a GC-internal
    /// allocation tried to start a nested collection).
    pub gc_reentries_blocked: u64,
    /// Pages relocated by GC.
    pub gc_pages_moved: u64,
    /// Full merges (block/hybrid FTL).
    pub merges_full: u64,
    /// Switch merges (hybrid FTL, sequential case).
    pub merges_switch: u64,
    /// Blocks retired for wear.
    pub blocks_retired: u64,
    /// Read-disturb scrubs performed (block relocations).
    pub scrubs: u64,
    /// Reads whose first sense failed ECC decode (each one entered the
    /// recovery pipeline; see [`RecoveryMetrics`] for how it fared).
    pub uncorrectable_reads: u64,
    /// Error-recovery pipeline accounting.
    pub recovery: RecoveryMetrics,

    /// End-to-end host read latency.
    pub read_latency: Histogram,
    /// End-to-end host write latency.
    pub write_latency: Histogram,
    /// Time host reads spent waiting for a busy LUN (myth 3's stalls).
    pub read_lun_wait: Histogram,
    /// Time host reads spent waiting for a busy channel.
    pub read_channel_wait: Histogram,
}

impl SsdMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write amplification: flash programs per host page write.
    /// Returns 0 when nothing was written.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            return 0.0;
        }
        self.flash_programs.total() as f64 / self.host_writes as f64
    }

    /// Read amplification: flash reads per host read.
    pub fn read_amplification(&self) -> f64 {
        if self.host_reads == 0 {
            return 0.0;
        }
        self.flash_reads.total() as f64 / self.host_reads as f64
    }

    /// Mean host write latency.
    pub fn mean_write_latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.write_latency.mean() as u64)
    }

    /// Mean host read latency.
    pub fn mean_read_latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.read_latency.mean() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_counts_bump_and_total() {
        let mut c = CauseCounts::default();
        c.bump(OpCause::Host);
        c.bump(OpCause::Host);
        c.bump(OpCause::Gc);
        c.bump(OpCause::Merge);
        c.bump(OpCause::Translation);
        c.bump(OpCause::WearLevel);
        assert_eq!(c.total(), 6);
        assert_eq!(c.host, 2);
        assert_eq!(c.overhead(), 4);
    }

    #[test]
    fn amplification_ratios() {
        let mut m = SsdMetrics::new();
        assert_eq!(m.write_amplification(), 0.0);
        m.host_writes = 10;
        m.flash_programs.host = 10;
        m.flash_programs.gc = 5;
        assert!((m.write_amplification() - 1.5).abs() < 1e-12);
        m.host_reads = 4;
        m.flash_reads.host = 4;
        m.flash_reads.translation = 4;
        assert!((m.read_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_means() {
        let mut m = SsdMetrics::new();
        m.write_latency.record(1_000);
        m.write_latency.record(3_000);
        assert_eq!(m.mean_write_latency(), SimDuration::from_nanos(2_000));
    }
}
