//! The SSD device: the controller of the paper's Figure 2, in executable
//! form.
//!
//! [`Ssd`] is the *chassis*: it owns the flash LUNs, the
//! [`Scheduler`]'s resource timelines, the block directory, the mapping
//! state, and the policy objects — and exposes exactly the narrow waist
//! the paper critiques: `read(lpn)`, `write(lpn)`, `trim(lpn)` on a flat
//! logical address space. Every controller *decision* lives in the
//! [`crate::controller`] module tree, one module per Figure-2 box:
//!
//! | Figure 2 box                 | Module                                  |
//! |------------------------------|-----------------------------------------|
//! | Scheduling (channels, chips) | [`crate::controller::scheduler`]        |
//! | Garbage collection           | [`crate::controller::gc`]               |
//! | Wear leveling                | [`crate::controller::wear`]             |
//! | RAM buffer (battery-backed)  | [`crate::controller::write_buffer`]     |
//! | Mapping (block-mapped FTL)   | [`crate::controller::block_ftl`]        |
//! | Mapping (hybrid log-block)   | [`crate::controller::hybrid_ftl`]       |
//! | Boot / recovery              | [`crate::controller::rebuild`]          |
//!
//! GC, wear leveling, and the write buffer are chosen through the
//! [`GcPolicy`], [`WearPolicy`], and [`WriteBufferPolicy`] traits; the
//! configuration picks an implementation ([`crate::config::GcPolicyKind`]
//! et al.) and custom implementations can be injected with the
//! `set_*_policy` methods before issuing I/O.
//!
//! Every host command returns a [`Completion`] carrying the virtual-time
//! instant it finished, so experiments can measure the latency/bandwidth
//! behaviour that the block device interface hides. Attaching a
//! [`Probe`] ([`Ssd::attach_probe`]) additionally decomposes each
//! command into per-layer spans — queueing blamed on its cause (GC
//! stall, merge stall, translation traffic), cell time, bus transfers —
//! on the cross-layer observability bus.
//!
//! ## Timing model
//!
//! Channels and LUNs are serial FIFO resources ([`requiem_sim::Resource`]).
//! A page read occupies: channel (command) → LUN (tR) → channel (data out).
//! A page program occupies: channel (command + data in) → LUN (tPROG).
//! An erase occupies: channel (command) → LUN (tBERS). Garbage collection
//! and merges reserve the same resources, which is how GC interference with
//! host reads (myth 3) emerges without being explicitly programmed in.
//!
//! Host commands must be submitted in non-decreasing time order.

use requiem_flash::{Lun, PagePayload};
use requiem_sim::gantt::Gantt;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, IoStatus, Layer, Probe};

use crate::addr::{ArrayShape, Capacity, Lpn, LunId, PhysPage};
use crate::block_dir::BlockDirectory;
use crate::config::{FtlKind, SsdConfig};
use crate::controller::block_ftl::ReplCtx;
use crate::controller::{GcGate, GcPolicy, Scheduler, WearPolicy, WriteBufferPolicy};
use crate::mapping::block::{BlockMap, HybridState};
use crate::mapping::dftl::{DftlMap, TransIo};
use crate::mapping::page::PageMap;
use crate::metrics::{OpCause, SsdMetrics};

/// Errors surfaced by the device API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// The LPN is outside the exported address space.
    LpnOutOfRange {
        /// Offending LPN.
        lpn: Lpn,
        /// Exported page count.
        exported: u64,
    },
    /// The device could not find space even after garbage collection
    /// (worn out or logically over-filled).
    DeviceFull {
        /// The LUN that ran out.
        lun: LunId,
    },
    /// A wear-induced program failure. Largely internal: `append_page`
    /// catches it, salvages the block, and retries elsewhere; fixed-
    /// offset FTLs collapse it into [`SsdError::DeviceFull`] via
    /// [`SsdError::full_on`].
    ProgramFailed {
        /// The page whose program failed.
        phys: PhysPage,
    },
    /// The controller issued a flash command the chip refused
    /// (out-of-range address, rewrite of a programmed page, erase of a
    /// retired block) — an FTL invariant violation, surfaced as a typed
    /// error instead of a controller panic.
    FlashProtocol {
        /// Which primitive was refused (`"read"`, `"program"`, `"erase"`).
        op: &'static str,
        /// The LUN addressed.
        lun: LunId,
        /// The chip's complaint.
        detail: String,
    },
    /// The request is not supported under the active mapping scheme.
    Unsupported {
        /// What was requested.
        what: &'static str,
    },
}

impl SsdError {
    /// Collapse a wear-induced program failure into `DeviceFull` on
    /// `lun`. Fixed-offset FTL paths (block / hybrid mapping) cannot
    /// retry a failed program at another location, so for them a
    /// program failure *is* exhaustion; every other error passes
    /// through unchanged.
    pub(crate) fn full_on(self, lun: LunId) -> SsdError {
        match self {
            SsdError::ProgramFailed { .. } => SsdError::DeviceFull { lun },
            e => e,
        }
    }
}

impl std::fmt::Display for SsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsdError::LpnOutOfRange { lpn, exported } => {
                write!(f, "lpn {} out of range (exported {})", lpn.0, exported)
            }
            SsdError::DeviceFull { lun } => write!(f, "no usable space left on lun {}", lun.0),
            SsdError::ProgramFailed { phys } => {
                write!(f, "program failed at {:?} on lun {}", phys.addr, phys.lun.0)
            }
            SsdError::FlashProtocol { op, lun, detail } => {
                write!(f, "flash {op} refused on lun {} ({detail})", lun.0)
            }
            SsdError::Unsupported { what } => {
                write!(f, "{what} unsupported under the active mapping scheme")
            }
        }
    }
}

impl std::error::Error for SsdError {}

/// Where a host command was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Flash array.
    Flash,
    /// The battery-backed write buffer.
    Buffer,
    /// Nothing to read (never-written page) — controller answers directly.
    Unmapped,
    /// Metadata-only command (trim).
    Controller,
}

/// Completion record of one host command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Instant the command completed.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// What served it.
    pub served: Served,
    /// How the command fared: clean, recovered after the controller's
    /// recovery pipeline ran, or unrecoverable. Commands the device
    /// refuses outright surface as [`SsdError`] instead.
    pub status: IoStatus,
}

/// Result of [`Ssd::power_loss_rebuild`].
#[derive(Debug, Clone, Copy)]
pub struct RebuildReport {
    /// Instant the device is ready to serve I/O again.
    pub ready: SimTime,
    /// Boot-scan duration.
    pub duration: SimDuration,
    /// Pages whose OOB area was scanned.
    pub pages_scanned: u64,
}

pub(crate) enum MappingState {
    Page(PageMap),
    Dftl(DftlMap),
    Block(BlockMap),
    Hybrid(HybridState),
}

/// How one flash read fared in the controller's recovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadRecovery {
    /// The first sense decoded cleanly.
    Clean,
    /// Recovered after `steps` recovery actions (retry-ladder rungs,
    /// an ECC escalation, parity-rebuild stripe reads). `rebuilt` marks
    /// recoveries that went all the way to parity reconstruction — the
    /// source page is then suspect and gets relocated.
    Recovered {
        /// Recovery actions on the critical path.
        steps: u32,
        /// Whether the data came from the stripe parity, not the page.
        rebuilt: bool,
    },
    /// The full pipeline failed; the payload is not the stored data.
    Lost,
}

impl ReadRecovery {
    /// The host-visible status classification.
    pub(crate) fn io_status(self) -> IoStatus {
        match self {
            ReadRecovery::Clean => IoStatus::Ok,
            ReadRecovery::Recovered { steps, .. } => IoStatus::RecoveredAfterRetry { steps },
            ReadRecovery::Lost => IoStatus::Unrecoverable,
        }
    }
}

pub(crate) struct FlashReadDone {
    pub(crate) end: SimTime,
    pub(crate) lun_wait: SimDuration,
    pub(crate) chan_wait: SimDuration,
    pub(crate) payload: PagePayload,
    pub(crate) status: ReadRecovery,
}

/// The simulated SSD.
pub struct Ssd {
    pub(crate) cfg: SsdConfig,
    pub(crate) capacity: Capacity,
    pub(crate) luns: Vec<Lun>,
    /// Channel/LUN/host-link timelines, trace, probe (Figure 2 "Scheduling").
    pub(crate) sched: Scheduler,
    pub(crate) dir: BlockDirectory,
    pub(crate) map: MappingState,
    /// Write-acknowledgement policy (Figure 2 "RAM").
    pub(crate) buffer: Box<dyn WriteBufferPolicy>,
    /// When/what to garbage-collect (Figure 2 "Garbage collection").
    pub(crate) gc_policy: Box<dyn GcPolicy>,
    /// Allocation bias + static migration (Figure 2 "Wear-leveling").
    pub(crate) wear_policy: Box<dyn WearPolicy>,
    pub(crate) metrics: SsdMetrics,
    pub(crate) rr: u32,
    pub(crate) last_submit: SimTime,
    /// True when several independently-clocked submission streams (per-
    /// core queue pairs) share this device: global submit order is then
    /// not a host invariant — NVMe only fetches *each* SQ in order.
    pub(crate) multi_queue: bool,
    /// Re-entrancy guard: GC triggered from inside GC relocation must not
    /// recurse (the inner allocation falls through to other LUNs instead).
    pub(crate) gc_gate: GcGate,
    /// Open replacement block (block-mapped FTL only).
    pub(crate) repl: Option<ReplCtx>,
    /// Monotonic out-of-band write sequence (power-loss rebuild ordering).
    pub(crate) oob_seq: u64,
    /// Per-channel transient-hiccup schedules from the fault plan:
    /// `(grant index, extra ns)` pairs, sorted. All empty when no plan
    /// is configured, in which case transfer times are untouched.
    pub(crate) chan_hiccups: Vec<Vec<(u64, u64)>>,
}

impl std::fmt::Debug for Ssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ssd")
            .field("luns", &self.luns.len())
            .field("exported_pages", &self.capacity.exported_pages)
            .field("host_reads", &self.metrics.host_reads)
            .field("host_writes", &self.metrics.host_writes)
            .finish()
    }
}

impl Ssd {
    /// Build a device from a configuration. The GC, wear-leveling, and
    /// write-buffer policies are instantiated from the configuration by
    /// the [`crate::controller`] factories.
    pub fn new(cfg: SsdConfig) -> Self {
        let nluns = cfg.total_luns();
        let geom = cfg.flash.geometry.clone();
        let capacity = Capacity::derive(&cfg.shape, &geom, cfg.op_ratio);
        let luns: Vec<Lun> = (0..nluns)
            .map(|i| {
                let mut lun = Lun::new(i, cfg.flash.clone(), cfg.seed);
                lun.apply_faults(cfg.fault.unit_view(i));
                lun
            })
            .collect();
        let chan_hiccups: Vec<Vec<(u64, u64)>> = (0..cfg.shape.channels)
            .map(|c| cfg.fault.channel_view(c))
            .collect();
        let sched = Scheduler::new(nluns, cfg.shape.channels);
        let exported = capacity.exported_pages;
        let page_size = geom.page_size;
        let ppb = geom.pages_per_block as u64;
        let map = match &cfg.ftl {
            FtlKind::PageMap => MappingState::Page(PageMap::new(exported)),
            FtlKind::Dftl { cached_entries } => {
                MappingState::Dftl(DftlMap::new(exported, *cached_entries, page_size, nluns))
            }
            FtlKind::BlockMap => MappingState::Block(BlockMap::new(exported.div_ceil(ppb))),
            FtlKind::Hybrid { log_blocks } => MappingState::Hybrid(HybridState::new(
                exported.div_ceil(ppb),
                *log_blocks as usize,
                geom.pages_per_block,
            )),
        };
        let buffer = crate::controller::buffer_policy_from(&cfg.buffer);
        let gc_policy = crate::controller::gc_policy_from(&cfg.gc);
        let wear_policy = crate::controller::wear_policy_from(&cfg.wl);
        Ssd {
            dir: BlockDirectory::new(nluns, geom),
            luns,
            sched,
            map,
            buffer,
            gc_policy,
            wear_policy,
            metrics: SsdMetrics::new(),
            rr: 0,
            capacity,
            cfg,
            last_submit: SimTime::ZERO,
            multi_queue: false,
            gc_gate: GcGate::new(),
            repl: None,
            oob_seq: 0,
            chan_hiccups,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Capacity accounting.
    pub fn capacity(&self) -> &Capacity {
        &self.capacity
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &SsdMetrics {
        &self.metrics
    }

    /// Erase-count spread across all blocks `(min, max, mean)`.
    pub fn wear_spread(&self) -> (u32, u32, f64) {
        self.dir.erase_count_spread()
    }

    /// Begin recording a Gantt trace of chip/channel occupancy.
    pub fn enable_trace(&mut self) {
        self.sched.trace = Some(Gantt::new());
    }

    /// Stop recording and return the trace, if any.
    pub fn take_trace(&mut self) -> Option<Gantt> {
        self.sched.trace.take()
    }

    /// Attach a cross-layer observability probe: every subsequent host
    /// command is decomposed into per-layer spans, with queueing delays
    /// blamed on their cause (GC, wear leveling, merges, translation).
    pub fn attach_probe(&mut self, probe: Probe) {
        self.sched.attach_probe(probe);
    }

    /// The attached probe (a disabled handle when none was attached).
    pub fn probe(&self) -> &Probe {
        self.sched.probe()
    }

    /// Replace the garbage-collection policy (custom experiments).
    pub fn set_gc_policy(&mut self, policy: Box<dyn GcPolicy>) {
        self.gc_policy = policy;
    }

    /// Replace the wear-leveling policy (custom experiments).
    pub fn set_wear_policy(&mut self, policy: Box<dyn WearPolicy>) {
        self.wear_policy = policy;
    }

    /// Replace the write-buffer policy (custom experiments).
    pub fn set_buffer_policy(&mut self, policy: Box<dyn WriteBufferPolicy>) {
        self.buffer = policy;
    }

    /// Name of the active GC policy.
    pub fn gc_policy_name(&self) -> &'static str {
        self.gc_policy.name()
    }

    /// Name of the active wear-leveling policy.
    pub fn wear_policy_name(&self) -> &'static str {
        self.wear_policy.name()
    }

    /// Name of the active write-buffer policy.
    pub fn buffer_policy_name(&self) -> &'static str {
        self.buffer.name()
    }

    /// The instant every queued operation has drained.
    pub fn drain_time(&self) -> SimTime {
        self.sched.drain_time()
    }

    /// Cumulative busy time of each channel.
    pub fn channel_busy_time(&self) -> Vec<SimDuration> {
        self.sched.chan_res.iter().map(|r| r.busy_time()).collect()
    }

    /// Cumulative busy time of each LUN.
    pub fn lun_busy_time(&self) -> Vec<SimDuration> {
        self.sched.lun_res.iter().map(|r| r.busy_time()).collect()
    }

    /// Utilization of each channel at `horizon`.
    pub fn channel_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.sched
            .chan_res
            .iter()
            .map(|r| r.utilization(horizon))
            .collect()
    }

    /// Utilization of each LUN at `horizon`.
    pub fn lun_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.sched
            .lun_res
            .iter()
            .map(|r| r.utilization(horizon))
            .collect()
    }

    /// Free blocks per LUN (diagnostics).
    pub fn free_blocks_per_lun(&self) -> Vec<u32> {
        (0..self.cfg.total_luns())
            .map(|i| self.dir.free_blocks(LunId(i)))
            .collect()
    }

    /// Valid pages per LUN (diagnostics).
    pub fn valid_pages_per_lun(&self) -> Vec<u64> {
        (0..self.cfg.total_luns())
            .map(|i| self.dir.lun_valid_pages(LunId(i)))
            .collect()
    }

    /// DFTL cache statistics `(hits, misses, dirty evictions)` if the
    /// device runs DFTL.
    pub fn dftl_stats(&self) -> Option<(u64, u64, u64)> {
        match &self.map {
            MappingState::Dftl(m) => Some(m.cache_stats()),
            _ => None,
        }
    }

    pub(crate) fn shape(&self) -> &ArrayShape {
        &self.cfg.shape
    }

    pub(crate) fn page_size(&self) -> u32 {
        self.cfg.flash.geometry.page_size
    }

    pub(crate) fn ppb(&self) -> u32 {
        self.cfg.flash.geometry.pages_per_block
    }

    pub(crate) fn total_luns(&self) -> u32 {
        self.cfg.total_luns()
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), SsdError> {
        if lpn.0 < self.capacity.exported_pages {
            Ok(())
        } else {
            Err(SsdError::LpnOutOfRange {
                lpn,
                exported: self.capacity.exported_pages,
            })
        }
    }

    /// Declare that several independently-clocked submitters (per-core
    /// queue pairs) share this device. Drops the global submit-order
    /// check: each stream must still be internally monotone, but across
    /// streams the controller serializes commands in *arrival* order —
    /// the standard multi-SQ approximation. Internal resource timelines
    /// stay FIFO, so replay is still deterministic.
    pub fn relax_submit_order(&mut self) {
        self.multi_queue = true;
    }

    fn note_submit(&mut self, now: SimTime) {
        debug_assert!(
            self.multi_queue || now >= self.last_submit,
            "host commands must be submitted in time order ({now} < {})",
            self.last_submit
        );
        self.last_submit = self.last_submit.max(now);
    }

    /// Controller-overhead span helper for the host command paths.
    fn span_overhead(&self, from: SimTime, to: SimTime) {
        if self.sched.probe.is_enabled() && to > from {
            self.sched
                .probe
                .span(Layer::Controller, Cause::Overhead, "fw", from, to);
        }
    }

    // ------------------------------------------------------------------
    // host API
    // ------------------------------------------------------------------

    /// Read one logical page.
    pub fn read(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_reads += 1;
        let scope = self.sched.probe.open_command("read", now);
        let t0 = now + self.cfg.controller_overhead;
        self.span_overhead(now, t0);
        // buffer hit?
        if self.buffer.enabled() && self.buffer.read_hit(lpn.0, t0) {
            self.metrics.buffer_read_hits += 1;
            let out = self.sched.host_link.reserve(t0, self.cfg.host_link_time());
            if self.sched.probe.is_enabled() {
                self.sched
                    .probe
                    .span(Layer::Buffer, Cause::BufferHit, "wbuf", t0, t0);
            }
            self.sched.emit_host_link_spans(t0, out);
            let latency = out.end.since(now);
            self.metrics.read_latency.record_duration(latency);
            scope.close(out.end);
            return Ok(Completion {
                done: out.end,
                latency,
                served: Served::Buffer,
                status: IoStatus::Ok,
            });
        }
        // resolve mapping
        let (phys, t1) = self.resolve_read(lpn, t0);
        if self.sched.probe.is_enabled() && t1 > t0 {
            self.sched
                .probe
                .span(Layer::Mapping, Cause::Translation, "dftl", t0, t1);
        }
        let Some(phys) = phys else {
            self.metrics.unmapped_reads += 1;
            let latency = t1.since(now);
            self.metrics.read_latency.record_duration(latency);
            scope.close(t1);
            return Ok(Completion {
                done: t1,
                latency,
                served: Served::Unmapped,
                status: IoStatus::Ok,
            });
        };
        let done = match self.op_read(t1, phys, true, OpCause::Host) {
            Ok(d) => d,
            Err(e) => {
                scope.abort();
                return Err(e);
            }
        };
        self.metrics.read_lun_wait.record_duration(done.lun_wait);
        self.metrics
            .read_channel_wait
            .record_duration(done.chan_wait);
        let status = done.status.io_status();
        if let ReadRecovery::Recovered { rebuilt: true, .. } = done.status {
            // parity reconstruction read around the page; the page (and
            // its neighbourhood) is suspect — move the data somewhere
            // healthy in the background
            self.relocate_after_rebuild(lpn, phys, done.end);
        }
        self.maybe_scrub(phys, done.end);
        let out = self
            .sched
            .host_link
            .reserve(done.end, self.cfg.host_link_time());
        self.sched.emit_host_link_spans(done.end, out);
        let latency = out.end.since(now);
        self.metrics.read_latency.record_duration(latency);
        self.sched.probe.note_status(status.as_str());
        scope.close(out.end);
        Ok(Completion {
            done: out.end,
            latency,
            served: Served::Flash,
            status,
        })
    }

    /// Relocate `lpn` off `old` after its data had to be reconstructed
    /// from stripe parity: rewrite the rebuilt payload to a fresh
    /// location and invalidate the suspect page. Background work — it
    /// does not gate the host completion. Fixed-offset FTLs (block /
    /// hybrid) keep data in place; their offsets are immovable.
    fn relocate_after_rebuild(&mut self, lpn: Lpn, old: PhysPage, t: SimTime) {
        if !matches!(self.map, MappingState::Page(_) | MappingState::Dftl(_)) {
            return;
        }
        let _bg = self.sched.probe.background();
        let Ok((new, _end)) = self.append_page(
            t,
            old.lun,
            crate::block_dir::Stream::Gc,
            lpn,
            true,
            OpCause::Recovery,
        ) else {
            // no space anywhere: leave the mapping pointing at the
            // suspect page; subsequent reads re-run the pipeline
            return;
        };
        match &mut self.map {
            MappingState::Page(m) => {
                m.update(lpn, new);
            }
            MappingState::Dftl(m) => {
                m.relocate(lpn, new);
            }
            // guarded above; no other mapping state reaches here
            _ => return,
        }
        self.dir.invalidate(old);
        self.dir.mark_valid(new, lpn);
        self.metrics.recovery.rebuild_relocations += 1;
    }

    /// Resolve the physical location for a read, charging mapping traffic.
    /// Total over every mapping state: no panic path exists.
    fn resolve_read(&mut self, lpn: Lpn, t0: SimTime) -> (Option<PhysPage>, SimTime) {
        if matches!(self.map, MappingState::Dftl(_)) {
            return self.resolve_read_dftl(lpn, t0);
        }
        let phys = match &self.map {
            MappingState::Page(m) => m.lookup(lpn),
            MappingState::Block(_) => self.resolve_read_block(lpn),
            MappingState::Hybrid(_) => self.resolve_read_hybrid(lpn),
            // handled above; kept total so the match cannot panic
            MappingState::Dftl(_) => None,
        };
        (phys, t0)
    }

    /// DFTL lookup: translation-page traffic is on the read's critical
    /// path (the caller attributes `[t0, t1)` as one mapping span).
    fn resolve_read_dftl(&mut self, lpn: Lpn, t0: SimTime) -> (Option<PhysPage>, SimTime) {
        let (phys, ios) = match &mut self.map {
            MappingState::Dftl(m) => {
                let mut ios = Vec::new();
                let phys = m.lookup(lpn, &mut ios);
                (phys, ios)
            }
            // only called under DFTL; any other state resolves to
            // "unmapped" rather than a controller panic
            _ => (None, Vec::new()),
        };
        let t1 = self.exec_trans(t0, &ios);
        (phys, t1)
    }

    /// Write one logical page.
    pub fn write(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_writes += 1;
        let scope = self.sched.probe.open_command("write", now);
        let link = self.sched.host_link.reserve(now, self.cfg.host_link_time());
        self.sched.emit_host_link_spans(now, link);
        let t0 = link.end + self.cfg.controller_overhead;
        self.span_overhead(link.end, t0);
        let salvages_before = self.metrics.recovery.program_salvages;
        let written = match self.cfg.ftl.clone() {
            FtlKind::PageMap | FtlKind::Dftl { .. } => self.write_page_mapped(t0, lpn),
            FtlKind::BlockMap => self.write_block_mapped(t0, lpn).map(|d| (d, Served::Flash)),
            FtlKind::Hybrid { .. } => self.write_hybrid(t0, lpn).map(|d| (d, Served::Flash)),
        };
        let (done, served) = match written {
            Ok(v) => v,
            Err(e) => {
                scope.abort();
                return Err(e);
            }
        };
        // any program salvage on this command's critical path means the
        // write completed only through the recovery pipeline
        let salvages = (self.metrics.recovery.program_salvages - salvages_before) as u32;
        let status = if salvages > 0 {
            IoStatus::RecoveredAfterRetry { steps: salvages }
        } else {
            IoStatus::Ok
        };
        let latency = done.since(now);
        self.metrics.write_latency.record_duration(latency);
        self.sched.probe.note_status(status.as_str());
        scope.close(done);
        Ok(Completion {
            done,
            latency,
            served,
            status,
        })
    }

    /// Snapshot of the logical→physical mapping (diagnostics; page-mapped
    /// FTLs only, `None` entries for unmapped pages).
    pub fn debug_mapping(&self) -> Option<Vec<Option<PhysPage>>> {
        match &self.map {
            MappingState::Page(m) => Some(
                (0..self.capacity.exported_pages)
                    .map(|l| m.lookup(Lpn(l)))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Trim (unmap) one logical page — the command the paper highlights as
    /// the first crack in the block interface.
    pub fn trim(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_trims += 1;
        let scope = self.sched.probe.open_command("trim", now);
        let done = now + self.cfg.controller_overhead;
        self.span_overhead(now, done);
        if self.buffer.enabled() {
            self.buffer.discard(lpn.0);
        }
        if matches!(self.map, MappingState::Block(_)) {
            self.trim_block(lpn);
        } else if matches!(self.map, MappingState::Hybrid(_)) {
            self.trim_hybrid(lpn);
        } else {
            self.trim_page_mapped(done, lpn);
        }
        let latency = done.since(now);
        scope.close(done);
        Ok(Completion {
            done,
            latency,
            served: Served::Controller,
            status: IoStatus::Ok,
        })
    }

    /// Trim under the page-mapped FTLs; the DFTL translation write-back
    /// does not gate the completion, so it is charged as background.
    fn trim_page_mapped(&mut self, done: SimTime, lpn: Lpn) {
        let (old, ios) = match &mut self.map {
            MappingState::Page(m) => (m.unmap(lpn), Vec::new()),
            MappingState::Dftl(m) => {
                let mut ios: Vec<TransIo> = Vec::new();
                let old = m.unmap(lpn, &mut ios);
                (old, ios)
            }
            // only called for page-mapped FTLs; elsewhere a trim of an
            // unknown page is a no-op, not a controller panic
            _ => (None, Vec::new()),
        };
        if !ios.is_empty() {
            let _bg = self.sched.probe.background();
            self.exec_trans(done, &ios);
        }
        if let Some(old) = old {
            self.dir.invalidate(old);
        }
    }
}
