//! The SSD device: the controller of the paper's Figure 2, in executable
//! form.
//!
//! [`Ssd`] wires together everything §2.2 describes: flash LUNs behind
//! shared channels, a mapping scheme ("Scheduling & Mapping"), garbage
//! collection, wear leveling, the battery-backed write buffer, and TRIM —
//! and exposes exactly the narrow waist the paper critiques: `read(lpn)`,
//! `write(lpn)`, `trim(lpn)` on a flat logical address space.
//!
//! Every host command returns a [`Completion`] carrying the virtual-time
//! instant it finished, so experiments can measure the latency/bandwidth
//! behaviour that the block device interface hides.
//!
//! ## Timing model
//!
//! Channels and LUNs are serial FIFO resources ([`requiem_sim::Resource`]).
//! A page read occupies: channel (command) → LUN (tR) → channel (data out).
//! A page program occupies: channel (command + data in) → LUN (tPROG).
//! An erase occupies: channel (command) → LUN (tBERS). Garbage collection
//! and merges reserve the same resources, which is how GC interference with
//! host reads (myth 3) emerges without being explicitly programmed in.
//!
//! Host commands must be submitted in non-decreasing time order.

use requiem_flash::{FlashError, Lun, PagePayload};
use requiem_sim::gantt::Gantt;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::Resource;

use crate::addr::{ArrayShape, Capacity, Lpn, LunId, PhysPage};
use crate::block_dir::{BlockDirectory, Stream};
use crate::buffer::WriteBuffer;
use crate::config::{FtlKind, Placement, SsdConfig};
use crate::mapping::block::{BlockMap, HybridState, PhysBlockRef};
use crate::mapping::dftl::{DftlMap, TransIo, TransIoKind};
use crate::mapping::page::PageMap;
use crate::metrics::{OpCause, SsdMetrics};

/// Errors surfaced by the device API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// The LPN is outside the exported address space.
    LpnOutOfRange {
        /// Offending LPN.
        lpn: Lpn,
        /// Exported page count.
        exported: u64,
    },
    /// The device could not find space even after garbage collection
    /// (worn out or logically over-filled).
    DeviceFull {
        /// The LUN that ran out.
        lun: LunId,
    },
}

impl std::fmt::Display for SsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsdError::LpnOutOfRange { lpn, exported } => {
                write!(f, "lpn {} out of range (exported {})", lpn.0, exported)
            }
            SsdError::DeviceFull { lun } => write!(f, "no usable space left on lun {}", lun.0),
        }
    }
}

impl std::error::Error for SsdError {}

/// Where a host command was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Flash array.
    Flash,
    /// The battery-backed write buffer.
    Buffer,
    /// Nothing to read (never-written page) — controller answers directly.
    Unmapped,
    /// Metadata-only command (trim).
    Controller,
}

/// Completion record of one host command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Instant the command completed.
    pub done: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// What served it.
    pub served: Served,
}

/// Result of [`Ssd::power_loss_rebuild`].
#[derive(Debug, Clone, Copy)]
pub struct RebuildReport {
    /// Instant the device is ready to serve I/O again.
    pub ready: SimTime,
    /// Boot-scan duration.
    pub duration: SimDuration,
    /// Pages whose OOB area was scanned.
    pub pages_scanned: u64,
}

enum MappingState {
    Page(PageMap),
    Dftl(DftlMap),
    Block(BlockMap),
    Hybrid(HybridState),
}

struct FlashReadDone {
    end: SimTime,
    lun_wait: SimDuration,
    chan_wait: SimDuration,
    payload: PagePayload,
}

/// Replacement-block context for the block-mapped FTL: the classic
/// pre-2009 scheme that keeps sequential overwrites cheap. A rewrite below
/// the data block's write point opens a replacement block; in-order
/// follow-up writes append into it; touching another logical block (or
/// going backwards) finalizes the replacement (copy the tail, erase the
/// old block, switch the mapping).
#[derive(Debug, Clone, Copy)]
struct ReplCtx {
    lbn: u64,
    old: PhysBlockRef,
    new: PhysBlockRef,
    copies: u32,
}

/// The simulated SSD.
pub struct Ssd {
    cfg: SsdConfig,
    capacity: Capacity,
    luns: Vec<Lun>,
    lun_res: Vec<Resource>,
    chan_res: Vec<Resource>,
    host_link: Resource,
    dir: BlockDirectory,
    map: MappingState,
    buffer: WriteBuffer,
    metrics: SsdMetrics,
    rr: u32,
    trace: Option<Gantt>,
    last_submit: SimTime,
    /// Re-entrancy guard: GC triggered from inside GC relocation must not
    /// recurse (the inner allocation falls through to other LUNs instead).
    gc_active: bool,
    /// Open replacement block (block-mapped FTL only).
    repl: Option<ReplCtx>,
    /// Monotonic out-of-band write sequence (power-loss rebuild ordering).
    oob_seq: u64,
}

impl std::fmt::Debug for Ssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ssd")
            .field("luns", &self.luns.len())
            .field("exported_pages", &self.capacity.exported_pages)
            .field("host_reads", &self.metrics.host_reads)
            .field("host_writes", &self.metrics.host_writes)
            .finish()
    }
}

impl Ssd {
    /// Build a device from a configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let nluns = cfg.total_luns();
        let geom = cfg.flash.geometry.clone();
        let capacity = Capacity::derive(&cfg.shape, &geom, cfg.op_ratio);
        let luns: Vec<Lun> = (0..nluns)
            .map(|i| Lun::new(i, cfg.flash.clone(), cfg.seed))
            .collect();
        let lun_res = (0..nluns)
            .map(|i| Resource::new(format!("chip{i}")))
            .collect();
        let chan_res = (0..cfg.shape.channels)
            .map(|i| Resource::new(format!("chan{i}")))
            .collect();
        let exported = capacity.exported_pages;
        let page_size = geom.page_size;
        let ppb = geom.pages_per_block as u64;
        let map = match &cfg.ftl {
            FtlKind::PageMap => MappingState::Page(PageMap::new(exported)),
            FtlKind::Dftl { cached_entries } => {
                MappingState::Dftl(DftlMap::new(exported, *cached_entries, page_size, nluns))
            }
            FtlKind::BlockMap => MappingState::Block(BlockMap::new(exported.div_ceil(ppb))),
            FtlKind::Hybrid { log_blocks } => MappingState::Hybrid(HybridState::new(
                exported.div_ceil(ppb),
                *log_blocks as usize,
                geom.pages_per_block,
            )),
        };
        let buffer = WriteBuffer::new(cfg.buffer.capacity_pages as usize);
        Ssd {
            dir: BlockDirectory::new(nluns, geom),
            luns,
            lun_res,
            chan_res,
            host_link: Resource::new("host-link"),
            map,
            buffer,
            metrics: SsdMetrics::new(),
            rr: 0,
            trace: None,
            capacity,
            cfg,
            last_submit: SimTime::ZERO,
            gc_active: false,
            repl: None,
            oob_seq: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Capacity accounting.
    pub fn capacity(&self) -> &Capacity {
        &self.capacity
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &SsdMetrics {
        &self.metrics
    }

    /// Erase-count spread across all blocks `(min, max, mean)`.
    pub fn wear_spread(&self) -> (u32, u32, f64) {
        self.dir.erase_count_spread()
    }

    /// Begin recording a Gantt trace of chip/channel occupancy.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Gantt::new());
    }

    /// Stop recording and return the trace, if any.
    pub fn take_trace(&mut self) -> Option<Gantt> {
        self.trace.take()
    }

    /// The instant every queued operation has drained.
    pub fn drain_time(&self) -> SimTime {
        let mut t = self.host_link.next_free();
        for r in self.lun_res.iter().chain(self.chan_res.iter()) {
            t = t.max(r.next_free());
        }
        t
    }

    /// Cumulative busy time of each channel.
    pub fn channel_busy_time(&self) -> Vec<requiem_sim::time::SimDuration> {
        self.chan_res.iter().map(|r| r.busy_time()).collect()
    }

    /// Cumulative busy time of each LUN.
    pub fn lun_busy_time(&self) -> Vec<requiem_sim::time::SimDuration> {
        self.lun_res.iter().map(|r| r.busy_time()).collect()
    }

    /// Utilization of each channel at `horizon`.
    pub fn channel_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.chan_res
            .iter()
            .map(|r| r.utilization(horizon))
            .collect()
    }

    /// Utilization of each LUN at `horizon`.
    pub fn lun_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.lun_res
            .iter()
            .map(|r| r.utilization(horizon))
            .collect()
    }

    /// Free blocks per LUN (diagnostics).
    pub fn free_blocks_per_lun(&self) -> Vec<u32> {
        (0..self.cfg.total_luns())
            .map(|i| self.dir.free_blocks(LunId(i)))
            .collect()
    }

    /// Valid pages per LUN (diagnostics).
    pub fn valid_pages_per_lun(&self) -> Vec<u64> {
        (0..self.cfg.total_luns())
            .map(|i| self.dir.lun_valid_pages(LunId(i)))
            .collect()
    }

    /// DFTL cache statistics `(hits, misses, dirty evictions)` if the
    /// device runs DFTL.
    pub fn dftl_stats(&self) -> Option<(u64, u64, u64)> {
        match &self.map {
            MappingState::Dftl(m) => Some(m.cache_stats()),
            _ => None,
        }
    }

    fn shape(&self) -> &ArrayShape {
        &self.cfg.shape
    }

    fn page_size(&self) -> u32 {
        self.cfg.flash.geometry.page_size
    }

    fn ppb(&self) -> u32 {
        self.cfg.flash.geometry.pages_per_block
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<(), SsdError> {
        if lpn.0 < self.capacity.exported_pages {
            Ok(())
        } else {
            Err(SsdError::LpnOutOfRange {
                lpn,
                exported: self.capacity.exported_pages,
            })
        }
    }

    fn note_submit(&mut self, now: SimTime) {
        debug_assert!(
            now >= self.last_submit,
            "host commands must be submitted in time order ({now} < {})",
            self.last_submit
        );
        self.last_submit = self.last_submit.max(now);
    }

    // ------------------------------------------------------------------
    // flash op primitives (resource-timed)
    // ------------------------------------------------------------------

    fn trace_span(&mut self, lane: String, start: SimTime, end: SimTime, glyph: char) {
        if let Some(g) = self.trace.as_mut() {
            g.record(lane, start, end, glyph, "");
        }
    }

    fn op_read(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        with_transfer: bool,
        cause: OpCause,
    ) -> FlashReadDone {
        let chan = self.shape().channel_of(phys.lun) as usize;
        // command/address cycles (~0.2µs) are charged as latency but not
        // as bus occupancy: modelling them as channel reservations would
        // serialize later commands behind earlier 100µs data transfers,
        // which real command queueing does not do
        let cmd_done = not_before + self.cfg.channel.command;
        let (dur, payload) = match self.luns[phys.lun.0 as usize].read(phys.addr) {
            Ok(o) => (o.duration, o.payload),
            Err(FlashError::UncorrectableRead { .. }) => {
                // assume controller-level redundancy recovers at the cost
                // of a re-read
                self.metrics.uncorrectable_reads += 1;
                (self.cfg.flash.timing.read * 2, PagePayload::Empty)
            }
            Err(e) => panic!("FTL bug: illegal flash read at {:?}: {e}", phys),
        };
        let lg = self.lun_res[phys.lun.0 as usize].reserve(cmd_done, dur);
        let lun_wait = lg.start.since(cmd_done);
        self.metrics.flash_reads.bump(cause);
        self.trace_span(format!("chip{}", phys.lun.0), lg.start, lg.end, 'R');
        let (end, chan_wait) = if with_transfer {
            let xfer = self.cfg.channel.transfer(self.page_size());
            let xg = self.chan_res[chan].reserve(lg.end, xfer);
            self.trace_span(format!("chan{chan}"), xg.start, xg.end, 't');
            (xg.end, xg.start.since(lg.end))
        } else {
            (lg.end, SimDuration::ZERO)
        };
        FlashReadDone {
            end,
            lun_wait,
            chan_wait,
            payload,
        }
    }

    /// Program `phys` with the tag for `lpn`. `Err(())` = wear-induced
    /// program failure (caller retires the block and retries elsewhere).
    fn op_program(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        lpn: Lpn,
        use_channel: bool,
        cause: OpCause,
    ) -> Result<SimTime, ()> {
        let chan = self.shape().channel_of(phys.lun) as usize;
        let start = if use_channel {
            let bus_time = self.cfg.channel.write_bus_time(self.page_size());
            let bus = self.chan_res[chan].reserve(not_before, bus_time);
            self.trace_span(format!("chan{chan}"), bus.start, bus.end, 't');
            bus.end
        } else {
            not_before
        };
        self.oob_seq += 1;
        let oob = PagePayload::Oob {
            lpn: lpn.0,
            seq: self.oob_seq,
        };
        let dur = match self.luns[phys.lun.0 as usize].program(phys.addr, oob) {
            Ok(o) => o.duration,
            Err(FlashError::ProgramFailed { .. }) => return Err(()),
            Err(e) => panic!("FTL bug: illegal flash program at {:?}: {e}", phys),
        };
        let g = self.lun_res[phys.lun.0 as usize].reserve(start, dur);
        self.metrics.flash_programs.bump(cause);
        self.trace_span(format!("chip{}", phys.lun.0), g.start, g.end, 'P');
        Ok(g.end)
    }

    /// Erase a block; on wear-out failure the block is retired. Returns
    /// the erase completion either way (the time was spent).
    fn op_erase(
        &mut self,
        not_before: SimTime,
        lun: LunId,
        block_idx: u32,
        cause: OpCause,
    ) -> SimTime {
        let baddr = self.cfg.flash.geometry.block_from_index(block_idx);
        let cmd_done = not_before + self.cfg.channel.command;
        match self.luns[lun.0 as usize].erase(baddr) {
            Ok(o) => {
                let g = self.lun_res[lun.0 as usize].reserve(cmd_done, o.duration);
                self.metrics.flash_erases.bump(cause);
                self.trace_span(format!("chip{}", lun.0), g.start, g.end, 'E');
                self.dir.recycle(lun, block_idx);
                g.end
            }
            Err(FlashError::EraseFailed { .. }) => {
                let g = self.lun_res[lun.0 as usize].reserve(cmd_done, self.cfg.flash.timing.erase);
                self.metrics.flash_erases.bump(cause);
                self.metrics.blocks_retired += 1;
                self.dir.retire(lun, block_idx);
                g.end
            }
            Err(e) => panic!("FTL bug: illegal erase of {baddr}: {e}"),
        }
    }

    /// Charge DFTL translation traffic, serialized after `t`.
    fn exec_trans(&mut self, mut t: SimTime, ios: &[TransIo]) -> SimTime {
        for io in ios {
            let chan = self.shape().channel_of(io.lun) as usize;
            let xfer = self.cfg.channel.transfer(self.page_size());
            match io.kind {
                TransIoKind::Read => {
                    let cmd_done = t + self.cfg.channel.command;
                    let lg = self.lun_res[io.lun.0 as usize]
                        .reserve(cmd_done, self.cfg.flash.timing.read);
                    let xg = self.chan_res[chan].reserve(lg.end, xfer);
                    self.metrics.flash_reads.bump(OpCause::Translation);
                    t = xg.end;
                }
                TransIoKind::Write => {
                    // read–modify–write of a translation page
                    let cmd_done = t + self.cfg.channel.command;
                    let rg = self.lun_res[io.lun.0 as usize]
                        .reserve(cmd_done, self.cfg.flash.timing.read);
                    let bus_time = self.cfg.channel.write_bus_time(self.page_size());
                    let bus = self.chan_res[chan].reserve(rg.end, bus_time);
                    let pg = self.lun_res[io.lun.0 as usize]
                        .reserve(bus.end, self.cfg.flash.timing.program_mean());
                    self.metrics.flash_reads.bump(OpCause::Translation);
                    self.metrics.flash_programs.bump(OpCause::Translation);
                    t = pg.end;
                }
            }
        }
        t
    }

    // ------------------------------------------------------------------
    // placement, allocation, GC
    // ------------------------------------------------------------------

    fn total_luns(&self) -> u32 {
        self.shape().total_luns()
    }

    fn place_lun(&mut self, lpn: Lpn, t: SimTime) -> LunId {
        match self.cfg.placement {
            Placement::StaticByLpn => LunId((lpn.0 % self.total_luns() as u64) as u32),
            Placement::RoundRobin => {
                let i = self.rr;
                self.rr = self.rr.wrapping_add(1);
                self.shape().interleaved_lun(i % self.total_luns())
            }
            Placement::LeastLoaded => {
                // earliest-start wins; ties rotate round-robin so an idle
                // device still stripes writes across every LUN (a
                // lowest-index tie-break would degenerate to filling one
                // LUN at a time under closed-loop workloads)
                let prog = self.cfg.flash.timing.program_mean();
                let n = self.total_luns();
                let offset = self.rr;
                self.rr = self.rr.wrapping_add(1);
                let mut best = LunId(offset % n);
                let mut best_start = SimTime::MAX;
                for k in 0..n {
                    let l = self.shape().interleaved_lun((offset.wrapping_add(k)) % n);
                    if self.dir.exhausted(l) {
                        continue;
                    }
                    let start = self.lun_res[l.0 as usize].peek(t, prog).start;
                    if start < best_start {
                        best_start = start;
                        best = l;
                    }
                }
                best
            }
        }
    }

    /// Run GC on `lun` until it has breathing room (page-mapped FTLs only).
    fn maybe_gc(&mut self, lun: LunId, t: SimTime) {
        if !matches!(self.map, MappingState::Page(_) | MappingState::Dftl(_)) {
            return;
        }
        if self.gc_active {
            return; // no recursive GC; inner allocations spill to other LUNs
        }
        self.gc_active = true;
        let threshold = self.cfg.gc.free_block_threshold;
        let mut guard = self.cfg.flash.geometry.total_blocks();
        while self.dir.free_blocks(lun) <= threshold && guard > 0 {
            guard -= 1;
            let Some(victim) = self.dir.pick_victim(lun, self.cfg.gc.policy) else {
                break;
            };
            if self.gc_collect(lun, victim, t).is_err() {
                // relocation space exhausted (worn-out device): stop —
                // the caller's allocation will surface DeviceFull
                break;
            }
        }
        self.gc_active = false;
        if self.cfg.wl.static_threshold > 0 {
            let (min, max, _) = self.dir.erase_count_spread();
            if max - min > self.cfg.wl.static_threshold {
                self.static_wear_level(lun, t);
            }
        }
    }

    /// Relocate all live pages of `victim` and erase it. On relocation
    /// failure (worn-out device) the victim keeps its remaining live pages
    /// and is NOT erased — data stays readable, writes will report full.
    fn gc_collect(&mut self, lun: LunId, victim: u32, t: SimTime) -> Result<(), SsdError> {
        self.metrics.gc_runs += 1;
        let live = self.dir.live_pages(lun, victim);
        for (addr, lpn) in live {
            let old = PhysPage { lun, addr };
            self.relocate_page(old, lpn, t, OpCause::Gc)?;
        }
        // DFTL: one batched translation write-back per collected block
        if let MappingState::Dftl(_) = self.map {
            let ios = [TransIo {
                lun,
                kind: TransIoKind::Write,
            }];
            self.exec_trans(t, &ios);
        }
        self.op_erase(t, lun, victim, OpCause::Gc);
        Ok(())
    }

    /// Move one live page elsewhere (GC / wear leveling / salvage).
    /// Fails only when no LUN can host the page (worn-out device); the
    /// source page is left untouched in that case.
    fn relocate_page(
        &mut self,
        old: PhysPage,
        lpn: Lpn,
        t: SimTime,
        cause: OpCause,
    ) -> Result<(), SsdError> {
        let copyback = self.cfg.gc.copyback;
        let read = self.op_read(t, old, !copyback, cause);
        // consistency check: the OOB tag must match the directory — unless
        // the read itself was uncorrectable (payload lost, Empty returned),
        // in which case the relocation proceeds from assumed redundancy
        debug_assert!(
            matches!(read.payload, PagePayload::Oob { lpn: l, .. } if l == lpn.0)
                || read.payload == PagePayload::Empty,
            "GC read of {:?} expected lpn {} got {:?}",
            old,
            lpn.0,
            read.payload
        );
        let (new, _end) = self.append_page(read.end, old.lun, Stream::Gc, lpn, !copyback, cause)?;
        match &mut self.map {
            MappingState::Page(m) => {
                let prev = m.update(lpn, new);
                debug_assert_eq!(prev, Some(old));
            }
            MappingState::Dftl(m) => {
                let prev = m.relocate(lpn, new);
                debug_assert_eq!(prev, Some(old));
            }
            _ => unreachable!("relocate_page only used by page-mapped FTLs"),
        }
        self.dir.invalidate(old);
        self.dir.mark_valid(new, lpn);
        self.metrics.gc_pages_moved += 1;
        Ok(())
    }

    /// Read-disturb scrubbing: if the block holding `phys` has absorbed
    /// more reads than the configured threshold since its last erase,
    /// relocate its live pages and erase it (page-mapped FTLs only).
    fn maybe_scrub(&mut self, phys: PhysPage, t: SimTime) {
        let threshold = self.cfg.scrub_after_reads;
        if threshold == 0 || !matches!(self.map, MappingState::Page(_) | MappingState::Dftl(_)) {
            return;
        }
        if self.gc_active {
            return;
        }
        let geom = self.cfg.flash.geometry.clone();
        let baddr = geom.block_of(phys.addr);
        let reads = self.luns[phys.lun.0 as usize]
            .block_state(baddr)
            .reads_since_erase;
        if reads < threshold {
            return;
        }
        let block_idx = geom.block_index(baddr);
        // never scrub an open frontier; it will be erased soon anyway
        if self.dir.block_info(phys.lun, block_idx).state != crate::block_dir::BlockUse::Full {
            return;
        }
        self.gc_active = true;
        self.metrics.scrubs += 1;
        let _ = self.gc_collect(phys.lun, block_idx, t);
        self.gc_active = false;
    }

    /// Static wear leveling: migrate the coldest full block so its low-wear
    /// block re-enters circulation.
    fn static_wear_level(&mut self, lun: LunId, t: SimTime) {
        let Some(victim) = self.dir.coldest_full_block(lun) else {
            return;
        };
        let live = self.dir.live_pages(lun, victim);
        for (addr, lpn) in live {
            let old = PhysPage { lun, addr };
            if self.relocate_page(old, lpn, t, OpCause::WearLevel).is_err() {
                return; // out of space: leave the block as-is
            }
        }
        self.op_erase(t, lun, victim, OpCause::WearLevel);
    }

    /// Allocate the next page on `lun` for `stream` and program it.
    /// Falls back to other LUNs when this one is out of space; retires
    /// blocks whose programs fail.
    fn append_page(
        &mut self,
        t: SimTime,
        lun: LunId,
        stream: Stream,
        lpn: Lpn,
        use_channel: bool,
        cause: OpCause,
    ) -> Result<(PhysPage, SimTime), SsdError> {
        let wear_aware = self.cfg.wl.dynamic;
        let mut lun = lun;
        let mut tries = 0u32;
        loop {
            tries += 1;
            if tries > 4 * self.total_luns() {
                return Err(SsdError::DeviceFull { lun });
            }
            let np = match self.dir.next_page(lun, stream, wear_aware) {
                Some(np) => np,
                None => {
                    // out of free blocks here: try GC, then other LUNs
                    self.maybe_gc(lun, t);
                    match self.dir.next_page(lun, stream, wear_aware) {
                        Some(np) => np,
                        None => {
                            let next = LunId((lun.0 + 1) % self.total_luns());
                            if next.0 == 0 && tries > self.total_luns() {
                                return Err(SsdError::DeviceFull { lun });
                            }
                            lun = next;
                            continue;
                        }
                    }
                }
            };
            match self.op_program(t, np.phys, lpn, use_channel, cause) {
                Ok(end) => return Ok((np.phys, end)),
                Err(()) => {
                    // wear-induced failure: salvage live pages, retire block
                    self.salvage_and_retire(np.phys.lun, np.phys.addr, t);
                    continue;
                }
            }
        }
    }

    fn salvage_and_retire(&mut self, lun: LunId, addr: requiem_flash::PageAddr, t: SimTime) {
        let geom = self.cfg.flash.geometry.clone();
        let block_idx = geom.block_index(geom.block_of(addr));
        // retire FIRST: the block leaves the free pool and loses any
        // frontier pointing at it, so the salvage relocations below (and
        // their own retries) can never target it again — a program
        // failure inside the salvage of the same block would otherwise
        // recurse with stale locations
        self.metrics.blocks_retired += 1;
        self.dir.retire(lun, block_idx);
        let live = self.dir.live_pages(lun, block_idx);
        for (a, lpn) in live {
            let old = PhysPage { lun, addr: a };
            // on failure the page stays live on the retired block: still
            // readable through the mapping, never allocatable again
            let _ = self.relocate_page(old, lpn, t, OpCause::WearLevel);
        }
    }

    // ------------------------------------------------------------------
    // host API
    // ------------------------------------------------------------------

    /// Read one logical page.
    pub fn read(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_reads += 1;
        let t0 = now + self.cfg.controller_overhead;
        // buffer hit?
        if self.buffer.enabled() && self.buffer.read_hit(lpn.0, t0) {
            self.metrics.buffer_read_hits += 1;
            let out = self.host_link.reserve(t0, self.cfg.host_link_time());
            let latency = out.end.since(now);
            self.metrics.read_latency.record_duration(latency);
            return Ok(Completion {
                done: out.end,
                latency,
                served: Served::Buffer,
            });
        }
        // resolve mapping
        let (phys, t1) = self.resolve_read(lpn, t0);
        let Some(phys) = phys else {
            self.metrics.unmapped_reads += 1;
            let latency = t1.since(now);
            self.metrics.read_latency.record_duration(latency);
            return Ok(Completion {
                done: t1,
                latency,
                served: Served::Unmapped,
            });
        };
        let done = self.op_read(t1, phys, true, OpCause::Host);
        self.metrics.read_lun_wait.record_duration(done.lun_wait);
        self.metrics
            .read_channel_wait
            .record_duration(done.chan_wait);
        self.maybe_scrub(phys, done.end);
        let out = self.host_link.reserve(done.end, self.cfg.host_link_time());
        let latency = out.end.since(now);
        self.metrics.read_latency.record_duration(latency);
        Ok(Completion {
            done: out.end,
            latency,
            served: Served::Flash,
        })
    }

    /// Resolve the physical location for a read, charging mapping traffic.
    fn resolve_read(&mut self, lpn: Lpn, t0: SimTime) -> (Option<PhysPage>, SimTime) {
        match &mut self.map {
            MappingState::Page(m) => (m.lookup(lpn), t0),
            MappingState::Dftl(m) => {
                let mut ios = Vec::new();
                let phys = m.lookup(lpn, &mut ios);
                let t1 = self.exec_trans(t0, &ios);
                (phys, t1)
            }
            MappingState::Block(m) => {
                let ppb = self.cfg.flash.geometry.pages_per_block as u64;
                let lbn = lpn.0 / ppb;
                let off = (lpn.0 % ppb) as u32;
                // candidate blocks: the open replacement (if it is this
                // logical block's), then the mapped data block
                let mut candidates: Vec<PhysBlockRef> = Vec::with_capacity(2);
                if let Some(ctx) = &self.repl {
                    if ctx.lbn == lbn {
                        candidates.push(ctx.new);
                    }
                }
                if let Some(pb) = m.lookup(lbn) {
                    candidates.push(pb);
                }
                let geometry = self.cfg.flash.geometry.clone();
                for pb in candidates {
                    let info = self.dir.block_info(pb.lun, pb.block);
                    if info.backptrs[off as usize] == Some(lpn) {
                        let baddr = geometry.block_from_index(pb.block);
                        return (
                            Some(PhysPage {
                                lun: pb.lun,
                                addr: geometry.page_addr(baddr.plane, baddr.block, off),
                            }),
                            t0,
                        );
                    }
                }
                (None, t0)
            }
            MappingState::Hybrid(h) => {
                let ppb = h.pages_per_block() as u64;
                let lbn = lpn.0 / ppb;
                let off = (lpn.0 % ppb) as u32;
                // newest version may be in the log block — but a trim can
                // have killed it while log.latest still points there, so
                // verify against the directory's back-pointer
                if let Some(log) = h.log_of(lbn) {
                    if let Some(log_page) = log.latest[off as usize] {
                        let info = self.dir.block_info(log.phys.lun, log.phys.block);
                        if info.backptrs[log_page as usize] == Some(lpn) {
                            let baddr = self.cfg.flash.geometry.block_from_index(log.phys.block);
                            return (
                                Some(PhysPage {
                                    lun: log.phys.lun,
                                    addr: self.cfg.flash.geometry.page_addr(
                                        baddr.plane,
                                        baddr.block,
                                        log_page,
                                    ),
                                }),
                                t0,
                            );
                        }
                        // fall through: trimmed in the log; the data-block
                        // copy (if any) was also invalidated at append time
                        return (None, t0);
                    }
                }
                match h.data.lookup(lbn) {
                    None => (None, t0),
                    Some(pb) => {
                        let info = self.dir.block_info(pb.lun, pb.block);
                        match info.backptrs[off as usize] {
                            Some(l) if l == lpn => {
                                let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                                (
                                    Some(PhysPage {
                                        lun: pb.lun,
                                        addr: self.cfg.flash.geometry.page_addr(
                                            baddr.plane,
                                            baddr.block,
                                            off,
                                        ),
                                    }),
                                    t0,
                                )
                            }
                            _ => (None, t0),
                        }
                    }
                }
            }
        }
    }

    /// Write one logical page.
    pub fn write(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_writes += 1;
        let link = self.host_link.reserve(now, self.cfg.host_link_time());
        let t0 = link.end + self.cfg.controller_overhead;
        let (done, served) = match self.cfg.ftl.clone() {
            FtlKind::PageMap | FtlKind::Dftl { .. } => self.write_page_mapped(t0, lpn)?,
            FtlKind::BlockMap => (self.write_block_mapped(t0, lpn)?, Served::Flash),
            FtlKind::Hybrid { .. } => (self.write_hybrid(t0, lpn)?, Served::Flash),
        };
        let latency = done.since(now);
        self.metrics.write_latency.record_duration(latency);
        Ok(Completion {
            done,
            latency,
            served,
        })
    }

    fn write_page_mapped(&mut self, t0: SimTime, lpn: Lpn) -> Result<(SimTime, Served), SsdError> {
        if self.buffer.enabled() {
            let start = self.buffer.acquire(t0);
            let flush_end = self.flush_page(start, lpn)?;
            self.buffer.commit(lpn.0, flush_end);
            Ok((start, Served::Buffer))
        } else {
            let end = self.flush_page(t0, lpn)?;
            Ok((end, Served::Flash))
        }
    }

    /// Place + program one page and update the mapping.
    fn flush_page(&mut self, t: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        let lun = self.place_lun(lpn, t);
        self.maybe_gc(lun, t);
        let (phys, end) = self.append_page(t, lun, Stream::Host, lpn, true, OpCause::Host)?;
        let old = match &mut self.map {
            MappingState::Page(m) => m.update(lpn, phys),
            MappingState::Dftl(m) => {
                let mut ios = Vec::new();
                let old = m.update(lpn, phys, &mut ios);
                self.exec_trans(t, &ios);
                old
            }
            _ => unreachable!(),
        };
        if let Some(o) = old {
            self.dir.invalidate(o);
        }
        self.dir.mark_valid(phys, lpn);
        Ok(end)
    }

    // -------------------------- block-mapped --------------------------

    fn block_phys(&self, pb: PhysBlockRef, page: u32) -> PhysPage {
        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
        PhysPage {
            lun: pb.lun,
            addr: self
                .cfg
                .flash
                .geometry
                .page_addr(baddr.plane, baddr.block, page),
        }
    }

    fn place_lun_for_block(&mut self, lbn: u64, t: SimTime) -> LunId {
        match self.cfg.placement {
            Placement::StaticByLpn => LunId((lbn % self.total_luns() as u64) as u32),
            _ => self.place_lun(Lpn(lbn), t),
        }
    }

    fn alloc_block_on(&mut self, lun: LunId, _t: SimTime) -> Result<u32, SsdError> {
        let wear_aware = self.cfg.wl.dynamic;
        self.dir
            .alloc_block(lun, wear_aware)
            .ok_or(SsdError::DeviceFull { lun })
    }

    /// Copy live pages of `old` at offsets `[from, to)` into the same
    /// offsets of `new` (replacement catch-up).
    fn repl_copy_range(
        &mut self,
        t: SimTime,
        old: PhysBlockRef,
        new: PhysBlockRef,
        from: u32,
        to: u32,
    ) -> Result<u32, SsdError> {
        let copyback = self.cfg.gc.copyback;
        let mut copied = 0u32;
        let mut cursor = t;
        for o in from..to {
            let info = self.dir.block_info(old.lun, old.block);
            let Some(lpn_o) = info.backptrs[o as usize] else {
                continue; // gap: C3 permits skipping ahead
            };
            let src = self.block_phys(old, o);
            let read = self.op_read(cursor, src, !copyback, OpCause::Merge);
            let dst = self.block_phys(new, o);
            let end = self
                .op_program(read.end, dst, lpn_o, !copyback, OpCause::Merge)
                .map_err(|()| SsdError::DeviceFull { lun: new.lun })?;
            self.dir.invalidate(src);
            self.dir.mark_valid(dst, lpn_o);
            cursor = end;
            copied += 1;
        }
        Ok(copied)
    }

    /// Close the open replacement block: copy the remaining tail, erase
    /// the old block, switch the mapping.
    fn finalize_replacement(&mut self, t: SimTime) -> Result<(), SsdError> {
        let Some(ctx) = self.repl.take() else {
            return Ok(());
        };
        let ppb = self.ppb();
        let baddr = self.cfg.flash.geometry.block_from_index(ctx.new.block);
        let wp_new = self.luns[ctx.new.lun.0 as usize]
            .block_state(baddr)
            .write_point;
        let tail = self.repl_copy_range(t, ctx.old, ctx.new, wp_new, ppb)?;
        // anything still marked live in the old block is stale now
        let stale = self.dir.live_pages(ctx.old.lun, ctx.old.block);
        for (a, _) in stale {
            self.dir.invalidate(PhysPage {
                lun: ctx.old.lun,
                addr: a,
            });
        }
        self.op_erase(t, ctx.old.lun, ctx.old.block, OpCause::Merge);
        match &mut self.map {
            MappingState::Block(m) => {
                m.update(ctx.lbn, ctx.new);
            }
            _ => unreachable!("replacement blocks exist only under block mapping"),
        }
        if ctx.copies + tail == 0 {
            self.metrics.merges_switch += 1;
        } else {
            self.metrics.merges_full += 1;
        }
        Ok(())
    }

    fn write_block_mapped(&mut self, t0: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        let ppb = self.ppb() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        // an open replacement block for this logical block?
        if let Some(ctx) = self.repl {
            if ctx.lbn == lbn {
                let baddr = self.cfg.flash.geometry.block_from_index(ctx.new.block);
                let wp_new = self.luns[ctx.new.lun.0 as usize]
                    .block_state(baddr)
                    .write_point;
                if off >= wp_new {
                    // in-order continuation: catch up the gap, then append
                    let copied = self.repl_copy_range(t0, ctx.old, ctx.new, wp_new, off)?;
                    if let Some(c) = self.repl.as_mut() {
                        c.copies += copied;
                    }
                    self.dir
                        .invalidate_checked(self.block_phys(ctx.old, off), lpn);
                    let phys = self.block_phys(ctx.new, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|()| SsdError::DeviceFull { lun: ctx.new.lun })?;
                    self.dir.mark_valid(phys, lpn);
                    return Ok(end);
                }
                // going backwards: close this replacement and start over
                self.finalize_replacement(t0)?;
            }
        }
        let cur = match &self.map {
            MappingState::Block(m) => m.lookup(lbn),
            _ => unreachable!(),
        };
        match cur {
            None => {
                let lun = self.place_lun_for_block(lbn, t0);
                let block = self.alloc_block_on(lun, t0)?;
                let pb = PhysBlockRef { lun, block };
                let phys = self.block_phys(pb, off);
                let end = self
                    .op_program(t0, phys, lpn, true, OpCause::Host)
                    .map_err(|()| SsdError::DeviceFull { lun })?;
                if let MappingState::Block(m) = &mut self.map {
                    m.update(lbn, pb);
                }
                self.dir.mark_valid(phys, lpn);
                Ok(end)
            }
            Some(pb) => {
                let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                let wp = self.luns[pb.lun.0 as usize].block_state(baddr).write_point;
                if off >= wp {
                    // in-order append (C3 allows gaps upward)
                    let phys = self.block_phys(pb, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|()| SsdError::DeviceFull { lun: pb.lun })?;
                    self.dir.mark_valid(phys, lpn);
                    Ok(end)
                } else {
                    // rewrite below the write point: open a replacement
                    // block (finalizing any replacement held by another
                    // logical block first — the single-context limit that
                    // makes *random* rewrites a merge storm)
                    if self.repl.is_some() {
                        self.finalize_replacement(t0)?;
                    }
                    let lun = pb.lun;
                    let newb = self.alloc_block_on(lun, t0)?;
                    let newpb = PhysBlockRef { lun, block: newb };
                    let copied = self.repl_copy_range(t0, pb, newpb, 0, off)?;
                    self.repl = Some(ReplCtx {
                        lbn,
                        old: pb,
                        new: newpb,
                        copies: copied,
                    });
                    self.dir.invalidate_checked(self.block_phys(pb, off), lpn);
                    let phys = self.block_phys(newpb, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|()| SsdError::DeviceFull { lun })?;
                    self.dir.mark_valid(phys, lpn);
                    Ok(end)
                }
            }
        }
    }

    // ---------------------------- hybrid -----------------------------

    fn write_hybrid(&mut self, t0: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        let ppb = self.ppb() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        let data = match &self.map {
            MappingState::Hybrid(h) => h.data.lookup(lbn),
            _ => unreachable!(),
        };
        let Some(pb) = data else {
            // fresh logical block: behave like block mapping
            let lun = self.place_lun_for_block(lbn, t0);
            let block = self.alloc_block_on(lun, t0)?;
            let pbref = PhysBlockRef { lun, block };
            let phys = self.block_phys(pbref, off);
            let end = self
                .op_program(t0, phys, lpn, true, OpCause::Host)
                .map_err(|()| SsdError::DeviceFull { lun })?;
            if let MappingState::Hybrid(h) = &mut self.map {
                h.data.update(lbn, pbref);
            }
            self.dir.mark_valid(phys, lpn);
            return Ok(end);
        };
        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
        let wp = self.luns[pb.lun.0 as usize].block_state(baddr).write_point;
        let has_log = matches!(&self.map, MappingState::Hybrid(h) if h.log_of(lbn).is_some());
        if off >= wp && !has_log {
            // clean append into the data block
            let phys = self.block_phys(pb, off);
            let end = self
                .op_program(t0, phys, lpn, true, OpCause::Host)
                .map_err(|()| SsdError::DeviceFull { lun: pb.lun })?;
            self.dir.mark_valid(phys, lpn);
            return Ok(end);
        }
        // need the log block path
        let mut t = t0;
        // full log for this lbn? merge first
        let log_full = matches!(
            &self.map,
            MappingState::Hybrid(h) if h.log_of(lbn).map(|l| l.full(self.ppb())).unwrap_or(false)
        );
        if log_full {
            t = self.merge_hybrid(t, lbn)?;
            // after the merge the write may be an append; recurse once
            return self.write_hybrid_after_merge(t, lpn);
        }
        if !has_log {
            // need a free log slot
            let need_evict = matches!(
                &self.map,
                MappingState::Hybrid(h) if !h.has_free_log_slot()
            );
            if need_evict {
                let victim = match &self.map {
                    MappingState::Hybrid(h) => h.lru_log().expect("pool full implies non-empty"),
                    _ => unreachable!(),
                };
                t = self.merge_hybrid(t, victim)?;
            }
            let lun = pb.lun;
            let block = self.alloc_block_on(lun, t)?;
            if let MappingState::Hybrid(h) = &mut self.map {
                h.assign_log(lbn, PhysBlockRef { lun, block });
            }
        }
        // append into the log block
        let (log_pb, log_page, prev_version) = match &mut self.map {
            MappingState::Hybrid(h) => {
                let prev = h.log_of(lbn).and_then(|l| l.latest[off as usize]);
                let page = h.append_log(lbn, off);
                let phys = h.log_of(lbn).expect("just appended").phys;
                (phys, page, prev)
            }
            _ => unreachable!(),
        };
        // invalidate the version this write supersedes (checked: a trim
        // may already have killed it while log.latest still points there)
        if let Some(prev_page) = prev_version {
            let prev = self.block_phys(log_pb, prev_page);
            self.dir.invalidate_checked(prev, lpn);
        } else {
            // previous version may live in the data block
            let prev = self.block_phys(pb, off);
            self.dir.invalidate_checked(prev, lpn);
        }
        let phys = self.block_phys(log_pb, log_page);
        let end = self
            .op_program(t, phys, lpn, true, OpCause::Host)
            .map_err(|()| SsdError::DeviceFull { lun: log_pb.lun })?;
        self.dir.mark_valid(phys, lpn);
        Ok(end)
    }

    fn write_hybrid_after_merge(&mut self, t: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        // one level of recursion: after a merge the lbn has no log block
        // and the data block is freshly written, so this terminates
        self.write_hybrid(t, lpn)
    }

    /// Merge a hybrid log block with its data block.
    fn merge_hybrid(&mut self, t: SimTime, lbn: u64) -> Result<SimTime, SsdError> {
        let (log, data) = match &mut self.map {
            MappingState::Hybrid(h) => {
                let log = h.take_log(lbn).expect("merge without log block");
                (log, h.data.lookup(lbn))
            }
            _ => unreachable!(),
        };
        let ppb = self.ppb();
        if log.is_switchable(ppb) {
            // switch merge: the log block IS the new data block
            self.metrics.merges_switch += 1;
            let mut end = t;
            if let Some(old) = data {
                // old data block is entirely superseded
                let live = self.dir.live_pages(old.lun, old.block);
                for (a, _) in live {
                    self.dir.invalidate(PhysPage {
                        lun: old.lun,
                        addr: a,
                    });
                }
                end = self.op_erase(t, old.lun, old.block, OpCause::Merge);
            }
            if let MappingState::Hybrid(h) = &mut self.map {
                h.data.update(lbn, log.phys);
            }
            return Ok(end);
        }
        // full merge: newest version of each offset out of (log, data)
        self.metrics.merges_full += 1;
        let lun = log.phys.lun;
        let newb = self.alloc_block_on(lun, t)?;
        let newpb = PhysBlockRef { lun, block: newb };
        let copyback = self.cfg.gc.copyback;
        let data_live: std::collections::HashMap<u32, Lpn> = match data {
            Some(pb) => self
                .dir
                .live_pages(pb.lun, pb.block)
                .into_iter()
                .map(|(a, l)| (a.page, l))
                .collect(),
            None => Default::default(),
        };
        let mut cursor = t;
        for o in 0..ppb {
            let (src, lpn_o) = if let Some(logpage) = log.latest[o as usize] {
                let src = self.block_phys(log.phys, logpage);
                let info = self.dir.block_info(lun, log.phys.block);
                let Some(l) = info.backptrs[logpage as usize] else {
                    continue;
                };
                (src, l)
            } else if let Some(pb) = data {
                match data_live.get(&o) {
                    Some(&l) => (self.block_phys(pb, o), l),
                    None => continue,
                }
            } else {
                continue;
            };
            let read = self.op_read(cursor, src, !copyback, OpCause::Merge);
            let dst = self.block_phys(newpb, o);
            let end = self
                .op_program(read.end, dst, lpn_o, !copyback, OpCause::Merge)
                .map_err(|()| SsdError::DeviceFull { lun })?;
            self.dir.invalidate(src);
            self.dir.mark_valid(dst, lpn_o);
            cursor = end;
        }
        // stale log pages (superseded versions) die with the log block
        let stale = self.dir.live_pages(lun, log.phys.block);
        for (a, _) in stale {
            self.dir.invalidate(PhysPage { lun, addr: a });
        }
        let mut end = self.op_erase(cursor, lun, log.phys.block, OpCause::Merge);
        if let Some(pb) = data {
            // anything left in the data block is stale now
            let stale = self.dir.live_pages(pb.lun, pb.block);
            for (a, _) in stale {
                self.dir.invalidate(PhysPage {
                    lun: pb.lun,
                    addr: a,
                });
            }
            end = self.op_erase(end, pb.lun, pb.block, OpCause::Merge);
        }
        if let MappingState::Hybrid(h) = &mut self.map {
            h.data.update(lbn, newpb);
        }
        Ok(end)
    }

    // ------------------------- power-loss rebuild ---------------------

    /// Simulate a power loss followed by the page-mapped FTL's boot
    /// sequence: all controller RAM (mapping table, block directory) is
    /// lost and rebuilt by scanning every page's out-of-band metadata,
    /// newest sequence number winning. Returns when the device is ready.
    ///
    /// This is the page-FTL startup cost that motivated DFTL (the paper's
    /// ref [10]): scan time grows linearly with raw capacity. The write
    /// buffer is battery-backed, so the rebuild requires all in-flight
    /// flushes to have drained (`at >= drain_time()`).
    ///
    /// Only supported for [`FtlKind::PageMap`]; other FTLs return an error.
    ///
    /// # Panics
    /// Panics if `at` precedes the drain time (buffer contents would be
    /// ambiguous).
    pub fn power_loss_rebuild(&mut self, at: SimTime) -> Result<RebuildReport, SsdError> {
        if !matches!(self.map, MappingState::Page(_)) {
            return Err(SsdError::DeviceFull { lun: LunId(0) }); // unsupported
        }
        assert!(
            at >= self.drain_time(),
            "rebuild before the battery-backed buffer drained"
        );
        let geom = self.cfg.flash.geometry.clone();
        let nluns = self.total_luns();
        // volatile state vanishes
        let mut fresh = BlockDirectory::new(nluns, geom.clone());
        let mut map = PageMap::new(self.capacity.exported_pages);
        self.buffer = WriteBuffer::new(self.cfg.buffer.capacity_pages as usize);
        self.repl = None;
        // scan every page of every block (OOB reads; charged as
        // translation traffic on each LUN — LUNs scan in parallel)
        let mut best: std::collections::HashMap<u64, (u64, PhysPage)> =
            std::collections::HashMap::new();
        let mut scanned = 0u64;
        for lun_i in 0..nluns {
            let lun = LunId(lun_i);
            for block in geom.blocks() {
                let bidx = geom.block_index(block);
                // mirror chip-held wear state back into the directory
                let chip_state = self.luns[lun_i as usize].block_state(block).clone();
                if chip_state.bad {
                    fresh.retire(lun, bidx);
                    continue;
                }
                fresh.set_erase_count(lun, bidx, chip_state.erase_count);
                if chip_state.write_point == 0 {
                    continue; // fully erased: stays on the free list
                }
                // programmed block: scan its pages, mark it occupied
                fresh.claim_full(lun, bidx);
                for addr in geom.pages_of(block) {
                    if addr.page >= chip_state.write_point {
                        break;
                    }
                    let phys = PhysPage { lun, addr };
                    let read = self.op_read(at, phys, false, OpCause::Translation);
                    scanned += 1;
                    if let PagePayload::Oob { lpn, seq } = read.payload {
                        match best.entry(lpn) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                if e.get().0 < seq {
                                    e.insert((seq, phys));
                                }
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert((seq, phys));
                            }
                        }
                    }
                }
            }
        }
        for (lpn, (_, phys)) in best {
            if lpn < self.capacity.exported_pages {
                map.update(Lpn(lpn), phys);
                fresh.mark_valid(phys, Lpn(lpn));
            }
        }
        self.dir = fresh;
        self.map = MappingState::Page(map);
        let ready = self.drain_time().max(at);
        Ok(RebuildReport {
            ready,
            duration: ready.since(at),
            pages_scanned: scanned,
        })
    }

    /// Snapshot of the logical→physical mapping (diagnostics; page-mapped
    /// FTLs only, `None` entries for unmapped pages).
    pub fn debug_mapping(&self) -> Option<Vec<Option<PhysPage>>> {
        match &self.map {
            MappingState::Page(m) => Some(
                (0..self.capacity.exported_pages)
                    .map(|l| m.lookup(Lpn(l)))
                    .collect(),
            ),
            _ => None,
        }
    }

    // ----------------------------- trim ------------------------------

    /// Trim (unmap) one logical page — the command the paper highlights as
    /// the first crack in the block interface.
    pub fn trim(&mut self, now: SimTime, lpn: Lpn) -> Result<Completion, SsdError> {
        self.check_lpn(lpn)?;
        self.note_submit(now);
        self.metrics.host_trims += 1;
        let done = now + self.cfg.controller_overhead;
        if self.buffer.enabled() {
            self.buffer.discard(lpn.0);
        }
        match &mut self.map {
            MappingState::Page(m) => {
                if let Some(old) = m.unmap(lpn) {
                    self.dir.invalidate(old);
                }
            }
            MappingState::Dftl(m) => {
                let mut ios = Vec::new();
                let old = m.unmap(lpn, &mut ios);
                self.exec_trans(done, &ios);
                if let Some(old) = old {
                    self.dir.invalidate(old);
                }
            }
            MappingState::Block(m) => {
                let ppb = self.cfg.flash.geometry.pages_per_block as u64;
                let lbn = lpn.0 / ppb;
                let off = (lpn.0 % ppb) as u32;
                let mut candidates: Vec<PhysBlockRef> = Vec::with_capacity(2);
                if let Some(ctx) = &self.repl {
                    if ctx.lbn == lbn {
                        candidates.push(ctx.new);
                    }
                }
                if let Some(pb) = m.lookup(lbn) {
                    candidates.push(pb);
                }
                for pb in candidates {
                    let phys = self.block_phys(pb, off);
                    if self.dir.invalidate_checked(phys, lpn) {
                        break;
                    }
                }
            }
            MappingState::Hybrid(h) => {
                let ppb = h.pages_per_block() as u64;
                let lbn = lpn.0 / ppb;
                let off = (lpn.0 % ppb) as u32;
                let mut invalidations: Vec<PhysPage> = Vec::new();
                if let Some(log) = h.log_of(lbn) {
                    if let Some(page) = log.latest[off as usize] {
                        let baddr = self.cfg.flash.geometry.block_from_index(log.phys.block);
                        invalidations.push(PhysPage {
                            lun: log.phys.lun,
                            addr: self
                                .cfg
                                .flash
                                .geometry
                                .page_addr(baddr.plane, baddr.block, page),
                        });
                    }
                }
                if let Some(pb) = h.data.lookup(lbn) {
                    let info = self.dir.block_info(pb.lun, pb.block);
                    if info.backptrs[off as usize] == Some(lpn) {
                        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                        invalidations.push(PhysPage {
                            lun: pb.lun,
                            addr: self
                                .cfg
                                .flash
                                .geometry
                                .page_addr(baddr.plane, baddr.block, off),
                        });
                    }
                }
                for p in invalidations {
                    self.dir.invalidate_checked(p, lpn);
                }
            }
        }
        let latency = done.since(now);
        Ok(Completion {
            done,
            latency,
            served: Served::Controller,
        })
    }
}
