//! DFTL: demand-paged page mapping (the paper's reference [10]).
//!
//! Gupta, Kim & Urgaonkar (ASPLOS 2009): keep the full page map on flash
//! in *translation pages*, and cache only hot entries in controller RAM
//! (the Cached Mapping Table, CMT). A mapping lookup that misses the CMT
//! must read a translation page from flash; evicting a *dirty* CMT entry
//! must write its translation page back (read–modify–write).
//!
//! The paper's §2.3.2 cites DFTL as one of the two reasons modern devices
//! can afford page mapping ("the controller supports some form of
//! efficient page mapping cache, e.g. DFTL").
//!
//! This implementation keeps the ground-truth map in RAM (it *is* the
//! content of the translation pages) and charges the flash traffic the
//! cache behaviour implies via [`TransIo`] records the device executes.

use std::collections::BTreeMap;

use crate::addr::{Lpn, LunId, PhysPage};

use super::page::PageMap;

/// One flash operation the mapping layer requires (translation traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransIo {
    /// The LUN holding the translation page.
    pub lun: LunId,
    /// Operation kind.
    pub kind: TransIoKind,
}

/// Translation traffic kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransIoKind {
    /// Read a translation page (CMT miss).
    Read,
    /// Write a translation page back (dirty CMT eviction; charged as a
    /// read–modify–write by the device).
    Write,
}

#[derive(Debug, Clone, Copy)]
struct CmtEntry {
    dirty: bool,
    stamp: u64,
}

/// The demand-paged mapping table.
pub struct DftlMap {
    truth: PageMap,
    /// Cached entries: lpn → (dirty, LRU stamp). BTreeMap keeps any
    /// future iteration deterministic; lookups stay O(log n).
    cmt: BTreeMap<u64, CmtEntry>,
    /// LRU order: stamp → lpn.
    lru: BTreeMap<u64, u64>,
    capacity: usize,
    next_stamp: u64,
    /// Mapping entries per translation page (page_size / 8).
    entries_per_tpage: u64,
    /// LUN count for placing translation pages.
    total_luns: u32,
    hits: u64,
    misses: u64,
    evictions_dirty: u64,
}

impl std::fmt::Debug for DftlMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DftlMap")
            .field("capacity", &self.capacity)
            .field("cached", &self.cmt.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl DftlMap {
    /// Create a DFTL map over `exported_pages` with a CMT of
    /// `cached_entries` entries. `page_size` sets translation-page fanout;
    /// `total_luns` spreads translation pages across LUNs.
    pub fn new(
        exported_pages: u64,
        cached_entries: usize,
        page_size: u32,
        total_luns: u32,
    ) -> Self {
        assert!(cached_entries > 0, "CMT needs at least one entry");
        DftlMap {
            truth: PageMap::new(exported_pages),
            cmt: BTreeMap::new(),
            lru: BTreeMap::new(),
            capacity: cached_entries,
            next_stamp: 0,
            entries_per_tpage: (page_size / 8).max(1) as u64,
            total_luns,
            hits: 0,
            misses: 0,
            evictions_dirty: 0,
        }
    }

    /// The LUN where `lpn`'s translation page lives (deterministic spread).
    fn tpage_lun(&self, lpn: Lpn) -> LunId {
        let tpn = lpn.0 / self.entries_per_tpage;
        LunId((tpn % self.total_luns as u64) as u32)
    }

    fn touch(&mut self, lpn: u64) {
        if let Some(e) = self.cmt.get_mut(&lpn) {
            self.lru.remove(&e.stamp);
            self.next_stamp += 1;
            e.stamp = self.next_stamp;
            self.lru.insert(e.stamp, lpn);
        }
    }

    /// Make room and insert a CMT entry; returns translation write traffic
    /// if a dirty entry had to be evicted.
    fn insert(&mut self, lpn: u64, dirty: bool, ios: &mut Vec<TransIo>) {
        self.next_stamp += 1;
        let s = self.next_stamp;
        if let Some(e) = self.cmt.get_mut(&lpn) {
            // already resident: refresh recency in place (cmt and lru are
            // disjoint fields, so no second lookup is needed)
            e.dirty |= dirty;
            self.lru.remove(&e.stamp);
            e.stamp = s;
            self.lru.insert(s, lpn);
            return;
        }
        if self.cmt.len() >= self.capacity {
            // evict LRU; the stamp index mirrors the CMT 1:1
            let lru_head = self.lru.iter().next().map(|(&st, &lp)| (st, lp));
            assert!(
                lru_head.is_some(),
                "LRU index empty while CMT holds {} entries (stamp/CMT desync)",
                self.cmt.len()
            );
            if let Some((stamp, victim)) = lru_head {
                self.lru.remove(&stamp);
                let entry = self.cmt.remove(&victim);
                assert!(
                    entry.is_some(),
                    "LRU victim lpn {victim} missing from CMT (stamp/CMT desync)"
                );
                if let Some(entry) = entry {
                    if entry.dirty {
                        self.evictions_dirty += 1;
                        ios.push(TransIo {
                            lun: self.tpage_lun(Lpn(victim)),
                            kind: TransIoKind::Write,
                        });
                    }
                }
            }
        }
        self.cmt.insert(lpn, CmtEntry { dirty, stamp: s });
        self.lru.insert(s, lpn);
    }

    /// Look up `lpn`, recording any translation flash traffic in `ios`.
    pub fn lookup(&mut self, lpn: Lpn, ios: &mut Vec<TransIo>) -> Option<PhysPage> {
        if self.cmt.contains_key(&lpn.0) {
            self.hits += 1;
            self.touch(lpn.0);
        } else {
            self.misses += 1;
            ios.push(TransIo {
                lun: self.tpage_lun(lpn),
                kind: TransIoKind::Read,
            });
            self.insert(lpn.0, false, ios);
        }
        self.truth.lookup(lpn)
    }

    /// Update `lpn → phys`, recording translation traffic; returns the old
    /// physical page for invalidation.
    pub fn update(&mut self, lpn: Lpn, phys: PhysPage, ios: &mut Vec<TransIo>) -> Option<PhysPage> {
        if self.cmt.contains_key(&lpn.0) {
            self.hits += 1;
            self.touch(lpn.0);
            if let Some(e) = self.cmt.get_mut(&lpn.0) {
                e.dirty = true;
            }
        } else {
            // DFTL updates also need the entry resident (read–modify)
            self.misses += 1;
            ios.push(TransIo {
                lun: self.tpage_lun(lpn),
                kind: TransIoKind::Read,
            });
            self.insert(lpn.0, true, ios);
        }
        self.truth.update(lpn, phys)
    }

    /// Unmap `lpn` (trim) — also needs the entry resident.
    pub fn unmap(&mut self, lpn: Lpn, ios: &mut Vec<TransIo>) -> Option<PhysPage> {
        if self.cmt.contains_key(&lpn.0) {
            self.hits += 1;
            self.touch(lpn.0);
            if let Some(e) = self.cmt.get_mut(&lpn.0) {
                e.dirty = true;
            }
        } else {
            self.misses += 1;
            ios.push(TransIo {
                lun: self.tpage_lun(lpn),
                kind: TransIoKind::Read,
            });
            self.insert(lpn.0, true, ios);
        }
        self.truth.unmap(lpn)
    }

    /// GC-internal relocation: update the truth without touching the CMT
    /// (real DFTL updates translation pages in batch during GC; we charge
    /// one translation write per relocated page at the device layer).
    pub fn relocate(&mut self, lpn: Lpn, phys: PhysPage) -> Option<PhysPage> {
        // keep a cached entry coherent if present
        if let Some(e) = self.cmt.get_mut(&lpn.0) {
            e.dirty = true;
        }
        self.truth.update(lpn, phys)
    }

    /// `(hits, misses, dirty evictions)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions_dirty)
    }

    /// Hit ratio so far (0 when never used).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use requiem_flash::PageAddr;

    fn pp(block: u32, page: u32) -> PhysPage {
        PhysPage {
            lun: LunId(0),
            addr: PageAddr {
                plane: 0,
                block,
                page,
            },
        }
    }

    fn map(cap: usize) -> DftlMap {
        DftlMap::new(1024, cap, 4096, 4)
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut m = map(8);
        let mut ios = Vec::new();
        assert_eq!(m.lookup(Lpn(5), &mut ios), None);
        assert_eq!(ios.len(), 1);
        assert_eq!(ios[0].kind, TransIoKind::Read);
        ios.clear();
        m.lookup(Lpn(5), &mut ios);
        assert!(ios.is_empty(), "second lookup should hit the CMT");
        assert_eq!(m.cache_stats().0, 1);
    }

    #[test]
    fn update_marks_dirty_and_eviction_writes_back() {
        let mut m = map(2);
        let mut ios = Vec::new();
        m.update(Lpn(1), pp(0, 0), &mut ios); // miss (read) + dirty
        m.update(Lpn(2), pp(0, 1), &mut ios); // miss (read) + dirty
        ios.clear();
        // third entry evicts LRU (lpn 1, dirty) → translation write
        m.update(Lpn(3), pp(0, 2), &mut ios);
        let writes: Vec<_> = ios
            .iter()
            .filter(|io| io.kind == TransIoKind::Write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(m.cache_stats().2, 1);
    }

    #[test]
    fn clean_eviction_costs_no_write() {
        let mut m = map(2);
        let mut ios = Vec::new();
        m.lookup(Lpn(1), &mut ios); // clean
        m.lookup(Lpn(2), &mut ios); // clean
        ios.clear();
        m.lookup(Lpn(3), &mut ios); // evicts clean lpn1 → read only
        assert!(ios.iter().all(|io| io.kind == TransIoKind::Read));
    }

    #[test]
    fn truth_survives_evictions() {
        let mut m = map(1);
        let mut ios = Vec::new();
        m.update(Lpn(1), pp(0, 0), &mut ios);
        m.update(Lpn(2), pp(0, 1), &mut ios); // evicts lpn1
        assert_eq!(m.lookup(Lpn(1), &mut ios), Some(pp(0, 0)));
    }

    #[test]
    fn lru_order_respects_recency() {
        let mut m = map(2);
        let mut ios = Vec::new();
        m.lookup(Lpn(1), &mut ios);
        m.lookup(Lpn(2), &mut ios);
        m.lookup(Lpn(1), &mut ios); // refresh lpn1
        ios.clear();
        m.lookup(Lpn(3), &mut ios); // should evict lpn2, keeping lpn1
        ios.clear();
        m.lookup(Lpn(1), &mut ios);
        assert!(ios.is_empty(), "lpn1 should still be cached");
    }

    #[test]
    fn hit_ratio_improves_with_locality() {
        let mut m = map(64);
        let mut ios = Vec::new();
        for _ in 0..10 {
            for lpn in 0..32 {
                m.lookup(Lpn(lpn), &mut ios);
            }
        }
        assert!(m.hit_ratio() > 0.85, "ratio={}", m.hit_ratio());
    }

    #[test]
    fn translation_pages_spread_across_luns() {
        let m = map(4);
        // entries_per_tpage = 512 → lpns 0 and 512 on different luns
        assert_ne!(m.tpage_lun(Lpn(0)), m.tpage_lun(Lpn(512)));
    }

    #[test]
    fn relocate_updates_truth_silently() {
        let mut m = map(2);
        let mut ios = Vec::new();
        m.update(Lpn(1), pp(0, 0), &mut ios);
        ios.clear();
        let old = m.relocate(Lpn(1), pp(1, 0));
        assert_eq!(old, Some(pp(0, 0)));
        assert!(ios.is_empty());
        assert_eq!(m.lookup(Lpn(1), &mut ios), Some(pp(1, 0)));
    }
}
