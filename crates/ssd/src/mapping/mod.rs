//! Logical-to-physical mapping structures ("Scheduling & Mapping" in the
//! paper's Figure 2).
//!
//! Four schemes, matching [`crate::config::FtlKind`]:
//!
//! * [`page::PageMap`] — one entry per logical page. Full placement
//!   freedom (any write can go anywhere), the property §2.3.2 credits for
//!   making random writes as fast as sequential ones. Costs RAM ∝ pages.
//! * [`block::BlockMap`] — one entry per logical *block*; a page's offset
//!   inside the physical block is fixed. Non-append writes force full
//!   block merges — the pre-2009 behaviour that made myth 2 true.
//! * [`block::HybridState`] — BAST-style log blocks on top of a block map.
//! * [`dftl::DftlMap`] — a page map whose entries live on flash
//!   (translation pages) with a bounded in-RAM cache (the paper's ref
//!   [10]); misses and dirty evictions cost flash operations.

pub mod block;
pub mod dftl;
pub mod page;
