//! Full page-level mapping table.

use crate::addr::{Lpn, PhysPage};

/// A dense logical-page → physical-page table.
///
/// The scheme of modern controllers: *"with page mapping, there are no
/// constraints on the placement of any write — regardless of whether they
/// are sequential or random"* (§2.3.2).
#[derive(Debug, Clone)]
pub struct PageMap {
    table: Vec<Option<PhysPage>>,
    mapped: u64,
}

impl PageMap {
    /// Create an empty map over `exported_pages` logical pages.
    pub fn new(exported_pages: u64) -> Self {
        PageMap {
            table: vec![None; exported_pages as usize],
            mapped: 0,
        }
    }

    /// Number of logical pages.
    pub fn len(&self) -> u64 {
        self.table.len() as u64
    }

    /// True if no page is mapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// Number of currently mapped pages.
    pub fn mapped(&self) -> u64 {
        self.mapped
    }

    /// Current physical location of `lpn`, if written.
    #[inline]
    pub fn lookup(&self, lpn: Lpn) -> Option<PhysPage> {
        self.table[lpn.0 as usize]
    }

    /// Map `lpn` to `phys`, returning the previous location (which the
    /// caller must invalidate — out-of-place update).
    #[inline]
    pub fn update(&mut self, lpn: Lpn, phys: PhysPage) -> Option<PhysPage> {
        let old = self.table[lpn.0 as usize].replace(phys);
        if old.is_none() {
            self.mapped += 1;
        }
        old
    }

    /// Unmap `lpn` (trim), returning the previous location.
    #[inline]
    pub fn unmap(&mut self, lpn: Lpn) -> Option<PhysPage> {
        let old = self.table[lpn.0 as usize].take();
        if old.is_some() {
            self.mapped -= 1;
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LunId;
    use requiem_flash::PageAddr;

    fn pp(lun: u32, block: u32, page: u32) -> PhysPage {
        PhysPage {
            lun: LunId(lun),
            addr: PageAddr {
                plane: 0,
                block,
                page,
            },
        }
    }

    #[test]
    fn starts_unmapped() {
        let m = PageMap::new(10);
        assert_eq!(m.lookup(Lpn(3)), None);
        assert!(m.is_empty());
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn update_returns_old_for_invalidation() {
        let mut m = PageMap::new(10);
        assert_eq!(m.update(Lpn(3), pp(0, 1, 2)), None);
        assert_eq!(m.mapped(), 1);
        let old = m.update(Lpn(3), pp(1, 5, 0));
        assert_eq!(old, Some(pp(0, 1, 2)));
        assert_eq!(m.mapped(), 1);
        assert_eq!(m.lookup(Lpn(3)), Some(pp(1, 5, 0)));
    }

    #[test]
    fn unmap_clears() {
        let mut m = PageMap::new(10);
        m.update(Lpn(3), pp(0, 1, 2));
        assert_eq!(m.unmap(Lpn(3)), Some(pp(0, 1, 2)));
        assert_eq!(m.lookup(Lpn(3)), None);
        assert_eq!(m.mapped(), 0);
        assert_eq!(m.unmap(Lpn(3)), None);
    }
}
