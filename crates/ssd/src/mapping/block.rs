//! Block-level mapping and the BAST-style hybrid log scheme.
//!
//! These are the FTLs of the devices *"on the market before 2009"* for
//! which myth 2 — random writes are catastrophic — was genuinely true:
//!
//! * **Block mapping** ([`BlockMap`]): one mapping entry per logical
//!   block; a logical page's offset inside the physical block is fixed.
//!   Appending in offset order is cheap, but any out-of-order write forces
//!   a *full merge*: copy every live page into a fresh block. A random
//!   write therefore costs ~`pages_per_block` programs + reads + an erase.
//! * **Hybrid / BAST** ([`HybridState`]): block mapping plus a small pool
//!   of per-logical-block *log blocks* absorbing out-of-order writes.
//!   Sequential streams get cheap *switch merges*; random writes across
//!   many logical blocks thrash the log pool and degenerate to full
//!   merges.
//!
//! State only — the device executes the flash operations these schemes
//! imply and charges their time.

use std::collections::BTreeMap;

use crate::addr::LunId;

/// A physical block reference at device scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysBlockRef {
    /// The LUN holding the block.
    pub lun: LunId,
    /// Dense block index within the LUN.
    pub block: u32,
}

/// Logical-block → physical-block table.
#[derive(Debug, Clone)]
pub struct BlockMap {
    table: Vec<Option<PhysBlockRef>>,
}

impl BlockMap {
    /// Create an empty map over `logical_blocks` entries.
    pub fn new(logical_blocks: u64) -> Self {
        BlockMap {
            table: vec![None; logical_blocks as usize],
        }
    }

    /// Number of logical blocks.
    pub fn len(&self) -> u64 {
        self.table.len() as u64
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.table.iter().all(|e| e.is_none())
    }

    /// Physical block for a logical block, if any.
    #[inline]
    pub fn lookup(&self, lbn: u64) -> Option<PhysBlockRef> {
        self.table[lbn as usize]
    }

    /// Map `lbn` to `phys`, returning the displaced block (caller erases).
    #[inline]
    pub fn update(&mut self, lbn: u64, phys: PhysBlockRef) -> Option<PhysBlockRef> {
        self.table[lbn as usize].replace(phys)
    }

    /// Unmap a logical block.
    #[inline]
    pub fn unmap(&mut self, lbn: u64) -> Option<PhysBlockRef> {
        self.table[lbn as usize].take()
    }
}

/// One log block absorbing out-of-order writes for a single logical block.
#[derive(Debug, Clone)]
pub struct LogBlock {
    /// Physical location of the log block.
    pub phys: PhysBlockRef,
    /// Next free page (C3 write point) in the log block.
    pub next_page: u32,
    /// For each logical offset, the log-block page holding its latest
    /// version (None = latest version is in the data block / unwritten).
    pub latest: Vec<Option<u32>>,
    /// LRU stamp.
    stamp: u64,
}

impl LogBlock {
    /// True when every offset was written exactly in order — the log block
    /// is a perfect replacement for the data block (switch merge).
    pub fn is_switchable(&self, pages_per_block: u32) -> bool {
        self.next_page == pages_per_block
            && self
                .latest
                .iter()
                .enumerate()
                .all(|(off, v)| *v == Some(off as u32))
    }

    /// True when the log block has no free page left.
    pub fn full(&self, pages_per_block: u32) -> bool {
        self.next_page >= pages_per_block
    }
}

/// BAST hybrid-FTL state: block map + bounded per-LBN log blocks.
#[derive(Debug)]
pub struct HybridState {
    /// The underlying block map.
    pub data: BlockMap,
    /// BTreeMap: [`lru_log`](Self::lru_log) scans it for the min-stamp
    /// victim, so iteration order must be deterministic.
    logs: BTreeMap<u64, LogBlock>,
    max_logs: usize,
    next_stamp: u64,
    pages_per_block: u32,
}

impl HybridState {
    /// Create hybrid state with at most `max_logs` concurrent log blocks.
    pub fn new(logical_blocks: u64, max_logs: usize, pages_per_block: u32) -> Self {
        assert!(max_logs > 0, "hybrid FTL needs at least one log block");
        HybridState {
            data: BlockMap::new(logical_blocks),
            logs: BTreeMap::new(),
            max_logs,
            next_stamp: 0,
            pages_per_block,
        }
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// The log block currently assigned to `lbn`, if any.
    pub fn log_of(&self, lbn: u64) -> Option<&LogBlock> {
        self.logs.get(&lbn)
    }

    /// Number of active log blocks.
    pub fn active_logs(&self) -> usize {
        self.logs.len()
    }

    /// True if a new log block can be assigned without eviction.
    pub fn has_free_log_slot(&self) -> bool {
        self.logs.len() < self.max_logs
    }

    /// The least-recently-used log block's LBN (the merge victim).
    pub fn lru_log(&self) -> Option<u64> {
        self.logs
            .iter()
            .min_by_key(|(_, l)| l.stamp)
            .map(|(&lbn, _)| lbn)
    }

    /// Assign a fresh physical block as `lbn`'s log block.
    ///
    /// # Panics
    /// Panics if `lbn` already has a log block or the pool is full.
    pub fn assign_log(&mut self, lbn: u64, phys: PhysBlockRef) {
        assert!(self.has_free_log_slot(), "log pool full; merge first");
        self.next_stamp += 1;
        let prev = self.logs.insert(
            lbn,
            LogBlock {
                phys,
                next_page: 0,
                latest: vec![None; self.pages_per_block as usize],
                stamp: self.next_stamp,
            },
        );
        assert!(prev.is_none(), "lbn {lbn} already had a log block");
    }

    /// Append one write for `offset` of `lbn` into its log block; returns
    /// the log page index used.
    ///
    /// # Panics
    /// Panics if `lbn` has no log block or it is full.
    pub fn append_log(&mut self, lbn: u64, offset: u32) -> u32 {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let Some(log) = self.logs.get_mut(&lbn) else {
            unreachable!("append_log contract: no log block for lbn")
        };
        assert!(log.next_page < self.pages_per_block, "log block full");
        let page = log.next_page;
        log.next_page += 1;
        log.latest[offset as usize] = Some(page);
        log.stamp = stamp;
        page
    }

    /// Remove and return `lbn`'s log block (merge completion).
    pub fn take_log(&mut self, lbn: u64) -> Option<LogBlock> {
        self.logs.remove(&lbn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pbr(lun: u32, block: u32) -> PhysBlockRef {
        PhysBlockRef {
            lun: LunId(lun),
            block,
        }
    }

    #[test]
    fn block_map_roundtrip() {
        let mut m = BlockMap::new(8);
        assert!(m.is_empty());
        assert_eq!(m.update(3, pbr(0, 5)), None);
        assert_eq!(m.lookup(3), Some(pbr(0, 5)));
        assert_eq!(m.update(3, pbr(1, 2)), Some(pbr(0, 5)));
        assert_eq!(m.unmap(3), Some(pbr(1, 2)));
        assert!(m.is_empty());
    }

    #[test]
    fn hybrid_log_assignment_and_append() {
        let mut h = HybridState::new(8, 2, 4);
        h.assign_log(1, pbr(0, 9));
        assert_eq!(h.active_logs(), 1);
        assert_eq!(h.append_log(1, 2), 0); // offset 2 lands on log page 0
        assert_eq!(h.append_log(1, 2), 1); // rewrite: log page 1
        let log = h.log_of(1).unwrap();
        assert_eq!(log.latest[2], Some(1));
        assert_eq!(log.next_page, 2);
    }

    #[test]
    fn switch_merge_detected_only_for_perfect_order() {
        let mut h = HybridState::new(8, 2, 4);
        h.assign_log(1, pbr(0, 9));
        for off in 0..4 {
            h.append_log(1, off);
        }
        assert!(h.log_of(1).unwrap().is_switchable(4));

        h.assign_log(2, pbr(0, 10));
        h.append_log(2, 1);
        h.append_log(2, 0);
        h.append_log(2, 2);
        h.append_log(2, 3);
        assert!(!h.log_of(2).unwrap().is_switchable(4));
        assert!(h.log_of(2).unwrap().full(4));
    }

    #[test]
    fn lru_log_is_coldest() {
        let mut h = HybridState::new(8, 3, 4);
        h.assign_log(1, pbr(0, 9));
        h.assign_log(2, pbr(0, 10));
        h.append_log(1, 0); // refresh lbn 1
        assert_eq!(h.lru_log(), Some(2));
    }

    #[test]
    fn pool_capacity_enforced() {
        let mut h = HybridState::new(8, 1, 4);
        h.assign_log(1, pbr(0, 9));
        assert!(!h.has_free_log_slot());
        let lbn = h.lru_log().unwrap();
        let log = h.take_log(lbn).unwrap();
        assert_eq!(log.phys, pbr(0, 9));
        assert!(h.has_free_log_slot());
    }

    #[test]
    #[should_panic(expected = "log pool full")]
    fn assigning_over_capacity_panics() {
        let mut h = HybridState::new(8, 1, 4);
        h.assign_log(1, pbr(0, 9));
        h.assign_log(2, pbr(0, 10));
    }
}
