//! The hybrid log-block FTL (BAST-style): the circa-2009 "Mapping" box.
//!
//! Block-mapped data blocks plus a small pool of page-mapped *log
//! blocks* absorbing out-of-place rewrites. A rewrite burst fills a log
//! block; merging it back (switch merge when the log is a perfect
//! in-order replacement, full merge otherwise) is the dominant overhead
//! of this design — the paper's §2.3.1 merge-storm behaviour. Merges run
//! as background work tagged [`Occupant::Merge`](requiem_sim::Occupant);
//! when a host write must *wait* for its own merge to finish before it
//! can append, that wait is attributed to the command as a
//! `Controller/MergeStall` span on the probe bus.

use requiem_sim::time::SimTime;
use requiem_sim::{Cause, Layer};

use crate::addr::{Lpn, PhysPage};
use crate::device::{MappingState, Ssd, SsdError};
use crate::mapping::block::PhysBlockRef;
use crate::metrics::OpCause;

impl Ssd {
    pub(crate) fn write_hybrid(&mut self, t0: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        let ppb = self.ppb() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        let data = match &self.map {
            MappingState::Hybrid(h) => h.data.lookup(lbn),
            _ => unreachable!(),
        };
        let Some(pb) = data else {
            // fresh logical block: behave like block mapping
            let lun = self.place_lun_for_block(lbn, t0);
            let block = self.alloc_block_on(lun, t0)?;
            let pbref = PhysBlockRef { lun, block };
            let phys = self.block_phys(pbref, off);
            let end = self
                .op_program(t0, phys, lpn, true, OpCause::Host)
                .map_err(|e| e.full_on(lun))?;
            if let MappingState::Hybrid(h) = &mut self.map {
                h.data.update(lbn, pbref);
            }
            self.dir.mark_valid(phys, lpn);
            return Ok(end);
        };
        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
        let wp = self.luns[pb.lun.0 as usize].block_state(baddr).write_point;
        let has_log = matches!(&self.map, MappingState::Hybrid(h) if h.log_of(lbn).is_some());
        if off >= wp && !has_log {
            // clean append into the data block
            let phys = self.block_phys(pb, off);
            let end = self
                .op_program(t0, phys, lpn, true, OpCause::Host)
                .map_err(|e| e.full_on(pb.lun))?;
            self.dir.mark_valid(phys, lpn);
            return Ok(end);
        }
        // need the log block path
        let mut t = t0;
        // full log for this lbn? merge first
        let log_full = matches!(
            &self.map,
            MappingState::Hybrid(h) if h.log_of(lbn).map(|l| l.full(self.ppb())).unwrap_or(false)
        );
        if log_full {
            t = self.merge_hybrid(t, lbn)?;
            self.note_merge_stall(t0, t);
            // after the merge the write may be an append; recurse once
            return self.write_hybrid_after_merge(t, lpn);
        }
        if !has_log {
            // need a free log slot
            let need_evict = matches!(
                &self.map,
                MappingState::Hybrid(h) if !h.has_free_log_slot()
            );
            if need_evict {
                let victim = match &self.map {
                    MappingState::Hybrid(h) => match h.lru_log() {
                        Some(v) => v,
                        None => unreachable!("pool full implies non-empty"),
                    },
                    _ => unreachable!(),
                };
                t = self.merge_hybrid(t, victim)?;
                self.note_merge_stall(t0, t);
            }
            let lun = pb.lun;
            let block = self.alloc_block_on(lun, t)?;
            if let MappingState::Hybrid(h) = &mut self.map {
                h.assign_log(lbn, PhysBlockRef { lun, block });
            }
        }
        // append into the log block
        let (log_pb, log_page, prev_version) = match &mut self.map {
            MappingState::Hybrid(h) => {
                let prev = h.log_of(lbn).and_then(|l| l.latest[off as usize]);
                let page = h.append_log(lbn, off);
                let phys = match h.log_of(lbn) {
                    Some(l) => l.phys,
                    None => unreachable!("log_of after append_log: just appended"),
                };
                (phys, page, prev)
            }
            _ => unreachable!(),
        };
        // invalidate the version this write supersedes (checked: a trim
        // may already have killed it while log.latest still points there)
        if let Some(prev_page) = prev_version {
            let prev = self.block_phys(log_pb, prev_page);
            self.dir.invalidate_checked(prev, lpn);
        } else {
            // previous version may live in the data block
            let prev = self.block_phys(pb, off);
            self.dir.invalidate_checked(prev, lpn);
        }
        let phys = self.block_phys(log_pb, log_page);
        let end = self
            .op_program(t, phys, lpn, true, OpCause::Host)
            .map_err(|e| e.full_on(log_pb.lun))?;
        self.dir.mark_valid(phys, lpn);
        Ok(end)
    }

    /// Attribute the interval a host write spent waiting for its own merge
    /// to the command as a `MergeStall` span.
    fn note_merge_stall(&self, before: SimTime, after: SimTime) {
        if self.sched.probe.is_enabled() && after > before {
            self.sched
                .probe
                .span(Layer::Controller, Cause::MergeStall, "merge", before, after);
        }
    }

    pub(crate) fn write_hybrid_after_merge(
        &mut self,
        t: SimTime,
        lpn: Lpn,
    ) -> Result<SimTime, SsdError> {
        // one level of recursion: after a merge the lbn has no log block
        // and the data block is freshly written, so this terminates
        self.write_hybrid(t, lpn)
    }

    /// Merge a hybrid log block with its data block.
    pub(crate) fn merge_hybrid(&mut self, t: SimTime, lbn: u64) -> Result<SimTime, SsdError> {
        let _bg = self.sched.probe.background();
        let (log, data) = match &mut self.map {
            MappingState::Hybrid(h) => {
                let Some(log) = h.take_log(lbn) else {
                    unreachable!("merge_hybrid without a log block for lbn")
                };
                (log, h.data.lookup(lbn))
            }
            _ => unreachable!(),
        };
        let ppb = self.ppb();
        if log.is_switchable(ppb) {
            // switch merge: the log block IS the new data block
            self.metrics.merges_switch += 1;
            let mut end = t;
            if let Some(old) = data {
                // old data block is entirely superseded
                let live = self.dir.live_pages(old.lun, old.block);
                for (a, _) in live {
                    self.dir.invalidate(PhysPage {
                        lun: old.lun,
                        addr: a,
                    });
                }
                end = self.op_erase(t, old.lun, old.block, OpCause::Merge)?;
            }
            if let MappingState::Hybrid(h) = &mut self.map {
                h.data.update(lbn, log.phys);
            }
            return Ok(end);
        }
        // full merge: newest version of each offset out of (log, data)
        self.metrics.merges_full += 1;
        let lun = log.phys.lun;
        let newb = self.alloc_block_on(lun, t)?;
        let newpb = PhysBlockRef { lun, block: newb };
        let copyback = self.cfg.gc.copyback;
        // BTreeMap for determinism discipline (only point lookups today,
        // but nothing then depends on hash order if iteration is added)
        let data_live: std::collections::BTreeMap<u32, Lpn> = match data {
            Some(pb) => self
                .dir
                .live_pages(pb.lun, pb.block)
                .into_iter()
                .map(|(a, l)| (a.page, l))
                .collect(),
            None => Default::default(),
        };
        let mut cursor = t;
        for o in 0..ppb {
            let (src, lpn_o) = if let Some(logpage) = log.latest[o as usize] {
                let src = self.block_phys(log.phys, logpage);
                let info = self.dir.block_info(lun, log.phys.block);
                let Some(l) = info.backptrs[logpage as usize] else {
                    continue;
                };
                (src, l)
            } else if let Some(pb) = data {
                match data_live.get(&o) {
                    Some(&l) => (self.block_phys(pb, o), l),
                    None => continue,
                }
            } else {
                continue;
            };
            let read = self.op_read(cursor, src, !copyback, OpCause::Merge)?;
            let dst = self.block_phys(newpb, o);
            let end = self
                .op_program(read.end, dst, lpn_o, !copyback, OpCause::Merge)
                .map_err(|e| e.full_on(lun))?;
            self.dir.invalidate(src);
            self.dir.mark_valid(dst, lpn_o);
            cursor = end;
        }
        // stale log pages (superseded versions) die with the log block
        let stale = self.dir.live_pages(lun, log.phys.block);
        for (a, _) in stale {
            self.dir.invalidate(PhysPage { lun, addr: a });
        }
        let mut end = self.op_erase(cursor, lun, log.phys.block, OpCause::Merge)?;
        if let Some(pb) = data {
            // anything left in the data block is stale now
            let stale = self.dir.live_pages(pb.lun, pb.block);
            for (a, _) in stale {
                self.dir.invalidate(PhysPage {
                    lun: pb.lun,
                    addr: a,
                });
            }
            end = self.op_erase(end, pb.lun, pb.block, OpCause::Merge)?;
        }
        if let MappingState::Hybrid(h) = &mut self.map {
            h.data.update(lbn, newpb);
        }
        Ok(end)
    }

    /// Resolve the physical location of `lpn` under the hybrid FTL: the
    /// newest version may be in the log block; back-pointers arbitrate
    /// staleness and trims.
    pub(crate) fn resolve_read_hybrid(&self, lpn: Lpn) -> Option<PhysPage> {
        let MappingState::Hybrid(h) = &self.map else {
            unreachable!()
        };
        let ppb = h.pages_per_block() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        // newest version may be in the log block — but a trim can
        // have killed it while log.latest still points there, so
        // verify against the directory's back-pointer
        if let Some(log) = h.log_of(lbn) {
            if let Some(log_page) = log.latest[off as usize] {
                let info = self.dir.block_info(log.phys.lun, log.phys.block);
                if info.backptrs[log_page as usize] == Some(lpn) {
                    let baddr = self.cfg.flash.geometry.block_from_index(log.phys.block);
                    return Some(PhysPage {
                        lun: log.phys.lun,
                        addr: self
                            .cfg
                            .flash
                            .geometry
                            .page_addr(baddr.plane, baddr.block, log_page),
                    });
                }
                // fall through: trimmed in the log; the data-block
                // copy (if any) was also invalidated at append time
                return None;
            }
        }
        match h.data.lookup(lbn) {
            None => None,
            Some(pb) => {
                let info = self.dir.block_info(pb.lun, pb.block);
                match info.backptrs[off as usize] {
                    Some(l) if l == lpn => {
                        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                        Some(PhysPage {
                            lun: pb.lun,
                            addr: self
                                .cfg
                                .flash
                                .geometry
                                .page_addr(baddr.plane, baddr.block, off),
                        })
                    }
                    _ => None,
                }
            }
        }
    }

    /// Trim under the hybrid FTL: kill the log-block version (if any) and
    /// the data-block version.
    pub(crate) fn trim_hybrid(&mut self, lpn: Lpn) {
        let MappingState::Hybrid(h) = &self.map else {
            unreachable!()
        };
        let ppb = h.pages_per_block() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        let mut invalidations: Vec<PhysPage> = Vec::new();
        if let Some(log) = h.log_of(lbn) {
            if let Some(page) = log.latest[off as usize] {
                let baddr = self.cfg.flash.geometry.block_from_index(log.phys.block);
                invalidations.push(PhysPage {
                    lun: log.phys.lun,
                    addr: self
                        .cfg
                        .flash
                        .geometry
                        .page_addr(baddr.plane, baddr.block, page),
                });
            }
        }
        if let Some(pb) = h.data.lookup(lbn) {
            let info = self.dir.block_info(pb.lun, pb.block);
            if info.backptrs[off as usize] == Some(lpn) {
                let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                invalidations.push(PhysPage {
                    lun: pb.lun,
                    addr: self
                        .cfg
                        .flash
                        .geometry
                        .page_addr(baddr.plane, baddr.block, off),
                });
            }
        }
        for p in invalidations {
            self.dir.invalidate_checked(p, lpn);
        }
    }
}
