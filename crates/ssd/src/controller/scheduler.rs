//! Scheduling: channel/LUN resource ownership, flash op primitives, and
//! write placement (the "Scheduling" box of Figure 2).
//!
//! The [`Scheduler`] owns every serial resource timeline the controller
//! arbitrates — one [`Resource`] per LUN, per channel, plus the host
//! link — together with the optional Gantt trace and the observability
//! [`Probe`]. All flash operation mechanisms (`op_read` / `op_program` /
//! `op_erase` and DFTL translation traffic) live here as `impl Ssd`
//! blocks: they reserve intervals on the scheduler's timelines, tagging
//! each grant with its [`Occupant`] so that later waiters can *blame*
//! their queueing delay (GC stall vs. merge stall vs. plain queueing) on
//! the observability bus.

use requiem_flash::{FlashError, PagePayload};
use requiem_sim::gantt::Gantt;
use requiem_sim::resource::Grant;
use requiem_sim::time::{SimDuration, SimTime};
use requiem_sim::{Cause, Layer, Occupant, Probe, Resource};
use std::cell::RefCell;

use crate::addr::{Lpn, LunId, PhysPage};
use crate::block_dir::Stream;
use crate::config::Placement;
use crate::device::{FlashReadDone, ReadRecovery, Ssd, SsdError};
use crate::mapping::dftl::{TransIo, TransIoKind};
use crate::metrics::OpCause;

/// The resource occupant tag for a flash operation cause.
pub(crate) fn occupant_of(cause: OpCause) -> Occupant {
    match cause {
        OpCause::Host => Occupant::Host,
        OpCause::Gc => Occupant::Gc,
        OpCause::WearLevel => Occupant::Wear,
        OpCause::Merge => Occupant::Merge,
        OpCause::Translation => Occupant::Translation,
        OpCause::Recovery => Occupant::Recovery,
    }
}

/// Read-retry ladder: RBER derate per rung. Each rung re-senses the
/// page at a shifted read voltage; later rungs shift further and
/// recover more (lower effective RBER), at one tR + a command cycle
/// apiece.
const RETRY_DERATES: [f64; 3] = [0.6, 0.35, 0.2];

/// RBER derate of the soft-decision ECC escalation (multiple senses
/// feed a soft decoder).
const ECC_ESCALATION_DERATE: f64 = 0.5;

/// Correction-capability boost of the soft-decision decoder relative
/// to the hard decoder.
const ECC_ESCALATION_BOOST: f64 = 1.5;

/// LUN time charged by the ECC escalation, in units of tR (the soft
/// decode needs several senses of the same page).
const ECC_ESCALATION_SENSES: u32 = 4;

/// Owner of the controller's serial resource timelines (channels, LUNs,
/// host link), the Gantt trace, and the observability probe.
#[derive(Debug)]
pub struct Scheduler {
    /// One timeline per LUN (`chip{i}`).
    pub(crate) lun_res: Vec<Resource>,
    /// One timeline per channel (`chan{i}`).
    pub(crate) chan_res: Vec<Resource>,
    /// The host interface link.
    pub(crate) host_link: Resource,
    /// Optional chip/channel occupancy trace.
    pub(crate) trace: Option<Gantt>,
    /// Observability bus handle (disabled by default).
    pub(crate) probe: Probe,
    /// Reusable blame-decomposition buffer: every wait emission on the
    /// flash op hot path decomposes into it instead of allocating a
    /// fresh `Vec` per query (`RefCell` because emission happens behind
    /// `&self` while the device is mutably mid-operation).
    blame_scratch: RefCell<Vec<(Occupant, SimDuration)>>,
}

impl Scheduler {
    /// Create timelines for `nluns` LUNs and `channels` channels, all
    /// idle, with tracing and probing off.
    pub(crate) fn new(nluns: u32, channels: u32) -> Self {
        Scheduler {
            lun_res: (0..nluns)
                .map(|i| Resource::new(format!("chip{i}")))
                .collect(),
            chan_res: (0..channels)
                .map(|i| Resource::new(format!("chan{i}")))
                .collect(),
            host_link: Resource::new("host-link"),
            trace: None,
            probe: Probe::disabled(),
            blame_scratch: RefCell::new(Vec::new()),
        }
    }

    /// Attach an observability probe. An enabled probe turns on occupant
    /// tracking for every resource so queueing delays can be blamed on
    /// their cause; a disabled probe turns tracking back off.
    pub fn attach_probe(&mut self, probe: Probe) {
        let on = probe.is_enabled();
        self.probe = probe;
        for r in self.lun_res.iter_mut().chain(self.chan_res.iter_mut()) {
            r.track_occupants(on);
        }
        self.host_link.track_occupants(on);
    }

    /// The attached probe (disabled handle when none was attached).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The instant every queued operation has drained.
    pub fn drain_time(&self) -> SimTime {
        let mut t = self.host_link.next_free();
        for r in self.lun_res.iter().chain(self.chan_res.iter()) {
            t = t.max(r.next_free());
        }
        t
    }

    pub(crate) fn trace_span(&mut self, lane: String, start: SimTime, end: SimTime, glyph: char) {
        if let Some(g) = self.trace.as_mut() {
            g.record(lane, start, end, glyph, "");
        }
    }

    /// Emit wait-blame + transfer spans for a host-link grant requested
    /// at `requested`.
    pub(crate) fn emit_host_link_spans(&self, requested: SimTime, g: Grant) {
        let Some(mut batch) = self.probe.batch() else {
            return;
        };
        let mut blame = self.blame_scratch.borrow_mut();
        self.host_link.blame_into(requested, g.start, &mut blame);
        batch.wait_spans(
            Layer::HostLink,
            self.host_link.name(),
            requested,
            g.start,
            &blame,
        );
        batch.span(
            Layer::HostLink,
            Cause::Transfer,
            self.host_link.name(),
            g.start,
            g.end,
        );
    }

    /// Emit the span triplet of one command-cycled flash op — channel
    /// command cycles `[issue, cmd_done)`, LUN wait blame
    /// `[cmd_done, g.start)`, then the cell op `[g.start, g.end)` as
    /// `cell` — through a single probe borrow (the LUN-level record
    /// batch; three to five `RefCell` round-trips become one).
    fn emit_flash_op_spans(
        &self,
        chan: usize,
        lun: usize,
        issue: SimTime,
        cmd_done: SimTime,
        g: Grant,
        cell: Cause,
    ) {
        let Some(mut batch) = self.probe.batch() else {
            return;
        };
        let mut blame = self.blame_scratch.borrow_mut();
        self.lun_res[lun].blame_into(cmd_done, g.start, &mut blame);
        batch.span(
            Layer::Channel,
            Cause::Command,
            self.chan_res[chan].name(),
            issue,
            cmd_done,
        );
        batch.wait_spans(
            Layer::Flash,
            self.lun_res[lun].name(),
            cmd_done,
            g.start,
            &blame,
        );
        batch.span(Layer::Flash, cell, self.lun_res[lun].name(), g.start, g.end);
    }

    /// Emit LUN wait blame `[requested, g.start)` plus the cell op span
    /// `[g.start, g.end)` (no command cycles — programs pay theirs on
    /// the data bus) through a single probe borrow.
    fn emit_lun_op_spans(&self, lun: usize, requested: SimTime, g: Grant, cell: Cause) {
        let Some(mut batch) = self.probe.batch() else {
            return;
        };
        let mut blame = self.blame_scratch.borrow_mut();
        self.lun_res[lun].blame_into(requested, g.start, &mut blame);
        batch.wait_spans(
            Layer::Flash,
            self.lun_res[lun].name(),
            requested,
            g.start,
            &blame,
        );
        batch.span(Layer::Flash, cell, self.lun_res[lun].name(), g.start, g.end);
    }

    /// Emit channel wait blame `[requested, g.start)` plus the transfer
    /// span `[g.start, g.end)` through a single probe borrow.
    fn emit_chan_transfer_spans(&self, chan: usize, requested: SimTime, g: Grant) {
        let Some(mut batch) = self.probe.batch() else {
            return;
        };
        let mut blame = self.blame_scratch.borrow_mut();
        self.chan_res[chan].blame_into(requested, g.start, &mut blame);
        batch.wait_spans(
            Layer::Channel,
            self.chan_res[chan].name(),
            requested,
            g.start,
            &blame,
        );
        batch.span(
            Layer::Channel,
            Cause::Transfer,
            self.chan_res[chan].name(),
            g.start,
            g.end,
        );
    }
}

impl Ssd {
    // ------------------------------------------------------------------
    // flash op primitives (resource-timed)
    // ------------------------------------------------------------------

    /// Extra transfer time injected on `chan` for the grant about to be
    /// issued ([`FaultPlan`](requiem_sim::FaultPlan) channel hiccups).
    /// The empty-schedule fast path adds exactly zero, keeping
    /// zero-fault runs bit-identical.
    fn chan_hiccup_extra(&self, chan: usize) -> SimDuration {
        let sched = &self.chan_hiccups[chan];
        if sched.is_empty() {
            return SimDuration::ZERO;
        }
        let next = self.sched.chan_res[chan].grant_count();
        match sched.binary_search_by_key(&next, |&(i, _)| i) {
            Ok(k) => SimDuration::from_nanos(sched[k].1),
            Err(_) => SimDuration::ZERO,
        }
    }

    pub(crate) fn op_read(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        with_transfer: bool,
        cause: OpCause,
    ) -> Result<FlashReadDone, SsdError> {
        let li = phys.lun.0 as usize;
        let chan = self.shape().channel_of(phys.lun) as usize;
        // command/address cycles (~0.2µs) are charged as latency but not
        // as bus occupancy: modelling them as channel reservations would
        // serialize later commands behind earlier 100µs data transfers,
        // which real command queueing does not do
        let cmd_done = not_before + self.cfg.channel.command;
        let (dur, payload) = match self.luns[li].read(phys.addr) {
            Ok(o) => (o.duration, o.payload),
            Err(FlashError::UncorrectableRead { .. }) => {
                // the first sense failed ECC decode: enter the recovery
                // pipeline (it charges the failed sense itself)
                self.metrics.uncorrectable_reads += 1;
                return self.recover_read(not_before, phys, with_transfer, cause);
            }
            Err(e) => {
                return Err(SsdError::FlashProtocol {
                    op: "read",
                    lun: phys.lun,
                    detail: format!("at {:?}: {e}", phys.addr),
                })
            }
        };
        let occ = occupant_of(cause);
        let lg = self.sched.lun_res[li].reserve_tagged(cmd_done, dur, occ);
        let lun_wait = lg.start.since(cmd_done);
        self.metrics.flash_reads.bump(cause);
        self.sched
            .emit_flash_op_spans(chan, li, not_before, cmd_done, lg, Cause::CellRead);
        self.sched
            .trace_span(format!("chip{}", phys.lun.0), lg.start, lg.end, 'R');
        let (end, chan_wait) = if with_transfer {
            let xfer = self.cfg.channel.transfer(self.page_size()) + self.chan_hiccup_extra(chan);
            let xg = self.sched.chan_res[chan].reserve_tagged(lg.end, xfer, occ);
            self.sched.emit_chan_transfer_spans(chan, lg.end, xg);
            self.sched
                .trace_span(format!("chan{chan}"), xg.start, xg.end, 't');
            (xg.end, xg.start.since(lg.end))
        } else {
            (lg.end, SimDuration::ZERO)
        };
        Ok(FlashReadDone {
            end,
            lun_wait,
            chan_wait,
            payload,
            status: ReadRecovery::Clean,
        })
    }

    /// The read-recovery pipeline (the paper's Myth-1 "error management
    /// belongs to the controller", made mechanical). Entered after the
    /// initial sense of `phys` failed the hard ECC decode. Charges the
    /// failed sense, then escalates until something yields data:
    ///
    /// 1. **Read-retry ladder** — up to [`RETRY_DERATES`] re-senses at
    ///    shifted read voltages, one tR plus a command cycle per rung;
    /// 2. **ECC escalation** — one soft-decision decode over
    ///    [`ECC_ESCALATION_SENSES`] senses with a boosted correction
    ///    capability;
    /// 3. **Parity rebuild** — XOR of the stripe: one tR on every
    ///    *other* LUN in parallel, data funneling over their channels,
    ///    reconstructing the page without ever decoding it.
    ///
    /// Recovery occupancy is tagged [`Occupant::Recovery`], so host
    /// commands queued behind it see `RecoveryStall` blame spans on the
    /// probe bus; the command that triggered recovery gets contiguous
    /// `Recovery`-cause spans, preserving the span-tiling invariant.
    /// If the whole pipeline fails, the read still completes — at full
    /// cost — with [`ReadRecovery::Lost`].
    fn recover_read(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        with_transfer: bool,
        cause: OpCause,
    ) -> Result<FlashReadDone, SsdError> {
        let li = phys.lun.0 as usize;
        let chan = self.shape().channel_of(phys.lun) as usize;
        let occ = occupant_of(cause);
        let t_read = self.cfg.flash.timing.read;
        let cmd = self.cfg.channel.command;
        let probe_on = self.sched.probe.is_enabled();
        let lane = format!("chip{}", phys.lun.0);

        // the failed initial sense still occupied the LUN for a full tR,
        // under the original occupant
        let cmd_done = not_before + cmd;
        let lg = self.sched.lun_res[li].reserve_tagged(cmd_done, t_read, occ);
        let lun_wait = lg.start.since(cmd_done);
        self.metrics.flash_reads.bump(cause);
        self.sched
            .emit_flash_op_spans(chan, li, not_before, cmd_done, lg, Cause::CellRead);
        self.sched.trace_span(lane.clone(), lg.start, lg.end, 'R');

        let mut cursor = lg.end;
        let mut steps = 0u32;
        let mut rebuilt = false;
        let mut payload: Option<PagePayload> = None;

        // stage 1: the read-retry ladder
        for derate in RETRY_DERATES {
            steps += 1;
            self.metrics.recovery.retry_attempts += 1;
            self.metrics.flash_reads.bump(OpCause::Recovery);
            let rung_cmd_done = cursor + cmd;
            let g =
                self.sched.lun_res[li].reserve_tagged(rung_cmd_done, t_read, Occupant::Recovery);
            self.sched
                .emit_flash_op_spans(chan, li, cursor, rung_cmd_done, g, Cause::Recovery);
            self.sched.trace_span(lane.clone(), g.start, g.end, 'r');
            cursor = g.end;
            match self.luns[li].recovery_read(phys.addr, derate, 1.0) {
                Ok(o) => {
                    payload = Some(o.payload);
                    self.metrics.recovery.retry_recovered += 1;
                    break;
                }
                Err(FlashError::UncorrectableRead { .. }) => continue,
                Err(e) => {
                    return Err(SsdError::FlashProtocol {
                        op: "read",
                        lun: phys.lun,
                        detail: format!("retry at {:?}: {e}", phys.addr),
                    })
                }
            }
        }

        // stage 2: soft-decision ECC escalation
        if payload.is_none() {
            steps += 1;
            self.metrics.recovery.ecc_escalations += 1;
            self.metrics.flash_reads.bump(OpCause::Recovery);
            let esc_cmd_done = cursor + cmd;
            let g = self.sched.lun_res[li].reserve_tagged(
                esc_cmd_done,
                t_read * u64::from(ECC_ESCALATION_SENSES),
                Occupant::Recovery,
            );
            self.sched
                .emit_flash_op_spans(chan, li, cursor, esc_cmd_done, g, Cause::Recovery);
            self.sched.trace_span(lane.clone(), g.start, g.end, 'e');
            cursor = g.end;
            match self.luns[li].recovery_read(
                phys.addr,
                ECC_ESCALATION_DERATE,
                ECC_ESCALATION_BOOST,
            ) {
                Ok(o) => {
                    payload = Some(o.payload);
                    self.metrics.recovery.ecc_recovered += 1;
                }
                Err(FlashError::UncorrectableRead { .. }) => {}
                Err(e) => {
                    return Err(SsdError::FlashProtocol {
                        op: "read",
                        lun: phys.lun,
                        detail: format!("escalation at {:?}: {e}", phys.addr),
                    })
                }
            }
        }

        // stage 3: stripe parity rebuild across every other LUN
        if payload.is_none() {
            let nl = self.total_luns() as usize;
            if nl > 1 {
                self.metrics.recovery.parity_rebuilds += 1;
                let rb_start = cursor;
                let mut rb_end = rb_start;
                let xfer = self.cfg.channel.transfer(self.page_size());
                for peer in 0..nl {
                    if peer == li {
                        continue;
                    }
                    steps += 1;
                    self.metrics.recovery.rebuild_page_reads += 1;
                    self.metrics.flash_reads.bump(OpCause::Recovery);
                    let peer_chan = self.shape().channel_of(LunId(peer as u32)) as usize;
                    let pg = self.sched.lun_res[peer].reserve_tagged(
                        rb_start + cmd,
                        t_read,
                        Occupant::Recovery,
                    );
                    let xg = self.sched.chan_res[peer_chan].reserve_tagged(
                        pg.end,
                        xfer,
                        Occupant::Recovery,
                    );
                    rb_end = rb_end.max(xg.end);
                }
                if probe_on && rb_end > rb_start {
                    // one aggregate span: the peer reads overlap each
                    // other, so per-peer spans would break span tiling
                    self.sched.probe.span(
                        Layer::Controller,
                        Cause::Recovery,
                        "stripe",
                        rb_start,
                        rb_end,
                    );
                }
                cursor = rb_end.max(cursor);
                if let Some(p) = self.luns[li].parity_reconstruct(phys.addr) {
                    payload = Some(p);
                    rebuilt = true;
                }
            }
        }

        self.metrics.recovery.recovery_time += cursor.since(lg.end);
        let (payload, status) = match payload {
            Some(p) => (p, ReadRecovery::Recovered { steps, rebuilt }),
            None => {
                self.metrics.recovery.unrecoverable += 1;
                (PagePayload::Empty, ReadRecovery::Lost)
            }
        };

        // transfer whatever the controller ended up with
        let (end, chan_wait) = if with_transfer {
            let xfer = self.cfg.channel.transfer(self.page_size()) + self.chan_hiccup_extra(chan);
            let xg = self.sched.chan_res[chan].reserve_tagged(cursor, xfer, occ);
            self.sched.emit_chan_transfer_spans(chan, cursor, xg);
            self.sched
                .trace_span(format!("chan{chan}"), xg.start, xg.end, 't');
            (xg.end, xg.start.since(cursor))
        } else {
            (cursor, SimDuration::ZERO)
        };
        Ok(FlashReadDone {
            end,
            lun_wait,
            chan_wait,
            payload,
            status,
        })
    }

    /// Program `phys` with the tag for `lpn`.
    /// [`SsdError::ProgramFailed`] = wear-induced program failure
    /// (`append_page` salvages the block and retries elsewhere;
    /// fixed-offset FTLs collapse it via [`SsdError::full_on`]).
    pub(crate) fn op_program(
        &mut self,
        not_before: SimTime,
        phys: PhysPage,
        lpn: Lpn,
        use_channel: bool,
        cause: OpCause,
    ) -> Result<SimTime, SsdError> {
        let li = phys.lun.0 as usize;
        let chan = self.shape().channel_of(phys.lun) as usize;
        let occ = occupant_of(cause);
        let start = if use_channel {
            let bus_time =
                self.cfg.channel.write_bus_time(self.page_size()) + self.chan_hiccup_extra(chan);
            let bus = self.sched.chan_res[chan].reserve_tagged(not_before, bus_time, occ);
            self.sched.emit_chan_transfer_spans(chan, not_before, bus);
            self.sched
                .trace_span(format!("chan{chan}"), bus.start, bus.end, 't');
            bus.end
        } else {
            not_before
        };
        self.oob_seq += 1;
        let oob = PagePayload::Oob {
            lpn: lpn.0,
            seq: self.oob_seq,
        };
        let dur = match self.luns[li].program(phys.addr, oob) {
            Ok(o) => o.duration,
            Err(FlashError::ProgramFailed { .. }) => return Err(SsdError::ProgramFailed { phys }),
            Err(e) => {
                return Err(SsdError::FlashProtocol {
                    op: "program",
                    lun: phys.lun,
                    detail: format!("at {:?}: {e}", phys.addr),
                })
            }
        };
        let g = self.sched.lun_res[li].reserve_tagged(start, dur, occ);
        self.metrics.flash_programs.bump(cause);
        self.sched
            .emit_lun_op_spans(li, start, g, Cause::CellProgram);
        self.sched
            .trace_span(format!("chip{}", phys.lun.0), g.start, g.end, 'P');
        Ok(g.end)
    }

    /// Erase a block; on wear-out failure the block is retired. Returns
    /// the erase completion either way (the time was spent); errs only
    /// on a protocol violation (erase of a retired block).
    pub(crate) fn op_erase(
        &mut self,
        not_before: SimTime,
        lun: LunId,
        block_idx: u32,
        cause: OpCause,
    ) -> Result<SimTime, SsdError> {
        let li = lun.0 as usize;
        let baddr = self.cfg.flash.geometry.block_from_index(block_idx);
        let cmd_done = not_before + self.cfg.channel.command;
        let occ = occupant_of(cause);
        let (g, retired) = match self.luns[li].erase(baddr) {
            Ok(o) => (
                self.sched.lun_res[li].reserve_tagged(cmd_done, o.duration, occ),
                false,
            ),
            Err(FlashError::EraseFailed { .. }) => (
                self.sched.lun_res[li].reserve_tagged(cmd_done, self.cfg.flash.timing.erase, occ),
                true,
            ),
            Err(e) => {
                return Err(SsdError::FlashProtocol {
                    op: "erase",
                    lun,
                    detail: format!("of {baddr}: {e}"),
                })
            }
        };
        self.metrics.flash_erases.bump(cause);
        let chan = self.shape().channel_of(lun) as usize;
        self.sched
            .emit_flash_op_spans(chan, li, not_before, cmd_done, g, Cause::CellErase);
        if retired {
            self.metrics.blocks_retired += 1;
            self.metrics.recovery.erase_retirements += 1;
            self.dir.retire(lun, block_idx);
        } else {
            self.sched
                .trace_span(format!("chip{}", lun.0), g.start, g.end, 'E');
            self.dir.recycle(lun, block_idx);
        }
        Ok(g.end)
    }

    /// Charge DFTL translation traffic, serialized after `t`. Grants are
    /// tagged [`Occupant::Translation`]; span attribution is left to the
    /// caller (critical-path callers emit one aggregate mapping span).
    pub(crate) fn exec_trans(&mut self, mut t: SimTime, ios: &[TransIo]) -> SimTime {
        for io in ios {
            let li = io.lun.0 as usize;
            let chan = self.shape().channel_of(io.lun) as usize;
            let xfer = self.cfg.channel.transfer(self.page_size());
            match io.kind {
                TransIoKind::Read => {
                    let cmd_done = t + self.cfg.channel.command;
                    let lg = self.sched.lun_res[li].reserve_tagged(
                        cmd_done,
                        self.cfg.flash.timing.read,
                        Occupant::Translation,
                    );
                    let xg = self.sched.chan_res[chan].reserve_tagged(
                        lg.end,
                        xfer,
                        Occupant::Translation,
                    );
                    self.metrics.flash_reads.bump(OpCause::Translation);
                    t = xg.end;
                }
                TransIoKind::Write => {
                    // read–modify–write of a translation page
                    let cmd_done = t + self.cfg.channel.command;
                    let rg = self.sched.lun_res[li].reserve_tagged(
                        cmd_done,
                        self.cfg.flash.timing.read,
                        Occupant::Translation,
                    );
                    let bus_time = self.cfg.channel.write_bus_time(self.page_size());
                    let bus = self.sched.chan_res[chan].reserve_tagged(
                        rg.end,
                        bus_time,
                        Occupant::Translation,
                    );
                    let pg = self.sched.lun_res[li].reserve_tagged(
                        bus.end,
                        self.cfg.flash.timing.program_mean(),
                        Occupant::Translation,
                    );
                    self.metrics.flash_reads.bump(OpCause::Translation);
                    self.metrics.flash_programs.bump(OpCause::Translation);
                    t = pg.end;
                }
            }
        }
        t
    }

    // ------------------------------------------------------------------
    // write placement
    // ------------------------------------------------------------------

    pub(crate) fn place_lun(&mut self, lpn: Lpn, t: SimTime) -> LunId {
        match self.cfg.placement {
            Placement::StaticByLpn => LunId((lpn.0 % self.total_luns() as u64) as u32),
            Placement::RoundRobin => {
                let i = self.rr;
                self.rr = self.rr.wrapping_add(1);
                self.shape().interleaved_lun(i % self.total_luns())
            }
            Placement::LeastLoaded => {
                // earliest-start wins; ties rotate round-robin so an idle
                // device still stripes writes across every LUN (a
                // lowest-index tie-break would degenerate to filling one
                // LUN at a time under closed-loop workloads)
                let prog = self.cfg.flash.timing.program_mean();
                let n = self.total_luns();
                let offset = self.rr;
                self.rr = self.rr.wrapping_add(1);
                let mut best = LunId(offset % n);
                let mut best_start = SimTime::MAX;
                for k in 0..n {
                    let l = self.shape().interleaved_lun((offset.wrapping_add(k)) % n);
                    if self.dir.exhausted(l) {
                        continue;
                    }
                    let start = self.sched.lun_res[l.0 as usize].peek(t, prog).start;
                    if start < best_start {
                        best_start = start;
                        best = l;
                    }
                }
                best
            }
        }
    }

    /// Allocate the next page on `lun` for `stream` and program it.
    /// Falls back to other LUNs when this one is out of space; retires
    /// blocks whose programs fail.
    pub(crate) fn append_page(
        &mut self,
        t: SimTime,
        lun: LunId,
        stream: Stream,
        lpn: Lpn,
        use_channel: bool,
        cause: OpCause,
    ) -> Result<(PhysPage, SimTime), SsdError> {
        let wear_aware = self.wear_policy.wear_aware_allocation();
        let mut lun = lun;
        let mut tries = 0u32;
        loop {
            tries += 1;
            if tries > 4 * self.total_luns() {
                return Err(SsdError::DeviceFull { lun });
            }
            let np = match self.dir.next_page(lun, stream, wear_aware) {
                Some(np) => np,
                None => {
                    // out of free blocks here: try GC, then other LUNs
                    self.maybe_gc(lun, t);
                    match self.dir.next_page(lun, stream, wear_aware) {
                        Some(np) => np,
                        None => {
                            let next = LunId((lun.0 + 1) % self.total_luns());
                            if next.0 == 0 && tries > self.total_luns() {
                                return Err(SsdError::DeviceFull { lun });
                            }
                            lun = next;
                            continue;
                        }
                    }
                }
            };
            match self.op_program(t, np.phys, lpn, use_channel, cause) {
                Ok(end) => return Ok((np.phys, end)),
                Err(SsdError::ProgramFailed { .. }) => {
                    // wear-induced failure: salvage live pages, retire
                    // block, and retry the write in a fresh stripe
                    self.metrics.recovery.program_salvages += 1;
                    self.salvage_and_retire(np.phys.lun, np.phys.addr, t);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
