//! The controller policy architecture: the paper's Figure 2, one module
//! per box.
//!
//! The original `device.rs` monolith owned every controller decision
//! inline. This module tree splits *policy* (pure decision functions over
//! read-only views of the controller state) from *mechanism* (the
//! resource-timed flash operations, which stay with [`crate::Ssd`] but
//! live in the submodule matching their Figure-2 box):
//!
//! | Figure 2 box                    | Module                    | Policy trait / type |
//! |---------------------------------|---------------------------|---------------------|
//! | Scheduling (channels, chips)    | [`scheduler`]             | [`Scheduler`]       |
//! | Garbage collection              | [`gc`]                    | [`GcPolicy`]        |
//! | Wear leveling                   | [`wear`]                  | [`WearPolicy`]      |
//! | RAM buffer (battery-backed)     | [`write_buffer`]          | [`WriteBufferPolicy`] |
//! | Mapping (block-mapped FTL)      | [`block_ftl`]             | —                   |
//! | Mapping (hybrid log-block FTL)  | [`hybrid_ftl`]            | —                   |
//! | Boot / recovery                 | [`rebuild`]               | —                   |
//!
//! Policies are constructed from [`SsdConfig`](crate::SsdConfig) by the
//! factory functions below, so an experiment selects e.g. cost-benefit GC
//! by flipping [`GcPolicyKind`](crate::config::GcPolicyKind) — no code
//! change, and custom implementations of the traits can be dropped in by
//! code that builds a device manually.

pub mod block_ftl;
pub mod gc;
pub mod hybrid_ftl;
pub mod rebuild;
pub mod scheduler;
pub mod wear;
pub mod write_buffer;

pub use gc::{CostBenefitGc, GcGate, GcToken, GreedyGc};
pub use scheduler::Scheduler;
pub use wear::ThresholdWear;
pub use write_buffer::WriteThrough;

use crate::addr::LunId;
use crate::block_dir::BlockDirectory;
use crate::config::{BufferConfig, GcConfig, GcPolicyKind, WlConfig};
use requiem_sim::time::SimTime;

/// Garbage-collection policy: *when* to collect a LUN and *which* block
/// to collect. Implementations are pure decision functions over the
/// [`BlockDirectory`]; the relocation/erase mechanism stays with the
/// device (see [`gc`]).
pub trait GcPolicy {
    /// Policy name (reports, debugging).
    fn name(&self) -> &'static str;
    /// Whether `lun` is low enough on free blocks to warrant collection.
    fn should_collect(&self, dir: &BlockDirectory, lun: LunId) -> bool;
    /// The victim block to collect on `lun`, if any is worth collecting.
    fn pick_victim(&self, dir: &BlockDirectory, lun: LunId) -> Option<u32>;
}

/// Wear-leveling policy: how allocation avoids worn blocks (dynamic) and
/// when/what to migrate to even out wear (static).
pub trait WearPolicy {
    /// Policy name (reports, debugging).
    fn name(&self) -> &'static str;
    /// Prefer the lowest-erase-count free block at allocation time.
    fn wear_aware_allocation(&self) -> bool;
    /// Whether the current erase-count spread warrants a static migration.
    fn should_migrate(&self, dir: &BlockDirectory) -> bool;
    /// Source block for a static migration on `lun`.
    fn pick_migration(&self, dir: &BlockDirectory, lun: LunId) -> Option<u32>;
}

/// Write-buffer policy: what happens between a host write's arrival at
/// the controller and its acknowledgement. The battery-backed buffer
/// (§2.3.2) acknowledges on buffer admission; [`WriteThrough`]
/// acknowledges only when the flash program finishes.
pub trait WriteBufferPolicy: std::fmt::Debug {
    /// Policy name (reports, debugging).
    fn name(&self) -> &'static str;
    /// Whether writes complete from buffer RAM (false = write-through).
    fn enabled(&self) -> bool;
    /// Admission instant for a write arriving at `now` (later than `now`
    /// when every slot is mid-flush).
    fn acquire(&mut self, now: SimTime) -> SimTime;
    /// Record that `lpn` occupies a slot until its flush finishes at `done`.
    fn commit(&mut self, lpn: u64, done: SimTime);
    /// Whether a read of `lpn` at `now` is served from buffer RAM.
    fn read_hit(&mut self, lpn: u64, now: SimTime) -> bool;
    /// Drop residency for `lpn` (trim).
    fn discard(&mut self, lpn: u64);
    /// Reads served from the buffer so far.
    fn read_hits(&self) -> u64;
    /// Writes that had to wait for a slot so far.
    fn stalls(&self) -> u64;
}

/// Instantiate the [`GcPolicy`] a configuration asks for.
pub fn gc_policy_from(cfg: &GcConfig) -> Box<dyn GcPolicy> {
    match cfg.policy {
        GcPolicyKind::Greedy => Box::new(GreedyGc::new(cfg.free_block_threshold)),
        GcPolicyKind::CostBenefit => Box::new(CostBenefitGc::new(cfg.free_block_threshold)),
    }
}

/// Instantiate the [`WearPolicy`] a configuration asks for.
pub fn wear_policy_from(cfg: &WlConfig) -> Box<dyn WearPolicy> {
    Box::new(ThresholdWear::new(cfg.dynamic, cfg.static_threshold))
}

/// Instantiate the [`WriteBufferPolicy`] a configuration asks for
/// (capacity 0 = write-through).
pub fn buffer_policy_from(cfg: &BufferConfig) -> Box<dyn WriteBufferPolicy> {
    if cfg.capacity_pages == 0 {
        Box::new(WriteThrough)
    } else {
        Box::new(crate::buffer::WriteBuffer::new(cfg.capacity_pages as usize))
    }
}
