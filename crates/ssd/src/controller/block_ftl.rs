//! The block-mapped FTL: the classic pre-2009 "Mapping" box of Figure 2.
//!
//! One mapping entry per *logical block*; pages must land at their
//! in-block offset. Sequential overwrites stay cheap through a single
//! replacement-block context ([`ReplCtx`]); random rewrites degenerate
//! into merge storms — exactly the behaviour the paper's §2.3.1 myth
//! ("flash is slow at random writes") is built on. Merge traffic reserves
//! channel/LUN time tagged [`Occupant::Merge`](requiem_sim::Occupant),
//! so host commands queued behind a merge see `MergeStall` wait spans on
//! the probe bus.

use requiem_sim::time::SimTime;

use crate::addr::{Lpn, LunId, PhysPage};
use crate::config::Placement;
use crate::device::{MappingState, Ssd, SsdError};
use crate::mapping::block::PhysBlockRef;
use crate::metrics::OpCause;

/// Replacement-block context for the block-mapped FTL: the classic
/// pre-2009 scheme that keeps sequential overwrites cheap. A rewrite below
/// the data block's write point opens a replacement block; in-order
/// follow-up writes append into it; touching another logical block (or
/// going backwards) finalizes the replacement (copy the tail, erase the
/// old block, switch the mapping).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplCtx {
    pub(crate) lbn: u64,
    pub(crate) old: PhysBlockRef,
    pub(crate) new: PhysBlockRef,
    pub(crate) copies: u32,
}

impl Ssd {
    pub(crate) fn block_phys(&self, pb: PhysBlockRef, page: u32) -> PhysPage {
        let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
        PhysPage {
            lun: pb.lun,
            addr: self
                .cfg
                .flash
                .geometry
                .page_addr(baddr.plane, baddr.block, page),
        }
    }

    pub(crate) fn place_lun_for_block(&mut self, lbn: u64, t: SimTime) -> LunId {
        match self.cfg.placement {
            Placement::StaticByLpn => LunId((lbn % self.total_luns() as u64) as u32),
            _ => self.place_lun(Lpn(lbn), t),
        }
    }

    pub(crate) fn alloc_block_on(&mut self, lun: LunId, _t: SimTime) -> Result<u32, SsdError> {
        let wear_aware = self.wear_policy.wear_aware_allocation();
        self.dir
            .alloc_block(lun, wear_aware)
            .ok_or(SsdError::DeviceFull { lun })
    }

    /// Copy live pages of `old` at offsets `[from, to)` into the same
    /// offsets of `new` (replacement catch-up).
    pub(crate) fn repl_copy_range(
        &mut self,
        t: SimTime,
        old: PhysBlockRef,
        new: PhysBlockRef,
        from: u32,
        to: u32,
    ) -> Result<u32, SsdError> {
        let _bg = self.sched.probe.background();
        let copyback = self.cfg.gc.copyback;
        let mut copied = 0u32;
        let mut cursor = t;
        for o in from..to {
            let info = self.dir.block_info(old.lun, old.block);
            let Some(lpn_o) = info.backptrs[o as usize] else {
                continue; // gap: C3 permits skipping ahead
            };
            let src = self.block_phys(old, o);
            let read = self.op_read(cursor, src, !copyback, OpCause::Merge)?;
            let dst = self.block_phys(new, o);
            let end = self
                .op_program(read.end, dst, lpn_o, !copyback, OpCause::Merge)
                .map_err(|e| e.full_on(new.lun))?;
            self.dir.invalidate(src);
            self.dir.mark_valid(dst, lpn_o);
            cursor = end;
            copied += 1;
        }
        Ok(copied)
    }

    /// Close the open replacement block: copy the remaining tail, erase
    /// the old block, switch the mapping.
    pub(crate) fn finalize_replacement(&mut self, t: SimTime) -> Result<(), SsdError> {
        let Some(ctx) = self.repl.take() else {
            return Ok(());
        };
        let _bg = self.sched.probe.background();
        let ppb = self.ppb();
        let baddr = self.cfg.flash.geometry.block_from_index(ctx.new.block);
        let wp_new = self.luns[ctx.new.lun.0 as usize]
            .block_state(baddr)
            .write_point;
        let tail = self.repl_copy_range(t, ctx.old, ctx.new, wp_new, ppb)?;
        // anything still marked live in the old block is stale now
        let stale = self.dir.live_pages(ctx.old.lun, ctx.old.block);
        for (a, _) in stale {
            self.dir.invalidate(PhysPage {
                lun: ctx.old.lun,
                addr: a,
            });
        }
        self.op_erase(t, ctx.old.lun, ctx.old.block, OpCause::Merge)?;
        match &mut self.map {
            MappingState::Block(m) => {
                m.update(ctx.lbn, ctx.new);
            }
            _ => unreachable!("replacement blocks exist only under block mapping"),
        }
        if ctx.copies + tail == 0 {
            self.metrics.merges_switch += 1;
        } else {
            self.metrics.merges_full += 1;
        }
        Ok(())
    }

    pub(crate) fn write_block_mapped(
        &mut self,
        t0: SimTime,
        lpn: Lpn,
    ) -> Result<SimTime, SsdError> {
        let ppb = self.ppb() as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        // an open replacement block for this logical block?
        if let Some(ctx) = self.repl {
            if ctx.lbn == lbn {
                let baddr = self.cfg.flash.geometry.block_from_index(ctx.new.block);
                let wp_new = self.luns[ctx.new.lun.0 as usize]
                    .block_state(baddr)
                    .write_point;
                if off >= wp_new {
                    // in-order continuation: catch up the gap, then append
                    let copied = self.repl_copy_range(t0, ctx.old, ctx.new, wp_new, off)?;
                    if let Some(c) = self.repl.as_mut() {
                        c.copies += copied;
                    }
                    self.dir
                        .invalidate_checked(self.block_phys(ctx.old, off), lpn);
                    let phys = self.block_phys(ctx.new, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|e| e.full_on(ctx.new.lun))?;
                    self.dir.mark_valid(phys, lpn);
                    return Ok(end);
                }
                // going backwards: close this replacement and start over
                self.finalize_replacement(t0)?;
            }
        }
        let cur = match &self.map {
            MappingState::Block(m) => m.lookup(lbn),
            _ => unreachable!(),
        };
        match cur {
            None => {
                let lun = self.place_lun_for_block(lbn, t0);
                let block = self.alloc_block_on(lun, t0)?;
                let pb = PhysBlockRef { lun, block };
                let phys = self.block_phys(pb, off);
                let end = self
                    .op_program(t0, phys, lpn, true, OpCause::Host)
                    .map_err(|e| e.full_on(lun))?;
                if let MappingState::Block(m) = &mut self.map {
                    m.update(lbn, pb);
                }
                self.dir.mark_valid(phys, lpn);
                Ok(end)
            }
            Some(pb) => {
                let baddr = self.cfg.flash.geometry.block_from_index(pb.block);
                let wp = self.luns[pb.lun.0 as usize].block_state(baddr).write_point;
                if off >= wp {
                    // in-order append (C3 allows gaps upward)
                    let phys = self.block_phys(pb, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|e| e.full_on(pb.lun))?;
                    self.dir.mark_valid(phys, lpn);
                    Ok(end)
                } else {
                    // rewrite below the write point: open a replacement
                    // block (finalizing any replacement held by another
                    // logical block first — the single-context limit that
                    // makes *random* rewrites a merge storm)
                    if self.repl.is_some() {
                        self.finalize_replacement(t0)?;
                    }
                    let lun = pb.lun;
                    let newb = self.alloc_block_on(lun, t0)?;
                    let newpb = PhysBlockRef { lun, block: newb };
                    let copied = self.repl_copy_range(t0, pb, newpb, 0, off)?;
                    self.repl = Some(ReplCtx {
                        lbn,
                        old: pb,
                        new: newpb,
                        copies: copied,
                    });
                    self.dir.invalidate_checked(self.block_phys(pb, off), lpn);
                    let phys = self.block_phys(newpb, off);
                    let end = self
                        .op_program(t0, phys, lpn, true, OpCause::Host)
                        .map_err(|e| e.full_on(lun))?;
                    self.dir.mark_valid(phys, lpn);
                    Ok(end)
                }
            }
        }
    }

    /// Resolve the physical location of `lpn` under block mapping: the
    /// open replacement block (if it belongs to this logical block) wins
    /// over the mapped data block; back-pointers arbitrate staleness.
    pub(crate) fn resolve_read_block(&self, lpn: Lpn) -> Option<PhysPage> {
        let MappingState::Block(m) = &self.map else {
            unreachable!()
        };
        let ppb = self.cfg.flash.geometry.pages_per_block as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        // candidate blocks: the open replacement (if it is this
        // logical block's), then the mapped data block
        let mut candidates: Vec<PhysBlockRef> = Vec::with_capacity(2);
        if let Some(ctx) = &self.repl {
            if ctx.lbn == lbn {
                candidates.push(ctx.new);
            }
        }
        if let Some(pb) = m.lookup(lbn) {
            candidates.push(pb);
        }
        let geometry = self.cfg.flash.geometry.clone();
        for pb in candidates {
            let info = self.dir.block_info(pb.lun, pb.block);
            if info.backptrs[off as usize] == Some(lpn) {
                let baddr = geometry.block_from_index(pb.block);
                return Some(PhysPage {
                    lun: pb.lun,
                    addr: geometry.page_addr(baddr.plane, baddr.block, off),
                });
            }
        }
        None
    }

    /// Trim under block mapping: kill whichever candidate holds `lpn`.
    pub(crate) fn trim_block(&mut self, lpn: Lpn) {
        let MappingState::Block(m) = &self.map else {
            unreachable!()
        };
        let ppb = self.cfg.flash.geometry.pages_per_block as u64;
        let lbn = lpn.0 / ppb;
        let off = (lpn.0 % ppb) as u32;
        let mut candidates: Vec<PhysBlockRef> = Vec::with_capacity(2);
        if let Some(ctx) = &self.repl {
            if ctx.lbn == lbn {
                candidates.push(ctx.new);
            }
        }
        if let Some(pb) = m.lookup(lbn) {
            candidates.push(pb);
        }
        for pb in candidates {
            let phys = self.block_phys(pb, off);
            if self.dir.invalidate_checked(phys, lpn) {
                break;
            }
        }
    }
}
