//! The battery-backed RAM write buffer: the Figure-2 "RAM" box (§2.3.2).
//!
//! * **Policy** — [`WriteBufferPolicy`](super::WriteBufferPolicy)
//!   implementations: the capacity-limited battery-backed
//!   [`WriteBuffer`](crate::buffer::WriteBuffer) (acknowledge on buffer
//!   admission, flush to flash in the background) and [`WriteThrough`]
//!   (acknowledge only when the flash program completes).
//! * **Mechanism** — the `impl Ssd` block: the page-mapped write path
//!   that consults the policy, and the flush that places + programs one
//!   page and updates the mapping.

use requiem_sim::time::SimTime;
use requiem_sim::{Cause, Layer};

use crate::addr::Lpn;
use crate::block_dir::Stream;
use crate::buffer::WriteBuffer;
use crate::device::{MappingState, Served, Ssd, SsdError};
use crate::metrics::OpCause;

use super::WriteBufferPolicy;

impl WriteBufferPolicy for WriteBuffer {
    fn name(&self) -> &'static str {
        "battery-backed"
    }

    fn enabled(&self) -> bool {
        WriteBuffer::enabled(self)
    }

    fn acquire(&mut self, now: SimTime) -> SimTime {
        WriteBuffer::acquire(self, now)
    }

    fn commit(&mut self, lpn: u64, done: SimTime) {
        WriteBuffer::commit(self, lpn, done)
    }

    fn read_hit(&mut self, lpn: u64, now: SimTime) -> bool {
        WriteBuffer::read_hit(self, lpn, now)
    }

    fn discard(&mut self, lpn: u64) {
        WriteBuffer::discard(self, lpn)
    }

    fn read_hits(&self) -> u64 {
        WriteBuffer::read_hits(self)
    }

    fn stalls(&self) -> u64 {
        WriteBuffer::stalls(self)
    }
}

/// The no-buffer policy: every write is acknowledged only when its flash
/// program finishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteThrough;

impl WriteBufferPolicy for WriteThrough {
    fn name(&self) -> &'static str {
        "write-through"
    }

    fn enabled(&self) -> bool {
        false
    }

    fn acquire(&mut self, now: SimTime) -> SimTime {
        now
    }

    fn commit(&mut self, _lpn: u64, _done: SimTime) {}

    fn read_hit(&mut self, _lpn: u64, _now: SimTime) -> bool {
        false
    }

    fn discard(&mut self, _lpn: u64) {}

    fn read_hits(&self) -> u64 {
        0
    }

    fn stalls(&self) -> u64 {
        0
    }
}

impl Ssd {
    /// Page-mapped write: admit to the buffer (acknowledge early, flush in
    /// the background) or write through to flash.
    pub(crate) fn write_page_mapped(
        &mut self,
        t0: SimTime,
        lpn: Lpn,
    ) -> Result<(SimTime, Served), SsdError> {
        if self.buffer.enabled() {
            let start = self.buffer.acquire(t0);
            if self.sched.probe.is_enabled() {
                if start > t0 {
                    // every slot was mid-flush: the host write stalls
                    self.sched
                        .probe
                        .span(Layer::Buffer, Cause::BufferStall, "wbuf", t0, start);
                }
                // zero-length marker: the command completed from RAM here
                self.sched
                    .probe
                    .span(Layer::Buffer, Cause::BufferHit, "wbuf", start, start);
            }
            let flush_end = {
                let _bg = self.sched.probe.background();
                self.flush_page(start, lpn)?
            };
            self.buffer.commit(lpn.0, flush_end);
            Ok((start, Served::Buffer))
        } else {
            let end = self.flush_page(t0, lpn)?;
            Ok((end, Served::Flash))
        }
    }

    /// Place + program one page and update the mapping.
    pub(crate) fn flush_page(&mut self, t: SimTime, lpn: Lpn) -> Result<SimTime, SsdError> {
        let lun = self.place_lun(lpn, t);
        self.maybe_gc(lun, t);
        let (phys, end) = self.append_page(t, lun, Stream::Host, lpn, true, OpCause::Host)?;
        let old = match &mut self.map {
            MappingState::Page(m) => m.update(lpn, phys),
            MappingState::Dftl(m) => {
                let mut ios = Vec::new();
                let old = m.update(lpn, phys, &mut ios);
                // write-back of the dirty translation entry does not gate
                // the host acknowledgement: charge it as background traffic
                let _bg = self.sched.probe.background();
                self.exec_trans(t, &ios);
                old
            }
            _ => unreachable!(),
        };
        if let Some(o) = old {
            self.dir.invalidate(o);
        }
        self.dir.mark_valid(phys, lpn);
        Ok(end)
    }
}
