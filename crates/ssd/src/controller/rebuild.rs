//! Boot / power-loss recovery: rebuilding controller RAM from flash.
//!
//! The page-mapped FTL's boot sequence scans every page's out-of-band
//! metadata to reconstruct the logical→physical mapping and the block
//! directory, newest sequence number winning. This is the startup cost
//! that motivated DFTL: scan time grows linearly with raw capacity.

use requiem_flash::PagePayload;
use requiem_sim::time::SimTime;

use crate::addr::{Lpn, LunId, PhysPage};
use crate::block_dir::BlockDirectory;
use crate::device::{MappingState, RebuildReport, Ssd, SsdError};
use crate::mapping::page::PageMap;
use crate::metrics::OpCause;

impl Ssd {
    /// Simulate a power loss followed by the page-mapped FTL's boot
    /// sequence: all controller RAM (mapping table, block directory) is
    /// lost and rebuilt by scanning every page's out-of-band metadata,
    /// newest sequence number winning. Returns when the device is ready.
    ///
    /// This is the page-FTL startup cost that motivated DFTL (the paper's
    /// ref [10]): scan time grows linearly with raw capacity. The write
    /// buffer is battery-backed, so the rebuild requires all in-flight
    /// flushes to have drained (`at >= drain_time()`).
    ///
    /// Only supported for [`FtlKind::PageMap`](crate::config::FtlKind);
    /// other FTLs return an error.
    ///
    /// # Panics
    /// Panics if `at` precedes the drain time (buffer contents would be
    /// ambiguous).
    pub fn power_loss_rebuild(&mut self, at: SimTime) -> Result<RebuildReport, SsdError> {
        if !matches!(self.map, MappingState::Page(_)) {
            return Err(SsdError::Unsupported {
                what: "power-loss rebuild",
            });
        }
        assert!(
            at >= self.drain_time(),
            "rebuild before the battery-backed buffer drained"
        );
        let _bg = self.sched.probe.background();
        let geom = self.cfg.flash.geometry.clone();
        let nluns = self.total_luns();
        // volatile state vanishes
        let mut fresh = BlockDirectory::new(nluns, geom.clone());
        let mut map = PageMap::new(self.capacity.exported_pages);
        self.buffer = super::buffer_policy_from(&self.cfg.buffer);
        self.repl = None;
        // scan every page of every block (OOB reads; charged as
        // translation traffic on each LUN — LUNs scan in parallel).
        // BTreeMap: the winner-per-lpn fold below replays in lpn order,
        // so the rebuilt map is bit-identical run to run.
        let mut best: std::collections::BTreeMap<u64, (u64, PhysPage)> =
            std::collections::BTreeMap::new();
        let mut scanned = 0u64;
        for lun_i in 0..nluns {
            let lun = LunId(lun_i);
            for block in geom.blocks() {
                let bidx = geom.block_index(block);
                // mirror chip-held wear state back into the directory
                let chip_state = self.luns[lun_i as usize].block_state(block).clone();
                if chip_state.bad {
                    fresh.retire(lun, bidx);
                    continue;
                }
                fresh.set_erase_count(lun, bidx, chip_state.erase_count);
                if chip_state.write_point == 0 {
                    continue; // fully erased: stays on the free list
                }
                // programmed block: scan its pages, mark it occupied
                fresh.claim_full(lun, bidx);
                for addr in geom.pages_of(block) {
                    if addr.page >= chip_state.write_point {
                        break;
                    }
                    let phys = PhysPage { lun, addr };
                    let read = self.op_read(at, phys, false, OpCause::Translation)?;
                    scanned += 1;
                    if let PagePayload::Oob { lpn, seq } = read.payload {
                        match best.entry(lpn) {
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                if e.get().0 < seq {
                                    e.insert((seq, phys));
                                }
                            }
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert((seq, phys));
                            }
                        }
                    }
                }
            }
        }
        for (lpn, (_, phys)) in best {
            if lpn < self.capacity.exported_pages {
                map.update(Lpn(lpn), phys);
                fresh.mark_valid(phys, Lpn(lpn));
            }
        }
        self.dir = fresh;
        self.map = MappingState::Page(map);
        let ready = self.drain_time().max(at);
        Ok(RebuildReport {
            ready,
            duration: ready.since(at),
            pages_scanned: scanned,
        })
    }
}
