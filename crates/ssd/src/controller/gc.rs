//! Garbage collection: the Figure-2 "Garbage collection" box.
//!
//! Two things live here:
//!
//! * **Policy** — [`GreedyGc`] and [`CostBenefitGc`], implementations of
//!   [`GcPolicy`](super::GcPolicy) deciding *when* a LUN needs collecting
//!   and *which* block to victimize. Both are pure functions over the
//!   [`BlockDirectory`](crate::block_dir::BlockDirectory) view.
//! * **Mechanism** — the `impl Ssd` block at the bottom: the relocation
//!   loop, the DFTL translation write-back batching, the erase, and
//!   read-disturb scrubbing. Mechanism reserves channel/LUN time tagged
//!   with [`Occupant::Gc`](requiem_sim::Occupant), which is how GC
//!   interference with host reads (myth 3) shows up in the probe bus
//!   without being explicitly programmed in.
//!
//! Re-entrancy is guarded by the typed [`GcGate`]/[`GcToken`] pair: a
//! GC-internal allocation that runs dry spills to other LUNs instead of
//! recursing into a nested collection. The token's `Drop` releases the
//! gate, so no code path can forget to clear it.

use std::cell::Cell;
use std::rc::Rc;

use requiem_flash::PagePayload;
use requiem_sim::time::SimTime;

use crate::addr::{Lpn, LunId, PhysPage};
use crate::block_dir::{BlockDirectory, Stream};
use crate::config::GcPolicyKind;
use crate::device::{MappingState, Ssd, SsdError};
use crate::mapping::dftl::{TransIo, TransIoKind};
use crate::metrics::OpCause;

use super::GcPolicy;

// ----------------------------------------------------------------------
// re-entrancy gate
// ----------------------------------------------------------------------

/// Shared flag guarding against nested garbage collection. Cloned into
/// every code path that may trigger GC; [`try_enter`](GcGate::try_enter)
/// hands out at most one live [`GcToken`] at a time.
#[derive(Debug, Clone, Default)]
pub struct GcGate {
    active: Rc<Cell<bool>>,
}

impl GcGate {
    /// A fresh, open gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire the gate. `None` when a collection is already running —
    /// the caller must spill (allocate elsewhere) rather than recurse.
    pub fn try_enter(&self) -> Option<GcToken> {
        if self.active.get() {
            None
        } else {
            self.active.set(true);
            Some(GcToken {
                gate: self.active.clone(),
            })
        }
    }

    /// Whether a collection is currently running.
    pub fn is_active(&self) -> bool {
        self.active.get()
    }
}

/// Proof of exclusive GC entry. Releases the [`GcGate`] on drop, so early
/// returns and error paths cannot leave the gate wedged shut.
#[derive(Debug)]
pub struct GcToken {
    gate: Rc<Cell<bool>>,
}

impl Drop for GcToken {
    fn drop(&mut self) {
        self.gate.set(false);
    }
}

// ----------------------------------------------------------------------
// policies
// ----------------------------------------------------------------------

/// Greedy victim selection: collect the block with the fewest valid
/// pages. Minimizes relocation work per reclaimed block; ignores age.
#[derive(Debug, Clone)]
pub struct GreedyGc {
    threshold: u32,
}

impl GreedyGc {
    /// Greedy policy triggering when a LUN's free blocks drop to
    /// `threshold`.
    pub fn new(threshold: u32) -> Self {
        Self { threshold }
    }
}

impl GcPolicy for GreedyGc {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn should_collect(&self, dir: &BlockDirectory, lun: LunId) -> bool {
        dir.free_blocks(lun) <= self.threshold
    }

    fn pick_victim(&self, dir: &BlockDirectory, lun: LunId) -> Option<u32> {
        dir.pick_victim(lun, GcPolicyKind::Greedy)
    }
}

/// Cost-benefit victim selection (Rosenblum and Ousterhout's LFS cleaner
/// formula): maximize `age * (1 - u) / 2u` where `u` is the block's
/// valid-page utilization. Prefers old, mostly-invalid blocks; avoids
/// collecting hot blocks that are still shedding valid pages.
#[derive(Debug, Clone)]
pub struct CostBenefitGc {
    threshold: u32,
}

impl CostBenefitGc {
    /// Cost-benefit policy triggering when a LUN's free blocks drop to
    /// `threshold`.
    pub fn new(threshold: u32) -> Self {
        Self { threshold }
    }
}

impl GcPolicy for CostBenefitGc {
    fn name(&self) -> &'static str {
        "cost-benefit"
    }

    fn should_collect(&self, dir: &BlockDirectory, lun: LunId) -> bool {
        dir.free_blocks(lun) <= self.threshold
    }

    fn pick_victim(&self, dir: &BlockDirectory, lun: LunId) -> Option<u32> {
        dir.pick_victim(lun, GcPolicyKind::CostBenefit)
    }
}

// ----------------------------------------------------------------------
// mechanism
// ----------------------------------------------------------------------

impl Ssd {
    /// Run GC on `lun` until it has breathing room (page-mapped FTLs only).
    pub(crate) fn maybe_gc(&mut self, lun: LunId, t: SimTime) {
        if !matches!(self.map, MappingState::Page(_) | MappingState::Dftl(_)) {
            return;
        }
        let Some(token) = self.gc_gate.try_enter() else {
            // no recursive GC; inner allocations spill to other LUNs
            self.metrics.gc_reentries_blocked += 1;
            return;
        };
        {
            let _bg = self.sched.probe.background();
            let mut guard = self.cfg.flash.geometry.total_blocks();
            while self.gc_policy.should_collect(&self.dir, lun) && guard > 0 {
                guard -= 1;
                let Some(victim) = self.gc_policy.pick_victim(&self.dir, lun) else {
                    break;
                };
                if self.gc_collect(lun, victim, t).is_err() {
                    // relocation space exhausted (worn-out device): stop —
                    // the caller's allocation will surface DeviceFull
                    break;
                }
            }
        }
        drop(token);
        if self.wear_policy.should_migrate(&self.dir) {
            self.static_wear_level(lun, t);
        }
    }

    /// Relocate all live pages of `victim` and erase it. On relocation
    /// failure (worn-out device) the victim keeps its remaining live pages
    /// and is NOT erased — data stays readable, writes will report full.
    pub(crate) fn gc_collect(
        &mut self,
        lun: LunId,
        victim: u32,
        t: SimTime,
    ) -> Result<(), SsdError> {
        self.metrics.gc_runs += 1;
        let live = self.dir.live_pages(lun, victim);
        for (addr, lpn) in live {
            let old = PhysPage { lun, addr };
            self.relocate_page(old, lpn, t, OpCause::Gc)?;
        }
        // DFTL: one batched translation write-back per collected block
        if let MappingState::Dftl(_) = self.map {
            let ios = [TransIo {
                lun,
                kind: TransIoKind::Write,
            }];
            self.exec_trans(t, &ios);
        }
        self.op_erase(t, lun, victim, OpCause::Gc)?;
        Ok(())
    }

    /// Move one live page elsewhere (GC / wear leveling / salvage).
    /// Fails only when no LUN can host the page (worn-out device); the
    /// source page is left untouched in that case.
    pub(crate) fn relocate_page(
        &mut self,
        old: PhysPage,
        lpn: Lpn,
        t: SimTime,
        cause: OpCause,
    ) -> Result<(), SsdError> {
        let copyback = self.cfg.gc.copyback;
        let read = self.op_read(t, old, !copyback, cause)?;
        // consistency check: the OOB tag must match the directory — unless
        // the read itself was uncorrectable (payload lost, Empty returned),
        // in which case the relocation proceeds from assumed redundancy
        debug_assert!(
            matches!(read.payload, PagePayload::Oob { lpn: l, .. } if l == lpn.0)
                || read.payload == PagePayload::Empty,
            "GC read of {:?} expected lpn {} got {:?}",
            old,
            lpn.0,
            read.payload
        );
        let (new, _end) = self.append_page(read.end, old.lun, Stream::Gc, lpn, !copyback, cause)?;
        match &mut self.map {
            MappingState::Page(m) => {
                let prev = m.update(lpn, new);
                debug_assert_eq!(prev, Some(old));
            }
            MappingState::Dftl(m) => {
                let prev = m.relocate(lpn, new);
                debug_assert_eq!(prev, Some(old));
            }
            _ => unreachable!("relocate_page only used by page-mapped FTLs"),
        }
        self.dir.invalidate(old);
        self.dir.mark_valid(new, lpn);
        self.metrics.gc_pages_moved += 1;
        Ok(())
    }

    /// Read-disturb scrubbing: if the block holding `phys` has absorbed
    /// more reads than the configured threshold since its last erase,
    /// relocate its live pages and erase it (page-mapped FTLs only).
    pub(crate) fn maybe_scrub(&mut self, phys: PhysPage, t: SimTime) {
        let threshold = self.cfg.scrub_after_reads;
        if threshold == 0 || !matches!(self.map, MappingState::Page(_) | MappingState::Dftl(_)) {
            return;
        }
        if self.gc_gate.is_active() {
            return;
        }
        let geom = self.cfg.flash.geometry.clone();
        let baddr = geom.block_of(phys.addr);
        let reads = self.luns[phys.lun.0 as usize]
            .block_state(baddr)
            .reads_since_erase;
        if reads < threshold {
            return;
        }
        let block_idx = geom.block_index(baddr);
        // never scrub an open frontier; it will be erased soon anyway
        if self.dir.block_info(phys.lun, block_idx).state != crate::block_dir::BlockUse::Full {
            return;
        }
        let Some(token) = self.gc_gate.try_enter() else {
            return;
        };
        self.metrics.scrubs += 1;
        {
            let _bg = self.sched.probe.background();
            let _ = self.gc_collect(phys.lun, block_idx, t);
        }
        drop(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_hands_out_one_token() {
        let gate = GcGate::new();
        assert!(!gate.is_active());
        let token = gate.try_enter().expect("gate open");
        assert!(gate.is_active());
        assert!(gate.try_enter().is_none(), "nested entry must be refused");
        drop(token);
        assert!(!gate.is_active());
        assert!(gate.try_enter().is_some(), "gate reusable after drop");
    }

    #[test]
    fn token_drop_releases_on_early_return() {
        let gate = GcGate::new();
        fn inner(gate: &GcGate) -> Option<()> {
            let _token = gate.try_enter()?;
            None // early bail; token must still release
        }
        assert!(inner(&gate).is_none());
        assert!(!gate.is_active());
    }
}
