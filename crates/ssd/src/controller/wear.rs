//! Wear leveling: the Figure-2 "Wear-leveling" box.
//!
//! * **Policy** — [`ThresholdWear`]: dynamic wear leveling (prefer the
//!   lowest-erase-count free block at allocation time) plus static wear
//!   leveling triggered when the erase-count spread across all blocks
//!   exceeds a threshold. A pure function over the
//!   [`BlockDirectory`](crate::block_dir::BlockDirectory) view.
//! * **Mechanism** — the `impl Ssd` block: the static migration itself
//!   and the salvage-and-retire path taken when a program fails on a
//!   worn-out block. Both reserve channel/LUN time tagged with
//!   [`Occupant::Wear`](requiem_sim::Occupant), so their interference
//!   with host traffic is attributed on the probe bus.

use requiem_sim::time::SimTime;

use crate::addr::{LunId, PhysPage};
use crate::block_dir::BlockDirectory;
use crate::device::Ssd;
use crate::metrics::OpCause;

use super::WearPolicy;

/// Threshold-based wear leveling: dynamic allocation bias plus static
/// migration when `max_erase - min_erase` exceeds `static_threshold`
/// (0 disables static wear leveling).
#[derive(Debug, Clone)]
pub struct ThresholdWear {
    dynamic: bool,
    static_threshold: u32,
}

impl ThresholdWear {
    /// Policy with the given dynamic flag and static spread threshold.
    pub fn new(dynamic: bool, static_threshold: u32) -> Self {
        Self {
            dynamic,
            static_threshold,
        }
    }
}

impl WearPolicy for ThresholdWear {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn wear_aware_allocation(&self) -> bool {
        self.dynamic
    }

    fn should_migrate(&self, dir: &BlockDirectory) -> bool {
        if self.static_threshold == 0 {
            return false;
        }
        let (min, max, _) = dir.erase_count_spread();
        max - min > self.static_threshold
    }

    fn pick_migration(&self, dir: &BlockDirectory, lun: LunId) -> Option<u32> {
        dir.coldest_full_block(lun)
    }
}

impl Ssd {
    /// Static wear leveling: migrate the coldest full block so its low-wear
    /// block re-enters circulation.
    pub(crate) fn static_wear_level(&mut self, lun: LunId, t: SimTime) {
        let Some(victim) = self.wear_policy.pick_migration(&self.dir, lun) else {
            return;
        };
        let _bg = self.sched.probe.background();
        let live = self.dir.live_pages(lun, victim);
        for (addr, lpn) in live {
            let old = PhysPage { lun, addr };
            if self.relocate_page(old, lpn, t, OpCause::WearLevel).is_err() {
                return; // out of space: leave the block as-is
            }
        }
        // a refused erase (protocol violation) aborts the migration; the
        // block simply stays in place with its pages already relocated
        let _ = self.op_erase(t, lun, victim, OpCause::WearLevel);
    }

    /// A program failed on a worn-out block: retire the block and move its
    /// live pages somewhere safe.
    pub(crate) fn salvage_and_retire(
        &mut self,
        lun: LunId,
        addr: requiem_flash::PageAddr,
        t: SimTime,
    ) {
        let _bg = self.sched.probe.background();
        let geom = self.cfg.flash.geometry.clone();
        let block_idx = geom.block_index(geom.block_of(addr));
        // retire FIRST: the block leaves the free pool and loses any
        // frontier pointing at it, so the salvage relocations below (and
        // their own retries) can never target it again — a program
        // failure inside the salvage of the same block would otherwise
        // recurse with stale locations
        self.metrics.blocks_retired += 1;
        self.dir.retire(lun, block_idx);
        let live = self.dir.live_pages(lun, block_idx);
        for (a, lpn) in live {
            let old = PhysPage { lun, addr: a };
            // on failure the page stays live on the retired block: still
            // readable through the mapping, never allocatable again
            let _ = self.relocate_page(old, lpn, t, OpCause::WearLevel);
        }
    }
}
