//! # requiem-ssd — a flash SSD simulator
//!
//! The executable form of the paper's §2.2 ("I/O stack internals") and
//! Figure 2 ("internal architecture of a SSD controller"):
//!
//! * tens of flash LUNs (from `requiem-flash`) wired to shared
//!   **channels** with realistic bus timing ([`channel::ChannelTiming`]);
//! * a controller with pluggable **FTLs** — full page mapping, pre-2009
//!   block mapping, BAST-style hybrid log blocks, and DFTL (the paper's
//!   ref [10]) — see [`config::FtlKind`];
//! * **garbage collection** (greedy / cost-benefit) and **wear leveling**
//!   (dynamic + optional static), whose traffic contends with host I/O on
//!   the same channel/LUN resources;
//! * a battery-backed **write-back buffer** (§2.3.2's "safe RAM buffer");
//! * **TRIM** support.
//!
//! The device exposes the narrow block-style interface the paper
//! critiques — `read(lpn)` / `write(lpn)` / `trim(lpn)` — and rich
//! [`metrics::SsdMetrics`] that reveal everything that interface hides:
//! write amplification by cause, GC interference, channel-vs-chip
//! utilization, latency distributions.
//!
//! ```
//! use requiem_sim::time::SimTime;
//! use requiem_ssd::{Lpn, Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::modern());
//! let w = ssd.write(SimTime::ZERO, Lpn(0)).unwrap();
//! let r = ssd.read(w.done, Lpn(0)).unwrap();
//! assert!(r.done > w.done);
//! println!("write {} read {}", w.latency, r.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod block_dir;
pub mod buffer;
pub mod channel;
pub mod config;
pub mod controller;
pub mod device;
pub mod mapping;
pub mod metrics;
pub mod qpair;

pub use addr::{ArrayShape, Capacity, Lpn, LunId, PhysPage};
pub use channel::ChannelTiming;
pub use config::{BufferConfig, FtlKind, GcConfig, GcPolicyKind, Placement, SsdConfig, WlConfig};
pub use controller::{
    CostBenefitGc, GcGate, GcPolicy, GcToken, GreedyGc, Scheduler, ThresholdWear, WearPolicy,
    WriteBufferPolicy, WriteThrough,
};
pub use device::{Completion, RebuildReport, Served, Ssd, SsdError};
pub use metrics::{OpCause, SsdMetrics};
pub use qpair::QueuePair;
pub use requiem_sim::cmd::{CommandId, IoClass, IoCompletion, IoOp, IoRequest};
