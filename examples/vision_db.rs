//! The §3 vision end-to-end: one storage manager, two worlds.
//!
//! Runs the same OLTP workload on the legacy backend (everything through
//! one flash SSD's block interface) and the vision backend (PCM log +
//! atomic flash + TRIM), then crashes both mid-flight and recovers.
//!
//! ```sh
//! cargo run --release --example vision_db
//! ```

use requiem::db::backend::{LegacyBackend, PersistenceBackend, VisionBackend};
use requiem::db::engine::{Database, DbConfig};
use requiem::sim::table::Align;
use requiem::sim::time::SimDuration;
use requiem::sim::Table;
use requiem::ssd::SsdConfig;
use requiem::workload::oltp::{OltpConfig, OltpGen};

fn drive<B: PersistenceBackend>(db: &mut Database<B>, txns: u64, seed: u64) {
    let mut gen = OltpGen::new(
        OltpConfig {
            data_pages: 1024,
            theta: 0.8,
            ..OltpConfig::default()
        },
        seed,
    );
    for _ in 0..txns {
        let txn = gen.next_txn();
        let acc: Vec<(u64, u16, bool)> = txn
            .accesses
            .iter()
            .map(|a| (a.page, (a.page % 16) as u16, a.dirty))
            .collect();
        db.execute(&acc, txn.log_bytes);
    }
}

fn main() {
    let cfg = DbConfig {
        buffer_frames: 256,
        data_pages: 1024,
        slots_per_page: 16,
        record_size: 100,
        checkpoint_every: 400,
        group_commit: 1,
        ..DbConfig::default()
    };

    println!("# one storage manager, two persistence worlds\n");
    let mut tbl = Table::new([
        "backend",
        "1000 txns took",
        "txns/s",
        "commit p50",
        "commit p99",
        "recovery replay",
    ])
    .align(0, Align::Left);

    // ---- legacy ----
    let mut ssd_cfg = SsdConfig::modern();
    ssd_cfg.buffer.capacity_pages = 0;
    let be = LegacyBackend::new(ssd_cfg, cfg.data_pages, 256);
    let mut db = Database::new(cfg.clone(), be);
    db.load();
    let t0 = db.now();
    drive(&mut db, 1000, 11);
    let span = db.now().since(t0);
    db.crash();
    let replayed = db.recover();
    assert_ne!(db.visible_owner(0, 0), u64::MAX); // engine consistency touch
    tbl.row([
        "legacy (block SSD)".to_string(),
        format!("{span}"),
        format!("{:.0}", 1000.0 / span.as_secs_f64()),
        format!("{}", SimDuration::from_nanos(db.commit_latency().p50())),
        format!("{}", SimDuration::from_nanos(db.commit_latency().p99())),
        format!("{replayed} records"),
    ]);

    // ---- vision ----
    let mut flash_cfg = SsdConfig::modern();
    flash_cfg.buffer.capacity_pages = 0;
    let be = VisionBackend::new(flash_cfg, cfg.data_pages, 1 << 22);
    let mut db = Database::new(cfg, be);
    db.load();
    let t0 = db.now();
    drive(&mut db, 1000, 11);
    let span = db.now().since(t0);
    db.crash();
    let replayed = db.recover();
    tbl.row([
        "vision (PCM log + atomic flash)".to_string(),
        format!("{span}"),
        format!("{:.0}", 1000.0 / span.as_secs_f64()),
        format!("{}", SimDuration::from_nanos(db.commit_latency().p50())),
        format!("{}", SimDuration::from_nanos(db.commit_latency().p99())),
        format!("{replayed} records"),
    ]);

    println!("{tbl}");
    println!(
        "Same WAL, same buffer pool, same recovery algorithm.\nOnly the routing changed: synchronous traffic to PCM on the memory bus,\nasynchronous traffic to flash through atomic writes and TRIM (§3, P1+P2)."
    );
}
