//! The SSD designer's workbench: sweep the architecture knobs the block
//! device interface hides and watch the "performance model" shift.
//!
//! ```sh
//! cargo run --release --example design_your_ssd
//! ```

use requiem::sim::table::Align;
use requiem::sim::time::SimTime;
use requiem::sim::Table;
use requiem::ssd::{BufferConfig, FtlKind, Lpn, Ssd, SsdConfig};
use requiem::workload::driver::{run_closed_loop, IoMix};
use requiem::workload::pattern::{AddressPattern, Pattern};

struct Row {
    label: String,
    rnd_write_mbs: f64,
    read_iops: f64,
    wa: f64,
    map_ram_kib: u64,
}

fn evaluate(label: &str, cfg: SsdConfig) -> Row {
    // random-write throughput at steady state
    let mut ssd = Ssd::new(cfg.clone());
    let span = ssd.capacity().exported_pages;
    let mut t = SimTime::ZERO;
    for lpn in 0..span {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let t = ssd.drain_time();
    let mut pat = AddressPattern::new(Pattern::UniformRandom, span, 1);
    let wr = run_closed_loop(&mut ssd, &mut pat, IoMix::write_only(), 8, span, 1, t);
    let wa = ssd.metrics().write_amplification();
    // random-read IOPS on a separate, preconditioned device
    let mut ssd = Ssd::new(cfg.clone());
    let mut t = SimTime::ZERO;
    for lpn in 0..span {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    let t = ssd.drain_time();
    let mut pat = AddressPattern::new(Pattern::UniformRandom, span, 2);
    let rd = run_closed_loop(&mut ssd, &mut pat, IoMix::read_only(), 8, 2048, 2, t);
    Row {
        label: label.to_string(),
        rnd_write_mbs: wr.mb_per_s,
        read_iops: rd.iops,
        wa,
        map_ram_kib: cfg.mapping_table_bytes() / 1024,
    }
}

fn main() {
    println!("# design your SSD: the knobs behind the interface\n");
    let mut rows = Vec::new();

    let base = || {
        let mut c = SsdConfig::modern();
        c.shape.channels = 4;
        c.shape.chips_per_channel = 2;
        c.buffer = BufferConfig { capacity_pages: 64 };
        c
    };

    rows.push(evaluate(
        "baseline: 4ch x 2chips, page FTL, 12.5% OP",
        base(),
    ));

    let mut c = base();
    c.shape.channels = 8;
    c.shape.chips_per_channel = 4;
    rows.push(evaluate("more parallelism: 8ch x 4chips", c));

    let mut c = base();
    c.op_ratio = 0.28;
    rows.push(evaluate("more spare area: 28% OP", c));

    let mut c = base();
    c.ftl = FtlKind::Dftl {
        cached_entries: 1024,
    };
    rows.push(evaluate("cheaper controller: DFTL, 1Ki CMT", c));

    let mut c = base();
    c.ftl = FtlKind::Hybrid { log_blocks: 8 };
    rows.push(evaluate("2009 flashback: hybrid FTL", c));

    let mut tbl = Table::new([
        "design",
        "rnd write MB/s",
        "rnd read IOPS",
        "WA",
        "map RAM (KiB)",
    ])
    .align(0, Align::Left);
    for r in rows {
        tbl.row([
            r.label,
            format!("{:.1}", r.rnd_write_mbs),
            format!("{:.0}", r.read_iops),
            format!("{:.2}", r.wa),
            format!("{}", r.map_ram_kib),
        ]);
    }
    println!("{tbl}");
    println!(
        "\nEvery row answers `read(lba)`/`write(lba)` identically — and behaves like a different device.\nThat variance is the paper's argument: no single performance model fits behind the interface."
    );
}
