//! Myth busting in miniature: the three §2.3 myths, one table each.
//!
//! A condensed interactive version of experiments E2–E4 (the full
//! harnesses live in `requiem-bench`).
//!
//! ```sh
//! cargo run --release --example myth_busting
//! ```

use requiem::sim::table::Align;
use requiem::sim::time::SimTime;
use requiem::sim::Table;
use requiem::ssd::{BufferConfig, Lpn, Ssd, SsdConfig};
use requiem::workload::driver::{run_closed_loop, IoMix};
use requiem::workload::pattern::{AddressPattern, Pattern};

fn fill(ssd: &mut Ssd, pages: u64) -> SimTime {
    let mut t = SimTime::ZERO;
    for lpn in 0..pages {
        t = ssd.write(t, Lpn(lpn)).expect("fill").done;
    }
    ssd.drain_time().max(t)
}

fn main() {
    println!("# the three myths, measured\n");

    // ---- myth 1: "the SSD behaves like its flash chips" ---------------
    println!("## myth 1: a device is a chip\n");
    let chip = SsdConfig::modern().flash.timing;
    let mut ssd = Ssd::new(SsdConfig::modern());
    let w = ssd.write(SimTime::ZERO, Lpn(0)).expect("write");
    let mut tbl =
        Table::new(["quantity", "chip datasheet", "device measured"]).align(0, Align::Left);
    tbl.row([
        "single 4KiB write".to_string(),
        format!("{} (tPROG)", chip.program_fast),
        format!("{} (hit the battery-backed buffer)", w.latency),
    ]);
    println!("{tbl}");

    // ---- myth 2: "random writes must be avoided" -----------------------
    println!("## myth 2: random writes are catastrophic\n");
    let mut tbl = Table::new(["device", "seq MB/s", "rnd MB/s"]).align(0, Align::Left);
    for (label, cfg) in [
        ("circa-2009 (hybrid FTL)", SsdConfig::circa_2009_hybrid()),
        ("modern (page FTL + buffer)", SsdConfig::modern()),
    ] {
        let mut rates = Vec::new();
        for pattern in [Pattern::Sequential, Pattern::UniformRandom] {
            let mut ssd = Ssd::new(cfg.clone());
            let span = ssd.capacity().exported_pages / 4;
            let t = fill(&mut ssd, span);
            let mut pat = AddressPattern::new(pattern, span, 1);
            let r = run_closed_loop(&mut ssd, &mut pat, IoMix::write_only(), 4, 1024, 1, t);
            rates.push(r.mb_per_s);
        }
        tbl.row([
            label.to_string(),
            format!("{:.1}", rates[0]),
            format!("{:.1}", rates[1]),
        ]);
    }
    println!("{tbl}");

    // ---- myth 3: "reads are cheaper than writes" -----------------------
    println!("## myth 3: reads beat writes\n");
    let mut cfg = SsdConfig::modern();
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    let t = fill(&mut ssd, pages);
    // churn to provoke GC, then read through the turbulence
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, 2);
    run_closed_loop(&mut ssd, &mut pat, IoMix::write_only(), 4, pages, 2, t);
    let t = ssd.drain_time();
    let mut pat = AddressPattern::new(Pattern::UniformRandom, pages, 3);
    run_closed_loop(&mut ssd, &mut pat, IoMix::mixed(0.5), 8, 2048, 3, t);
    let m = ssd.metrics();
    let mut tbl = Table::new(["quantity", "value"]).align(0, Align::Left);
    tbl.row([
        "chip read vs chip program".to_string(),
        format!(
            "{} vs {} — reads win at the chip",
            chip.read, chip.program_fast
        ),
    ]);
    tbl.row([
        "device read p99 amid writes+GC".to_string(),
        format!(
            "{} (stalls behind programs and {} erases)",
            requiem::sim::time::SimDuration::from_nanos(m.read_latency.p99()),
            chip.erase
        ),
    ]);
    tbl.row([
        "buffered device write (myth 1's table)".to_string(),
        format!("{} — writes win at the device", w.latency),
    ]);
    println!("{tbl}");
    println!("\nFull harnesses: `cargo run --release -p requiem-bench --bin exp2_myth1` (and exp3, exp4).");
}
