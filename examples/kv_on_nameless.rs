//! A SILT-flavoured key-value store two ways: over the block interface
//! (two mapping layers, two cleaners) and over nameless writes (one of
//! each). The paper's ref [14] meets its §3 vision.
//!
//! ```sh
//! cargo run --release --example kv_on_nameless
//! ```

use requiem::db::kvstore::NamelessKv;
use requiem::iface::nameless::{NamelessConfig, NamelessSsd};
use requiem::sim::table::Align;
use requiem::sim::time::{SimDuration, SimTime};
use requiem::sim::Table;
use requiem::ssd::{BufferConfig, Lpn, Ssd, SsdConfig};
use std::collections::HashMap;

fn hardware() -> SsdConfig {
    let mut cfg = SsdConfig::modern();
    cfg.shape.channels = 2;
    cfg.shape.chips_per_channel = 2;
    cfg.buffer = BufferConfig { capacity_pages: 0 };
    cfg
}

struct RunReport {
    label: String,
    puts_s: f64,
    get_p50: u64,
    device_wa: f64,
    host_index_bytes: u64,
    ftl_ram_bytes: u64,
}

/// KV over the block interface: host keeps key → LBA plus its own LBA
/// free-list; the page-mapped FTL keeps LBA → physical underneath.
fn run_block_kv(keys: u64, churn: u64) -> RunReport {
    let cfg = hardware();
    let ftl_ram = cfg.mapping_table_bytes();
    let mut ssd = Ssd::new(cfg);
    let pages = ssd.capacity().exported_pages;
    assert!(keys <= pages);
    let mut index: HashMap<u64, u64> = HashMap::new(); // key -> lba
    let mut free: Vec<u64> = (0..pages).rev().collect();
    let mut t = SimTime::ZERO;
    let put = |ssd: &mut Ssd,
               t: &mut SimTime,
               index: &mut HashMap<u64, u64>,
               free: &mut Vec<u64>,
               key: u64| {
        if let Some(old) = index.remove(&key) {
            let c = ssd.trim(*t, Lpn(old)).expect("trim");
            *t = c.done;
            free.push(old);
        }
        let lba = free.pop().expect("lba space exhausted");
        let c = ssd.write(*t, Lpn(lba)).expect("write");
        *t = c.done;
        index.insert(key, lba);
    };
    for k in 0..keys {
        put(&mut ssd, &mut t, &mut index, &mut free, k);
    }
    let churn_start = t;
    let mut x = 5u64;
    for _ in 0..churn {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        put(&mut ssd, &mut t, &mut index, &mut free, x % keys);
    }
    let puts_s = churn as f64 / t.since(churn_start).as_secs_f64();
    // gets
    let mut lat = requiem::sim::Histogram::new();
    for k in 0..keys.min(512) {
        let c = ssd.read(t, Lpn(index[&k])).expect("read");
        t = c.done;
        lat.record_duration(c.latency);
    }
    RunReport {
        label: "block interface (page FTL below)".into(),
        puts_s,
        get_p50: lat.p50(),
        device_wa: ssd.metrics().write_amplification(),
        host_index_bytes: (index.len() * 16) as u64 + pages * 8 / 64, // index + free bitmap
        ftl_ram_bytes: ftl_ram,
    }
}

fn run_nameless_kv(keys: u64, churn: u64) -> RunReport {
    let mut kv = NamelessKv::new(NamelessSsd::new(NamelessConfig::from(&hardware())));
    for k in 0..keys {
        kv.put(k).expect("put");
    }
    let churn_start = kv.now();
    let mut x = 5u64;
    for _ in 0..churn {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        kv.put(x % keys).expect("put");
    }
    let puts_s = churn as f64 / kv.now().since(churn_start).as_secs_f64();
    for k in 0..keys.min(512) {
        kv.get(k).expect("get");
    }
    let m = kv.device().metrics();
    RunReport {
        label: "nameless writes (no FTL map)".into(),
        puts_s,
        get_p50: kv.get_latency().p50(),
        device_wa: m.flash_programs.total() as f64 / m.host_writes as f64,
        host_index_bytes: kv.index_bytes(),
        ftl_ram_bytes: kv.device().mapping_table_bytes(),
    }
}

fn main() {
    println!("# a key-value store, with and without the block device interface\n");
    // 70% of raw capacity as live keys, then churn two drive-fills
    let raw = hardware().total_luns() as u64 * hardware().flash.geometry.total_pages();
    let keys = raw * 6 / 10;
    let churn = 2 * keys;

    let rows = [run_block_kv(keys, churn), run_nameless_kv(keys, churn)];
    let mut tbl = Table::new([
        "design",
        "puts/s (churn)",
        "get p50",
        "device WA",
        "host index",
        "FTL map RAM",
    ])
    .align(0, Align::Left);
    for r in rows {
        tbl.row([
            r.label,
            format!("{:.0}", r.puts_s),
            format!("{}", SimDuration::from_nanos(r.get_p50)),
            format!("{:.2}", r.device_wa),
            format!("{} KiB", r.host_index_bytes / 1024),
            format!("{} KiB", r.ftl_ram_bytes / 1024),
        ]);
    }
    println!("{tbl}");
    println!(
        "\nSame hardware, same workload. The nameless design deletes the FTL's mapping\nRAM and its extra indirection; the device's GC keeps the host index current\nthrough migration upcalls — 'communicating peers' (§3), not master and slave."
    );
}
