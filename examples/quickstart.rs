//! Quickstart: a guided tour of the whole stack in ~80 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use requiem::db::backend::VisionBackend;
use requiem::db::engine::{Database, DbConfig};
use requiem::pcm::{PcmDimm, PcmTiming};
use requiem::sim::time::SimTime;
use requiem::ssd::{Lpn, Ssd, SsdConfig};

fn main() {
    // ----- 1. a flash SSD behind the classic block interface -----------
    let mut ssd = Ssd::new(SsdConfig::modern());
    let w = ssd.write(SimTime::ZERO, Lpn(42)).expect("write");
    let r = ssd.read(w.done, Lpn(42)).expect("read");
    println!(
        "flash SSD:  write {} (buffered), read {}",
        w.latency, r.latency
    );

    // hammer it a bit and look at what the interface hides
    let mut t = r.done;
    for i in 0..4096u64 {
        t = ssd.write(t, Lpn(i % 1024)).expect("write").done;
    }
    let m = ssd.metrics();
    println!(
        "            after 4k overwrites: WA={:.2}, gc_runs={}, buffer hits={}",
        m.write_amplification(),
        m.gc_runs,
        m.buffer_read_hits
    );

    // ----- 2. PCM on the memory bus: the synchronous path --------------
    let mut dimm = PcmDimm::new(1 << 20, PcmTiming::gen1(), 100);
    let durable = dimm.persist(SimTime::ZERO, 0, b"commit record for txn 7");
    println!(
        "PCM DIMM:   a commit record persists in {} (vs ~600µs for a flash program)",
        durable.since(SimTime::ZERO)
    );

    // ----- 3. the database engine on the paper's vision backend --------
    let cfg = DbConfig {
        buffer_frames: 128,
        data_pages: 512,
        slots_per_page: 16,
        record_size: 100,
        checkpoint_every: 0,
        group_commit: 1,
        ..DbConfig::default()
    };
    let mut flash_cfg = SsdConfig::modern();
    flash_cfg.buffer.capacity_pages = 0;
    let backend = VisionBackend::new(flash_cfg, cfg.data_pages, 1 << 22);
    let mut db = Database::new(cfg, backend);
    db.load();

    // run a few transactions: (page, slot, dirty) accesses + commit
    for i in 0..100u64 {
        db.execute(&[(i % 50, 0, true), (i % 200, 1, false)], 256);
    }
    println!(
        "database:   100 txns committed; commit force p50 = {} (PCM log), txn p50 = {}",
        requiem::sim::time::SimDuration::from_nanos(db.commit_latency().p50()),
        requiem::sim::time::SimDuration::from_nanos(db.txn_latency().p50()),
    );

    // crash and recover — committed work survives
    db.crash();
    let replayed = db.recover();
    println!(
        "recovery:   replayed {replayed} log records; txn 1's mark is {}",
        if db.visible_owner(1, 0) != 0 {
            "intact"
        } else {
            "LOST (bug!)"
        }
    );

    println!("\nNext: `cargo run --release -p requiem-bench --bin exp1_figure1` regenerates the paper's Figure 1.");
}
